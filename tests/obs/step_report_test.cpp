// Step report: analytic predictions match the paper's equations, live
// runs across every ZeRO stage validate within tolerance, and synthetic
// divergences are flagged.
#include <gtest/gtest.h>

#include <string>

#include "core/trainer.hpp"
#include "obs/json.hpp"
#include "obs/step_report.hpp"

namespace zero::obs {
namespace {

constexpr double kAdamK = 12.0;  // bytes/param of fp32 Adam state (Sec 3)

TEST(StepReportTest, PredictedStateBytesMatchesFigure1) {
  const double psi = 1e6;
  const int nd = 64;
  // Baseline fp16: (2 + 2 + K) * psi.
  EXPECT_DOUBLE_EQ(PredictedStateBytes(0, nd, true, psi), (2 + 2 + kAdamK) * psi);
  // Pos: 2*psi + 2*psi + K*psi/Nd.
  EXPECT_DOUBLE_EQ(PredictedStateBytes(1, nd, true, psi),
                   4 * psi + kAdamK * psi / nd);
  // Pos+g: 2*psi + (2 + K)*psi/Nd.
  EXPECT_DOUBLE_EQ(PredictedStateBytes(2, nd, true, psi),
                   2 * psi + (2 + kAdamK) * psi / nd);
  // Pos+g+p: (2 + 2 + K)*psi/Nd.
  EXPECT_DOUBLE_EQ(PredictedStateBytes(3, nd, true, psi),
                   (2 + 2 + kAdamK) * psi / nd);
}

TEST(StepReportTest, AsymptoticReductionsAre4x8xNd) {
  const double psi = 1e6;
  const double nd = 1024;  // large enough that 1/Nd terms vanish
  const double base = PredictedStateBytes(0, static_cast<int>(nd), true, psi);
  EXPECT_NEAR(base / PredictedStateBytes(1, static_cast<int>(nd), true, psi),
              4.0, 0.1);
  EXPECT_NEAR(base / PredictedStateBytes(2, static_cast<int>(nd), true, psi),
              8.0, 0.1);
  EXPECT_NEAR(base / PredictedStateBytes(3, static_cast<int>(nd), true, psi),
              nd, 1.0);
}

TEST(StepReportTest, PredictedCommRatiosAre1x1x1xAnd1p5x) {
  const double psi = 1e6;
  const int nd = 16;
  const double base = PredictedCommBytesPerStep(0, nd, true, psi, psi);
  // Stages 1 and 2 move exactly baseline DP volume.
  EXPECT_DOUBLE_EQ(PredictedCommBytesPerStep(1, nd, true, psi, psi), base);
  EXPECT_DOUBLE_EQ(PredictedCommBytesPerStep(2, nd, true, psi, psi), base);
  // Stage 3: (2T + P) vs 2P nominal volume -> 1.5x when P == T.
  EXPECT_DOUBLE_EQ(PredictedCommBytesPerStep(3, nd, true, psi, psi),
                   1.5 * base);
}

TEST(StepReportTest, CleanInputsPassAndJsonParses) {
  StepReportInputs in;
  in.stage = 2;
  in.nd = 8;
  in.fp16 = true;
  in.psi = 4e6;
  in.padded_psi = 4e6;
  in.steps = 4;
  in.measured_state_bytes = PredictedStateBytes(2, 8, true, in.psi);
  in.measured_comm_bytes =
      4 * PredictedCommBytesPerStep(2, 8, true, in.psi, in.padded_psi);
  const StepReport report = BuildStepReport(in);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_TRUE(report.memory.ok);
  EXPECT_TRUE(report.comm.ok);
  EXPECT_NEAR(report.memory.rel_error, 0.0, 1e-9);
  EXPECT_NEAR(report.comm.measured_ratio, 1.0, 1e-9);

  json::Value doc;
  std::string error;
  ASSERT_TRUE(json::Parse(report.ToJson(), &doc, &error)) << error;
  EXPECT_TRUE(doc.Find("ok")->as_bool());
  EXPECT_DOUBLE_EQ(doc.Find("inputs")->Find("stage")->as_number(), 2.0);
}

TEST(StepReportTest, DivergenceOutsideToleranceIsFlagged) {
  StepReportInputs in;
  in.stage = 1;
  in.nd = 4;
  in.psi = 1e6;
  in.padded_psi = 1e6;
  in.steps = 2;
  // Memory 30% over prediction, comm 50% under: both must be called out.
  in.measured_state_bytes = 1.3 * PredictedStateBytes(1, 4, true, in.psi);
  in.measured_comm_bytes =
      0.5 * 2 * PredictedCommBytesPerStep(1, 4, true, in.psi, in.padded_psi);
  const StepReport report = BuildStepReport(in);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.memory.ok);
  EXPECT_FALSE(report.comm.ok);
  EXPECT_EQ(report.divergences.size(), 2u);
}

// End-to-end: run real training at every stage with telemetry on (no
// artifact files) and demand the measured run matches the equations.
TEST(StepReportTest, LiveRunsMatchPaperEquationsAtEveryStage) {
  for (int stage = 0; stage <= 3; ++stage) {
    core::TrainOptions options;
    options.model.vocab = 32;
    options.model.seq = 16;
    options.model.hidden = 32;
    options.model.layers = 2;
    options.model.heads = 4;
    options.engine.stage = static_cast<model::ZeroStage>(stage);
    options.cluster.dp_degree = 2;
    options.batch_per_rank = 2;
    options.steps = 3;
    options.engine.telemetry.enabled = true;  // no paths: report only
    const core::TrainResult result = core::TrainGpt(options);
    ASSERT_FALSE(result.oom) << "stage " << stage;
    ASSERT_TRUE(result.report.has_value()) << "stage " << stage;
    EXPECT_TRUE(result.report->ok())
        << "stage " << stage << ": " << result.report->Summary();
    EXPECT_EQ(result.report->inputs.stage, stage);
    EXPECT_GT(result.report->memory.measured_bytes, 0.0);
    EXPECT_GT(result.report->comm.measured_bytes_per_step, 0.0);
  }
}

}  // namespace
}  // namespace zero::obs
