#include "common/half.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.hpp"

namespace zero {
namespace {

TEST(HalfTest, ExactSmallIntegers) {
  // All integers up to 2048 are exactly representable in binary16.
  for (int i = -2048; i <= 2048; ++i) {
    const Half h(static_cast<float>(i));
    EXPECT_EQ(h.ToFloat(), static_cast<float>(i)) << "i=" << i;
  }
}

TEST(HalfTest, KnownBitPatterns) {
  EXPECT_EQ(Half(0.0f).bits(), 0x0000u);
  EXPECT_EQ(Half(-0.0f).bits(), 0x8000u);
  EXPECT_EQ(Half(1.0f).bits(), 0x3C00u);
  EXPECT_EQ(Half(-1.0f).bits(), 0xBC00u);
  EXPECT_EQ(Half(2.0f).bits(), 0x4000u);
  EXPECT_EQ(Half(0.5f).bits(), 0x3800u);
  EXPECT_EQ(Half(65504.0f).bits(), 0x7BFFu);  // max finite
  EXPECT_EQ(Half(6.103515625e-05f).bits(), 0x0400u);  // min normal
  EXPECT_EQ(Half(5.9604644775390625e-08f).bits(), 0x0001u);  // min subnormal
}

TEST(HalfTest, OverflowToInfinity) {
  EXPECT_TRUE(Half(65520.0f).IsInf());  // rounds up past max finite
  EXPECT_TRUE(Half(1e6f).IsInf());
  EXPECT_TRUE(Half(-1e6f).IsInf());
  EXPECT_LT(Half(-1e6f).ToFloat(), 0.0f);
  // 65504 + epsilon below the rounding boundary stays finite.
  EXPECT_FALSE(Half(65503.0f).IsInf());
}

TEST(HalfTest, UnderflowToZeroAndSubnormals) {
  EXPECT_TRUE(Half(1e-10f).IsZero());
  const Half sub(3e-8f);  // between 0 and min subnormal*? representable
  EXPECT_FALSE(sub.IsNan());
  // Subnormal round-trip.
  const Half h = Half::FromBits(0x0155);
  EXPECT_EQ(Half(h.ToFloat()).bits(), 0x0155);
}

TEST(HalfTest, NanPropagates) {
  const Half h(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(h.IsNan());
  EXPECT_TRUE(std::isnan(h.ToFloat()));
  EXPECT_FALSE(h == h);
}

TEST(HalfTest, InfinityRoundTrip) {
  const Half pinf(std::numeric_limits<float>::infinity());
  EXPECT_TRUE(pinf.IsInf());
  EXPECT_TRUE(std::isinf(pinf.ToFloat()));
  EXPECT_GT(pinf.ToFloat(), 0.0f);
}

TEST(HalfTest, RoundToNearestEven) {
  // 1 + 2^-11 sits exactly between 1.0 and 1+2^-10: ties to even -> 1.0.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11)).bits(), Half(1.0f).bits());
  // 1 + 3*2^-11 between 1+2^-10 and 1+2^-9: ties to even -> 1+2^-9.
  EXPECT_EQ(Half(1.0f + 3.0f * std::ldexp(1.0f, -11)).bits(),
            Half(1.0f + std::ldexp(1.0f, -9)).bits());
  // Slightly above the tie rounds up.
  EXPECT_EQ(Half(1.0f + std::ldexp(1.0f, -11) + 1e-6f).bits(),
            Half(1.0f + std::ldexp(1.0f, -10)).bits());
}

TEST(HalfTest, RoundTripIsIdentityOnAllFiniteHalfs) {
  // Every finite half bit pattern must survive half->float->half exactly.
  for (std::uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const Half h = Half::FromBits(static_cast<std::uint16_t>(bits));
    if (h.IsNan() || h.IsInf()) continue;
    const Half back(h.ToFloat());
    EXPECT_EQ(back.bits(), h.bits()) << "bits=" << bits;
  }
}

TEST(HalfTest, ConversionErrorWithinHalfUlp) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float x = rng.NextGaussian() * 100.0f;
    const float y = Half(x).ToFloat();
    // Relative error bounded by 2^-11 for normal-range values.
    EXPECT_LE(std::abs(x - y), std::abs(x) * 4.8828125e-4f + 1e-7f)
        << "x=" << x;
  }
}

TEST(HalfTest, BulkConversionMatchesScalar) {
  Rng rng(11);
  std::vector<float> src(257);
  for (float& v : src) v = rng.NextGaussian();
  std::vector<Half> mid(src.size());
  std::vector<float> dst(src.size());
  FloatToHalf(src.data(), mid.data(), src.size());
  HalfToFloat(mid.data(), dst.data(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) {
    EXPECT_EQ(dst[i], Half(src[i]).ToFloat());
  }
}

TEST(HalfTest, ArithmeticRoundsThroughFloat) {
  const Half a(1.5f);
  const Half b(2.25f);
  EXPECT_EQ((a + b).ToFloat(), 3.75f);
  EXPECT_EQ((a * b).ToFloat(), 3.375f);
  EXPECT_EQ((b - a).ToFloat(), 0.75f);
  EXPECT_EQ((b / a).ToFloat(), 1.5f);
}

TEST(HalfTest, SignedZeroEquality) {
  EXPECT_TRUE(Half(0.0f) == Half(-0.0f));
}

}  // namespace
}  // namespace zero
