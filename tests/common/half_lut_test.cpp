// The fp16 fast paths (decode LUT, batched encode) must be bit-exact
// with the scalar Half conversions — exhaustively for decode (only
// 65536 inputs exist), and across the interesting encode boundary
// cases for the round-to-nearest-even encoder.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/half.hpp"
#include "common/rng.hpp"

namespace zero {
namespace {

std::uint32_t BitsOf(float f) {
  std::uint32_t u;
  std::memcpy(&u, &f, sizeof(u));
  return u;
}

TEST(HalfLutTest, DecodeTableMatchesScalarDecoderExhaustively) {
  const float* table = HalfDecodeTable();
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    const float want = Half::ToFloatImpl(static_cast<std::uint16_t>(b));
    const float got = table[b];
    // Bit equality, not ==: NaN payloads must survive the table.
    ASSERT_EQ(BitsOf(want), BitsOf(got)) << "half bits " << b;
  }
}

TEST(HalfLutTest, BulkDecodeMatchesScalarExhaustively) {
  std::vector<Half> src(1u << 16);
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    src[b] = Half::FromBits(static_cast<std::uint16_t>(b));
  }
  std::vector<float> dst(src.size());
  HalfToFloat(src.data(), dst.data(), src.size());
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    ASSERT_EQ(BitsOf(Half::ToFloatImpl(static_cast<std::uint16_t>(b))),
              BitsOf(dst[b]))
        << "half bits " << b;
  }
}

TEST(HalfLutTest, BulkEncodeMatchesScalarEncoder) {
  // Boundary cases plus a random sweep. Every bulk-encoded value must
  // equal Half::FromFloat bit for bit.
  std::vector<float> inputs = {
      0.0f,
      -0.0f,
      1.0f,
      -1.0f,
      Half::kMax,
      -Half::kMax,
      65520.0f,  // rounds to Inf
      Half::kMinNormal,
      Half::kMinSubnormal,
      Half::kMinSubnormal * 0.5f,   // rounds to zero (ties-to-even)
      Half::kMinSubnormal * 0.75f,  // rounds up to min subnormal
      1.0f + Half::kEpsilon * 0.5f,
      std::numeric_limits<float>::infinity(),
      -std::numeric_limits<float>::infinity(),
      std::numeric_limits<float>::quiet_NaN(),
      std::numeric_limits<float>::denorm_min(),
  };
  Rng rng(4242);
  for (int i = 0; i < 20000; ++i) {
    inputs.push_back(rng.NextGaussian() * 100.0f);
  }
  std::vector<Half> bulk(inputs.size());
  FloatToHalf(inputs.data(), bulk.data(), inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_EQ(Half::FromFloat(inputs[i]), bulk[i].bits()) << "i=" << i;
  }
}

TEST(HalfLutTest, RoundTripThroughBulkConvertersIsExact) {
  // Any value that is exactly representable in fp16 must survive
  // float -> half -> float unchanged through the bulk converters.
  std::vector<Half> all(1u << 16);
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    all[b] = Half::FromBits(static_cast<std::uint16_t>(b));
  }
  std::vector<float> f32(all.size());
  HalfToFloat(all.data(), f32.data(), all.size());
  std::vector<Half> back(f32.size());
  FloatToHalf(f32.data(), back.data(), f32.size());
  for (std::uint32_t b = 0; b < (1u << 16); ++b) {
    if (Half::FromBits(static_cast<std::uint16_t>(b)).IsNan()) {
      EXPECT_TRUE(back[b].IsNan()) << "half bits " << b;
    } else {
      EXPECT_EQ(back[b].bits(), b) << "half bits " << b;
    }
  }
}

}  // namespace
}  // namespace zero
