// Leveled logger: ZERO_LOG_LEVEL parsing, the log-line format, and the
// per-thread rank tag that attributes SPMD output.
#include <gtest/gtest.h>

#include <thread>

#include "common/logging.hpp"

namespace zero {
namespace {

TEST(LoggingTest, ParseLogLevelAcceptsNamesAndDigits) {
  EXPECT_EQ(ParseLogLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("error"), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("INFO"), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("Debug"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("0"), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3"), LogLevel::kError);
}

TEST(LoggingTest, ParseLogLevelRejectsGarbage) {
  EXPECT_EQ(ParseLogLevel(""), std::nullopt);
  EXPECT_EQ(ParseLogLevel("verbose"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("4"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("-1"), std::nullopt);
  EXPECT_EQ(ParseLogLevel("info "), std::nullopt);
}

TEST(LoggingTest, FormatLogLineCarriesLevelUptimeAndRank) {
  EXPECT_EQ(detail::FormatLogLine(LogLevel::kInfo, 12.345, 3, "hello"),
            "[zero INFO  +12.345s r3] hello");
  EXPECT_EQ(detail::FormatLogLine(LogLevel::kError, 0.001, 0, "boom"),
            "[zero ERROR +0.001s r0] boom");
  // Untagged threads (rank -1) omit the rank field.
  EXPECT_EQ(detail::FormatLogLine(LogLevel::kWarn, 1.5, -1, "no rank"),
            "[zero WARN  +1.500s] no rank");
}

TEST(LoggingTest, ThreadRankTagIsPerThread) {
  SetThreadLogRank(7);
  EXPECT_EQ(GetThreadLogRank(), 7);
  int other_thread_rank = 0;
  std::thread t([&] { other_thread_rank = GetThreadLogRank(); });
  t.join();
  EXPECT_EQ(other_thread_rank, -1);  // tags do not leak across threads
  SetThreadLogRank(-1);
  EXPECT_EQ(GetThreadLogRank(), -1);
}

TEST(LoggingTest, UptimeIsMonotonic) {
  const double a = LogUptimeSeconds();
  const double b = LogUptimeSeconds();
  EXPECT_GE(b, a);
  EXPECT_GE(a, 0.0);
}

TEST(LoggingTest, SetLogLevelRoundTrips) {
  const LogLevel before = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(before);
}

}  // namespace
}  // namespace zero
