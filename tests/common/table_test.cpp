#include "common/table.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/units.hpp"

namespace zero {
namespace {

TEST(TableTest, AlignsColumns) {
  Table t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer", "22"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("| name   | value |"), std::string::npos) << s;
  EXPECT_NE(s.find("| longer | 22    |"), std::string::npos) << s;
}

TEST(TableTest, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), Error);
}

TEST(TableTest, NumericRowFormatting) {
  Table t({"label", "v1", "v2"});
  t.AddRow("row", {1.23456, 1e9});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("1.235"), std::string::npos) << s;
  EXPECT_NE(s.find("1e+09"), std::string::npos) << s;
}

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(31.4e9), "31.4 GB");
  EXPECT_EQ(FormatBytes(16e12), "16 TB");
}

TEST(UnitsTest, FormatCount) {
  EXPECT_EQ(FormatCount(7.5e9), "7.5B");
  EXPECT_EQ(FormatCount(1e12), "1T");
  EXPECT_EQ(FormatCount(330e6), "330M");
}

TEST(UnitsTest, Constants) {
  EXPECT_EQ(GiB, 1073741824ull);
  EXPECT_EQ(GB, 1000000000ull);
  EXPECT_EQ(Billion(7.5), 7500000000ull);
}

}  // namespace
}  // namespace zero
