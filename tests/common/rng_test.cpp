#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace zero {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(123);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, SplitStreamsAreIndependentAndStable) {
  Rng root(77);
  Rng a = root.Split(1);
  Rng b = root.Split(2);
  Rng a2 = root.Split(1);
  // Same stream id -> identical stream; different id -> different stream.
  EXPECT_EQ(a.NextU64(), a2.NextU64());
  EXPECT_NE(a.NextU64(), b.NextU64());
  // Splitting does not perturb the parent.
  Rng root2(77);
  (void)root2.Split(5);
  Rng root3(77);
  EXPECT_EQ(root2.NextU64(), root3.NextU64());
}

}  // namespace
}  // namespace zero
