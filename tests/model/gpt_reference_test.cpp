// Brute-force reference checks for the GPT block: attention computed
// element by element from first principles, compared against the
// library's blocked/split-head implementation through the public
// FlatParamModel interface.
#include <gtest/gtest.h>

#include <cmath>

#include "model/gpt.hpp"

namespace zero::model {
namespace {

// Direct scalar implementation of one pre-norm transformer block (no
// batching tricks, no head splitting) for a single sequence.
struct ScalarRef {
  std::int64_t seq, hidden, heads;
  float eps;

  std::vector<float> LayerNorm(const std::vector<float>& x,
                               const float* gamma, const float* beta) const {
    std::vector<float> y(x.size());
    for (std::int64_t t = 0; t < seq; ++t) {
      double mu = 0;
      for (std::int64_t d = 0; d < hidden; ++d) {
        mu += x[static_cast<std::size_t>(t * hidden + d)];
      }
      mu /= hidden;
      double var = 0;
      for (std::int64_t d = 0; d < hidden; ++d) {
        const double diff = x[static_cast<std::size_t>(t * hidden + d)] - mu;
        var += diff * diff;
      }
      var /= hidden;
      const double rs = 1.0 / std::sqrt(var + eps);
      for (std::int64_t d = 0; d < hidden; ++d) {
        y[static_cast<std::size_t>(t * hidden + d)] = static_cast<float>(
            (x[static_cast<std::size_t>(t * hidden + d)] - mu) * rs *
                gamma[d] +
            beta[d]);
      }
    }
    return y;
  }

  // y[t, o] = sum_d x[t, d] * w[o, d] + b[o]
  std::vector<float> Linear(const std::vector<float>& x, const float* w,
                            const float* b, std::int64_t in,
                            std::int64_t out_dim) const {
    std::vector<float> y(static_cast<std::size_t>(seq * out_dim), 0.0f);
    for (std::int64_t t = 0; t < seq; ++t) {
      for (std::int64_t o = 0; o < out_dim; ++o) {
        double acc = b != nullptr ? b[o] : 0.0;
        for (std::int64_t d = 0; d < in; ++d) {
          acc += static_cast<double>(x[static_cast<std::size_t>(t * in + d)]) *
                 w[o * in + d];
        }
        y[static_cast<std::size_t>(t * out_dim + o)] =
            static_cast<float>(acc);
      }
    }
    return y;
  }

  std::vector<float> CausalAttention(const std::vector<float>& q,
                                     const std::vector<float>& k,
                                     const std::vector<float>& v) const {
    const std::int64_t hd = hidden / heads;
    const double scale = 1.0 / std::sqrt(static_cast<double>(hd));
    std::vector<float> ctx(static_cast<std::size_t>(seq * hidden), 0.0f);
    for (std::int64_t h = 0; h < heads; ++h) {
      for (std::int64_t t = 0; t < seq; ++t) {
        // Scores against positions 0..t.
        std::vector<double> scores(static_cast<std::size_t>(t + 1));
        double mx = -1e300;
        for (std::int64_t u = 0; u <= t; ++u) {
          double dot = 0;
          for (std::int64_t d = 0; d < hd; ++d) {
            dot += static_cast<double>(
                       q[static_cast<std::size_t>(t * hidden + h * hd + d)]) *
                   k[static_cast<std::size_t>(u * hidden + h * hd + d)];
          }
          scores[static_cast<std::size_t>(u)] = dot * scale;
          mx = std::max(mx, scores[static_cast<std::size_t>(u)]);
        }
        double z = 0;
        for (auto& s : scores) {
          s = std::exp(s - mx);
          z += s;
        }
        for (std::int64_t u = 0; u <= t; ++u) {
          const double w = scores[static_cast<std::size_t>(u)] / z;
          for (std::int64_t d = 0; d < hd; ++d) {
            ctx[static_cast<std::size_t>(t * hidden + h * hd + d)] +=
                static_cast<float>(
                    w * v[static_cast<std::size_t>(u * hidden + h * hd + d)]);
          }
        }
      }
    }
    return ctx;
  }
};

TEST(GptReferenceTest, LossMatchesScalarReference) {
  GptConfig cfg;
  cfg.vocab = 13;
  cfg.seq = 6;
  cfg.hidden = 12;
  cfg.layers = 1;
  cfg.heads = 3;
  GptModel model(cfg, {});
  const auto& layout = model.layout();
  std::vector<float> params(static_cast<std::size_t>(layout.total_numel()));
  model.InitParameters(params, 77);

  Batch batch;
  batch.rows = 1;
  batch.cols = cfg.seq;
  batch.inputs = {1, 4, 7, 2, 9, 12};
  batch.targets = {4, 7, 2, 9, 12, 0};

  // Library loss.
  std::vector<float> grads(params.size(), 0.0f);
  DirectParamProvider provider(layout, params);
  AccumulatingGradSink sink(layout, grads);
  const float lib_loss = model.Step(batch, provider, sink);

  // Scalar reference, reading parameters via the layout names.
  const auto at = [&](const std::string& name) {
    return params.data() + layout.Find(name).offset;
  };
  ScalarRef ref{cfg.seq, cfg.hidden, cfg.heads, cfg.ln_eps};
  const std::int64_t H = cfg.hidden;

  // Embedding.
  std::vector<float> x(static_cast<std::size_t>(cfg.seq * H));
  for (std::int64_t t = 0; t < cfg.seq; ++t) {
    for (std::int64_t d = 0; d < H; ++d) {
      x[static_cast<std::size_t>(t * H + d)] =
          at("wte")[batch.inputs[static_cast<std::size_t>(t)] * H + d] +
          at("wpe")[t * H + d];
    }
  }

  // Block 0.
  const auto a = ref.LayerNorm(x, at("h0.ln1.g"), at("h0.ln1.b"));
  const auto qkv =
      ref.Linear(a, at("h0.attn.w_qkv"), at("h0.attn.b_qkv"), H, 3 * H);
  std::vector<float> q(static_cast<std::size_t>(cfg.seq * H)),
      k(q.size()), v(q.size());
  for (std::int64_t t = 0; t < cfg.seq; ++t) {
    for (std::int64_t d = 0; d < H; ++d) {
      q[static_cast<std::size_t>(t * H + d)] =
          qkv[static_cast<std::size_t>(t * 3 * H + d)];
      k[static_cast<std::size_t>(t * H + d)] =
          qkv[static_cast<std::size_t>(t * 3 * H + H + d)];
      v[static_cast<std::size_t>(t * H + d)] =
          qkv[static_cast<std::size_t>(t * 3 * H + 2 * H + d)];
    }
  }
  const auto ctx = ref.CausalAttention(q, k, v);
  auto o = ref.Linear(ctx, at("h0.attn.w_o"), at("h0.attn.b_o"), H, H);
  for (std::size_t i = 0; i < x.size(); ++i) o[i] += x[i];  // residual 1
  const auto b2 = ref.LayerNorm(o, at("h0.ln2.g"), at("h0.ln2.b"));
  auto h1 = ref.Linear(b2, at("h0.mlp.w_fc"), at("h0.mlp.b_fc"), H, 4 * H);
  for (auto& u : h1) {  // GELU (tanh approximation)
    const double c = 0.7978845608028654;
    u = static_cast<float>(
        0.5 * u * (1.0 + std::tanh(c * (u + 0.044715 * u * u * u))));
  }
  auto p = ref.Linear(h1, at("h0.mlp.w_pr"), at("h0.mlp.b_pr"), 4 * H, H);
  for (std::size_t i = 0; i < p.size(); ++i) p[i] += o[i];  // residual 2

  // Final norm + tied logits + cross entropy.
  const auto y = ref.LayerNorm(p, at("lnf.g"), at("lnf.b"));
  double total = 0;
  for (std::int64_t t = 0; t < cfg.seq; ++t) {
    std::vector<double> logits(static_cast<std::size_t>(cfg.vocab));
    double mx = -1e300;
    for (std::int64_t w = 0; w < cfg.vocab; ++w) {
      double acc = 0;
      for (std::int64_t d = 0; d < H; ++d) {
        acc += static_cast<double>(
                   y[static_cast<std::size_t>(t * H + d)]) *
               at("wte")[w * H + d];
      }
      logits[static_cast<std::size_t>(w)] = acc;
      mx = std::max(mx, acc);
    }
    double z = 0;
    for (double l : logits) z += std::exp(l - mx);
    total += -(logits[static_cast<std::size_t>(
                   batch.targets[static_cast<std::size_t>(t)])] -
               mx - std::log(z));
  }
  const float ref_loss = static_cast<float>(total / cfg.seq);

  EXPECT_NEAR(lib_loss, ref_loss, 1e-4f * std::abs(ref_loss));
}

TEST(GptReferenceTest, TiedEmbeddingGetsBothGradientContributions) {
  // wte's gradient must include both the logits-projection term and the
  // input-embedding scatter term. Zeroing out one path (by checking the
  // gradient differs from a logits-only model would need surgery);
  // instead verify the cheap invariant: tokens that never appear in the
  // input still receive gradient through the logits path.
  GptConfig cfg;
  cfg.vocab = 11;
  cfg.seq = 4;
  cfg.hidden = 8;
  cfg.layers = 1;
  cfg.heads = 2;
  GptModel model(cfg, {});
  std::vector<float> params(
      static_cast<std::size_t>(model.layout().total_numel()));
  model.InitParameters(params, 5);
  std::vector<float> grads(params.size(), 0.0f);
  DirectParamProvider provider(model.layout(), params);
  AccumulatingGradSink sink(model.layout(), grads);
  Batch batch;
  batch.rows = 1;
  batch.cols = 4;
  batch.inputs = {1, 2, 3, 4};
  batch.targets = {2, 3, 4, 5};
  (void)model.Step(batch, provider, sink);

  const auto& wte = model.layout().Find("wte");
  // Token 9 is neither input nor target, yet softmax normalization
  // pushes probability mass off it: nonzero gradient via logits.
  double unused_norm = 0;
  for (std::int64_t d = 0; d < cfg.hidden; ++d) {
    unused_norm += std::abs(
        grads[static_cast<std::size_t>(wte.offset + 9 * cfg.hidden + d)]);
  }
  EXPECT_GT(unused_norm, 0.0);

  // Positional embeddings beyond... every position is used here; check
  // wpe rows all received gradient.
  const auto& wpe = model.layout().Find("wpe");
  for (std::int64_t t = 0; t < cfg.seq; ++t) {
    double row = 0;
    for (std::int64_t d = 0; d < cfg.hidden; ++d) {
      row += std::abs(
          grads[static_cast<std::size_t>(wpe.offset + t * cfg.hidden + d)]);
    }
    EXPECT_GT(row, 0.0) << "position " << t;
  }
}

TEST(GptReferenceTest, CausalityHoldsEndToEnd) {
  // Changing a *later* input token must not change the loss contribution
  // of earlier positions. Verify via total loss on a prefix-identical
  // pair: per-position CE for early positions is unchanged, so the loss
  // difference equals the late positions' difference. Cheap proxy:
  // freeze targets to the same values and check the loss changes only
  // through positions >= the edit point by comparing against a
  // recomputed suffix. Here: simply assert loss with a changed LAST
  // input differs, while a model evaluated on seq-1 prefix is identical.
  GptConfig cfg;
  cfg.vocab = 11;
  cfg.seq = 4;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.heads = 2;
  GptModel model(cfg, {});
  std::vector<float> params(
      static_cast<std::size_t>(model.layout().total_numel()));
  model.InitParameters(params, 5);

  auto loss_of = [&](std::vector<std::int32_t> inputs) {
    GptModel m(cfg, {});
    std::vector<float> g(params.size(), 0.0f);
    DirectParamProvider provider(m.layout(), params);
    AccumulatingGradSink sink(m.layout(), g);
    Batch b;
    b.rows = 1;
    b.cols = 4;
    b.inputs = std::move(inputs);
    b.targets = {1, 1, 1, 1};
    // Return the summed per-position losses via mean * positions.
    return m.Step(b, provider, sink) * 4.0f;
  };

  const float base = loss_of({3, 4, 5, 6});
  const float changed_last = loss_of({3, 4, 5, 9});
  EXPECT_NE(base, changed_last);
  // The first three positions' contributions are identical, so the
  // difference is bounded by one position's worst-case CE: |dl| <=
  // max single-token CE (~log V plus margin).
  EXPECT_LT(std::abs(base - changed_last),
            2.0f * std::log(static_cast<float>(cfg.vocab)));
}

}  // namespace
}  // namespace zero::model
