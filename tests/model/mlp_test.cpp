#include "model/mlp.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "optim/adam.hpp"

namespace zero::model {
namespace {

MlpConfig TinyConfig() {
  MlpConfig cfg;
  cfg.vocab = 12;
  cfg.embed = 6;
  cfg.hidden = 10;
  cfg.classes = 4;
  return cfg;
}

TEST(MlpModelTest, LayoutHasThreeUnits) {
  MlpModel m(TinyConfig());
  EXPECT_EQ(m.layout().num_units(), 3);
  const MlpConfig& c = m.config();
  EXPECT_EQ(m.layout().total_numel(),
            c.vocab * c.embed + c.hidden * c.embed + c.hidden +
                c.classes * c.hidden + c.classes);
}

TEST(MlpModelTest, InitialLossNearLogClasses) {
  MlpModel m(TinyConfig());
  std::vector<float> params(
      static_cast<std::size_t>(m.layout().total_numel()));
  m.InitParameters(params, 3);
  std::vector<float> grads(params.size(), 0.0f);
  DirectParamProvider provider(m.layout(), params);
  AccumulatingGradSink sink(m.layout(), grads);
  Batch batch = MakeClassificationBatch(TinyConfig(), 8, 5, 1, 2);
  const float loss = m.Step(batch, provider, sink);
  EXPECT_NEAR(loss, std::log(4.0f), 0.5f);
}

TEST(MlpModelTest, GradientMatchesFiniteDifference) {
  MlpConfig cfg = TinyConfig();
  MlpModel m(cfg);
  std::vector<float> params(
      static_cast<std::size_t>(m.layout().total_numel()));
  m.InitParameters(params, 5);
  Batch batch = MakeClassificationBatch(cfg, 3, 4, 1, 9);

  auto loss_at = [&](const std::vector<float>& p) {
    MlpModel model(cfg);
    std::vector<float> g(p.size(), 0.0f);
    DirectParamProvider provider(model.layout(), p);
    AccumulatingGradSink sink(model.layout(), g);
    return model.Step(batch, provider, sink);
  };

  std::vector<float> grads(params.size(), 0.0f);
  DirectParamProvider provider(m.layout(), params);
  AccumulatingGradSink sink(m.layout(), grads);
  (void)m.Step(batch, provider, sink);

  Rng pick(3);
  const float eps = 1e-3f;
  int checked = 0;
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t i = static_cast<std::size_t>(
        pick.NextBelow(static_cast<std::uint64_t>(params.size())));
    auto hi = params;
    auto lo = params;
    hi[i] += eps;
    lo[i] -= eps;
    const float numeric = (loss_at(hi) - loss_at(lo)) / (2 * eps);
    // ReLU kinks can spoil individual finite differences; skip near-zero
    // activations conservatively.
    if (std::abs(numeric) < 1e-5f && std::abs(grads[i]) < 1e-5f) continue;
    EXPECT_NEAR(grads[i], numeric,
                5e-2f * std::max(1.0f, std::abs(numeric)))
        << "param " << i;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(MlpModelTest, LearnsTheVotingTask) {
  MlpConfig cfg = TinyConfig();
  MlpModel m(cfg);
  std::vector<float> params(
      static_cast<std::size_t>(m.layout().total_numel()));
  m.InitParameters(params, 7);
  std::vector<float> mom(params.size(), 0.0f), var(params.size(), 0.0f);
  optim::AdamConfig adam;
  adam.lr = 5e-3f;
  float first = 0, last = 0;
  for (int step = 0; step < 150; ++step) {
    Batch batch = MakeClassificationBatch(cfg, 16, 5, 1,
                                          100 + static_cast<std::uint64_t>(step));
    std::vector<float> grads(params.size(), 0.0f);
    DirectParamProvider provider(m.layout(), params);
    AccumulatingGradSink sink(m.layout(), grads);
    const float loss = m.Step(batch, provider, sink);
    if (step == 0) first = loss;
    last = loss;
    optim::AdamUpdate(adam, step + 1, params, grads, mom, var);
  }
  EXPECT_LT(last, first - 0.4f);
}

TEST(MlpModelTest, TrainsUnderEveryZeroStage) {
  // The engine/model seam is model-agnostic: the MLP must train under
  // all four stages with matching exact-fp32 trajectories.
  MlpConfig cfg = TinyConfig();
  const int nd = 2;
  std::vector<std::vector<float>> results;
  for (model::ZeroStage stage :
       {ZeroStage::kNone, ZeroStage::kOs, ZeroStage::kOsG,
        ZeroStage::kOsGP}) {
    std::vector<float> params;
    comm::World world(nd);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      MlpModel model(cfg);
      core::EngineConfig ecfg;
      ecfg.stage = stage;
      ecfg.fp16 = false;
      ecfg.exact_reductions = true;
      core::ZeroDpEngine engine(ecfg, model, dp, nullptr, 11);
      for (int step = 0; step < 3; ++step) {
        Batch batch = MakeClassificationBatch(
            cfg, 4, 5, 1,
            static_cast<std::uint64_t>(step * nd + ctx.rank));
        (void)engine.TrainStep(batch);
      }
      auto p = engine.GatherFullParams();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) params = std::move(p);
    });
    results.push_back(std::move(params));
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "stage index " << i;
  }
}

TEST(MlpModelTest, BatchGeneratorIsDeterministicAndLabeledConsistently) {
  MlpConfig cfg = TinyConfig();
  Batch a = MakeClassificationBatch(cfg, 4, 5, 1, 2);
  Batch b = MakeClassificationBatch(cfg, 4, 5, 1, 2);
  EXPECT_EQ(a.inputs, b.inputs);
  EXPECT_EQ(a.targets, b.targets);
  // Same features but different task seed -> (generally) different labels.
  Batch c = MakeClassificationBatch(cfg, 4, 5, 999, 2);
  EXPECT_EQ(a.inputs, c.inputs);
  EXPECT_NE(a.targets, c.targets);
}

TEST(MlpModelTest, RejectsBadInput) {
  EXPECT_THROW(MlpModel(MlpConfig{.vocab = 1}), Error);
  MlpModel m(TinyConfig());
  std::vector<float> params(
      static_cast<std::size_t>(m.layout().total_numel()));
  m.InitParameters(params, 3);
  std::vector<float> grads(params.size(), 0.0f);
  DirectParamProvider provider(m.layout(), params);
  AccumulatingGradSink sink(m.layout(), grads);
  Batch bad = MakeClassificationBatch(TinyConfig(), 2, 3, 1, 2);
  bad.inputs[0] = 99;  // out-of-vocab feature
  EXPECT_THROW((void)m.Step(bad, provider, sink), Error);
}

}  // namespace
}  // namespace zero::model
