#include "model/corpus.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/error.hpp"

namespace zero::model {
namespace {

TEST(CorpusTest, TokensInVocabRange) {
  MarkovCorpus corpus(17, 3, 1);
  for (std::int32_t t : corpus.Sample(1000)) {
    EXPECT_GE(t, 0);
    EXPECT_LT(t, 17);
  }
}

TEST(CorpusTest, DeterministicForSeed) {
  MarkovCorpus a(32, 3, 9);
  MarkovCorpus b(32, 3, 9);
  EXPECT_EQ(a.Sample(200), b.Sample(200));
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  MarkovCorpus a(32, 3, 1);
  MarkovCorpus b(32, 3, 2);
  EXPECT_NE(a.Sample(200), b.Sample(200));
}

TEST(CorpusTest, BatchShapesAndShift) {
  MarkovCorpus corpus(32, 3, 5);
  Batch batch = corpus.NextBatch(4, 16);
  EXPECT_EQ(batch.rows, 4);
  EXPECT_EQ(batch.cols, 16);
  EXPECT_EQ(batch.inputs.size(), 64u);
  EXPECT_EQ(batch.targets.size(), 64u);
  // Targets are next-token shifted inputs within each row.
  for (int r = 0; r < 4; ++r) {
    for (int c = 0; c + 1 < 16; ++c) {
      EXPECT_EQ(batch.targets[static_cast<std::size_t>(r * 16 + c)],
                batch.inputs[static_cast<std::size_t>(r * 16 + c + 1)]);
    }
  }
}

TEST(CorpusTest, BranchingBoundsContextEntropy) {
  // With branching 2, each 2-token context allows at most 2 successors —
  // the structure a capable LM can learn.
  MarkovCorpus corpus(16, 2, 3);
  auto tokens = corpus.Sample(5000);
  std::map<std::pair<std::int32_t, std::int32_t>, std::set<std::int32_t>>
      successors;
  for (std::size_t i = 2; i < tokens.size(); ++i) {
    successors[{tokens[i - 2], tokens[i - 1]}].insert(tokens[i]);
  }
  for (const auto& [ctx, next] : successors) {
    EXPECT_LE(next.size(), 2u);
  }
}

TEST(CorpusTest, StreamsShareOneLanguage) {
  // Two readers of the same table (different stream seeds) must produce
  // different token sequences drawn from the SAME transition table —
  // the data-parallel sharding contract.
  MarkovCorpus a(16, 2, /*table_seed=*/3, /*stream_seed=*/0);
  MarkovCorpus b(16, 2, /*table_seed=*/3, /*stream_seed=*/1);
  auto ta = a.Sample(4000);
  auto tb = b.Sample(4000);
  EXPECT_NE(ta, tb);
  // Learn reader a's transitions, check reader b never violates them.
  std::map<std::pair<std::int32_t, std::int32_t>, std::set<std::int32_t>>
      allowed;
  for (std::size_t i = 2; i < ta.size(); ++i) {
    allowed[{ta[i - 2], ta[i - 1]}].insert(ta[i]);
  }
  int checked = 0, violations = 0;
  for (std::size_t i = 2; i < tb.size(); ++i) {
    auto it = allowed.find({tb[i - 2], tb[i - 1]});
    if (it == allowed.end()) continue;  // context a never visited
    ++checked;
    // With branching 2, a 4000-token sample may miss one successor of a
    // context; a *different table* would violate nearly everywhere.
    if (it->second.count(tb[i]) == 0) ++violations;
  }
  ASSERT_GT(checked, 1000);
  EXPECT_LT(static_cast<double>(violations) / checked, 0.2);
}

TEST(CorpusTest, RejectsBadConfig) {
  EXPECT_THROW(MarkovCorpus(1, 1, 0), Error);
  EXPECT_THROW(MarkovCorpus(8, 9, 0), Error);
}

}  // namespace
}  // namespace zero::model
