#include "model/flat_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zero::model {
namespace {

TEST(ParamLayoutTest, UnitsAreContiguousRanges) {
  ParamLayout layout;
  EXPECT_EQ(layout.Add("a", 10, 0), 0);
  EXPECT_EQ(layout.Add("b", 5, 0), 10);
  EXPECT_EQ(layout.Add("c", 7, 1), 15);
  EXPECT_EQ(layout.total_numel(), 22);
  EXPECT_EQ(layout.num_units(), 2);
  EXPECT_EQ(layout.UnitRange(0), (std::pair<std::int64_t, std::int64_t>{0, 15}));
  EXPECT_EQ(layout.UnitRange(1), (std::pair<std::int64_t, std::int64_t>{15, 22}));
  EXPECT_EQ(layout.UnitNumel(1), 7);
}

TEST(ParamLayoutTest, RejectsNonContiguousUnits) {
  ParamLayout layout;
  layout.Add("a", 3, 0);
  EXPECT_THROW(layout.Add("b", 3, 2), Error);  // skipped unit 1
  layout.Add("b", 3, 1);
  EXPECT_THROW(layout.Add("c", 3, 0), Error);  // going back
}

TEST(ParamLayoutTest, FindByName) {
  ParamLayout layout;
  layout.Add("wte", 100, 0);
  layout.Add("ln.g", 10, 1);
  EXPECT_EQ(layout.Find("ln.g").offset, 100);
  EXPECT_THROW(layout.Find("missing"), Error);
}

TEST(DirectProviderTest, ServesUnitViews) {
  ParamLayout layout;
  layout.Add("a", 4, 0);
  layout.Add("b", 4, 1);
  std::vector<float> flat{0, 1, 2, 3, 4, 5, 6, 7};
  DirectParamProvider provider(layout, flat);
  auto u1 = provider.AcquireUnit(1, Phase::kForward);
  EXPECT_EQ(u1.size(), 4u);
  EXPECT_EQ(u1[0], 4.0f);
  provider.ReleaseUnit(1, Phase::kForward);
}

TEST(AccumulatingSinkTest, AddsIntoFlatBuffer) {
  ParamLayout layout;
  layout.Add("a", 2, 0);
  layout.Add("b", 2, 1);
  std::vector<float> flat(4, 1.0f);
  AccumulatingGradSink sink(layout, flat);
  std::vector<float> g{5.0f, 6.0f};
  sink.EmitUnitGrad(1, g);
  EXPECT_EQ(flat[2], 6.0f);
  EXPECT_EQ(flat[3], 7.0f);
  EXPECT_EQ(flat[0], 1.0f);
}

}  // namespace
}  // namespace zero::model
