#include "model/gpt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/world.hpp"
#include "model/corpus.hpp"
#include "optim/adam.hpp"

namespace zero::model {
namespace {

GptConfig TinyConfig() {
  GptConfig cfg;
  cfg.vocab = 11;
  cfg.seq = 4;
  cfg.hidden = 8;
  cfg.layers = 2;
  cfg.heads = 2;
  return cfg;
}

Batch TinyBatch(const GptConfig& cfg, std::int64_t rows, std::uint64_t seed) {
  MarkovCorpus corpus(cfg.vocab, 3, seed);
  return corpus.NextBatch(rows, cfg.seq);
}

// Runs one forward+backward on heap storage; returns {loss, grads}.
std::pair<float, std::vector<float>> RunStep(const GptConfig& cfg,
                                             const Batch& batch,
                                             std::uint64_t seed,
                                             GptSession session = {}) {
  GptModel model(cfg, session);
  std::vector<float> params(
      static_cast<std::size_t>(model.layout().total_numel()));
  model.InitParameters(params, seed);
  std::vector<float> grads(params.size(), 0.0f);
  DirectParamProvider provider(model.layout(), params);
  AccumulatingGradSink sink(model.layout(), grads);
  const float loss = model.Step(batch, provider, sink);
  return {loss, std::move(grads)};
}

TEST(GptModelTest, ParameterCountMatchesFormula) {
  GptConfig cfg = TinyConfig();
  GptModel model(cfg, {});
  const std::int64_t h = cfg.hidden;
  const std::int64_t expected = cfg.layers * (12 * h * h + 13 * h) +
                                (cfg.vocab + cfg.seq) * h + 2 * h;
  EXPECT_EQ(model.layout().total_numel(), expected);
  EXPECT_EQ(model.layout().num_units(), static_cast<int>(cfg.layers) + 2);
}

TEST(GptModelTest, InitialLossIsNearLogVocab) {
  GptConfig cfg = TinyConfig();
  Batch batch = TinyBatch(cfg, 2, 1);
  auto [loss, grads] = RunStep(cfg, batch, 7);
  EXPECT_NEAR(loss, std::log(static_cast<float>(cfg.vocab)), 0.3f);
}

TEST(GptModelTest, DeterministicAcrossRuns) {
  GptConfig cfg = TinyConfig();
  Batch batch = TinyBatch(cfg, 2, 1);
  auto [l1, g1] = RunStep(cfg, batch, 7);
  auto [l2, g2] = RunStep(cfg, batch, 7);
  EXPECT_EQ(l1, l2);
  EXPECT_EQ(g1, g2);
}

TEST(GptModelTest, GradientMatchesFiniteDifference) {
  GptConfig cfg = TinyConfig();
  cfg.layers = 1;
  Batch batch = TinyBatch(cfg, 1, 2);

  GptModel model(cfg, {});
  std::vector<float> params(
      static_cast<std::size_t>(model.layout().total_numel()));
  model.InitParameters(params, 3);

  auto loss_at = [&](const std::vector<float>& p) {
    GptModel m(cfg, {});
    std::vector<float> g(p.size(), 0.0f);
    DirectParamProvider provider(m.layout(), p);
    AccumulatingGradSink sink(m.layout(), g);
    return m.Step(batch, provider, sink);
  };

  auto [loss, grads] = RunStep(cfg, batch, 3);
  (void)loss;

  // Spot-check a spread of parameters across every unit (full finite
  // difference over all ~2k params would be slow and redundant).
  Rng pick(99);
  const float eps = 1e-3f;
  int checked = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t i = static_cast<std::size_t>(
        pick.NextBelow(static_cast<std::uint64_t>(params.size())));
    std::vector<float> p_hi = params;
    std::vector<float> p_lo = params;
    p_hi[i] += eps;
    p_lo[i] -= eps;
    const float numeric = (loss_at(p_hi) - loss_at(p_lo)) / (2 * eps);
    if (std::abs(numeric) < 1e-5f && std::abs(grads[i]) < 1e-5f) continue;
    EXPECT_NEAR(grads[i], numeric,
                3e-2f * std::max(1.0f, std::abs(numeric)))
        << "param index " << i;
    ++checked;
  }
  EXPECT_GT(checked, 10);
}

TEST(GptModelTest, ActivationCheckpointingIsExact) {
  GptConfig cfg = TinyConfig();
  Batch batch = TinyBatch(cfg, 2, 4);

  auto [loss_plain, grads_plain] = RunStep(cfg, batch, 5);

  GptConfig ckpt_cfg = cfg;
  ckpt_cfg.activation_checkpointing = true;
  DeviceCheckpointStore store(nullptr);
  GptSession session;
  session.checkpoints = &store;
  auto [loss_ckpt, grads_ckpt] = RunStep(ckpt_cfg, batch, 5, session);

  // Recompute replays identical fp32 math: results must be bitwise equal.
  EXPECT_EQ(loss_plain, loss_ckpt);
  ASSERT_EQ(grads_plain.size(), grads_ckpt.size());
  for (std::size_t i = 0; i < grads_plain.size(); ++i) {
    ASSERT_EQ(grads_plain[i], grads_ckpt[i]) << "grad index " << i;
  }
}

TEST(GptModelTest, TrainingReducesLoss) {
  GptConfig cfg = TinyConfig();
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.seq = 8;
  GptModel model(cfg, {});
  std::vector<float> params(
      static_cast<std::size_t>(model.layout().total_numel()));
  model.InitParameters(params, 11);
  std::vector<float> m(params.size(), 0.0f), v(params.size(), 0.0f);
  optim::AdamConfig adam;
  adam.lr = 3e-3f;

  MarkovCorpus corpus(cfg.vocab, 2, 21);
  const int steps = 200;
  std::vector<float> losses;
  for (int step = 0; step < steps; ++step) {
    Batch batch = corpus.NextBatch(8, cfg.seq);
    std::vector<float> grads(params.size(), 0.0f);
    DirectParamProvider provider(model.layout(), params);
    AccumulatingGradSink sink(model.layout(), grads);
    losses.push_back(model.Step(batch, provider, sink));
    optim::AdamUpdate(adam, step + 1, params, grads, m, v);
  }
  // Compare averaged windows to smooth per-batch noise.
  float head = 0, tail = 0;
  for (int i = 0; i < 10; ++i) {
    head += losses[static_cast<std::size_t>(i)] / 10.0f;
    tail += losses[static_cast<std::size_t>(steps - 10 + i)] / 10.0f;
  }
  EXPECT_LT(tail, head - 0.3f);
}

TEST(GptModelTest, DeviceBackedStepReleasesAllActivations) {
  alloc::DeviceMemory dev(16ull << 20, "gpt");
  alloc::CachingAllocator cache(dev);
  GptConfig cfg = TinyConfig();
  GptSession session;
  session.device = &cache;
  GptModel model(cfg, session);
  std::vector<float> params(
      static_cast<std::size_t>(model.layout().total_numel()));
  model.InitParameters(params, 1);
  std::vector<float> grads(params.size(), 0.0f);
  DirectParamProvider provider(model.layout(), params);
  AccumulatingGradSink sink(model.layout(), grads);
  Batch batch = TinyBatch(cfg, 2, 6);
  (void)model.Step(batch, provider, sink);
  // Every activation tensor must be returned to the cache by step end.
  EXPECT_EQ(cache.Stats().live_bytes, 0u);
  EXPECT_GT(cache.Stats().peak_live, 0u);
}

TEST(GptModelTest, RejectsInvalidConfigs) {
  GptConfig cfg = TinyConfig();
  cfg.activation_checkpointing = true;  // without a store
  EXPECT_THROW(GptModel(cfg, {}), Error);

  GptConfig bad = TinyConfig();
  bad.heads = 3;  // hidden 8 not divisible by 3
  EXPECT_THROW(GptModel(bad, {}), Error);
}

TEST(GptModelTest, RejectsOutOfRangeTokens) {
  GptConfig cfg = TinyConfig();
  GptModel model(cfg, {});
  std::vector<float> params(
      static_cast<std::size_t>(model.layout().total_numel()));
  model.InitParameters(params, 1);
  std::vector<float> grads(params.size(), 0.0f);
  DirectParamProvider provider(model.layout(), params);
  AccumulatingGradSink sink(model.layout(), grads);
  Batch batch;
  batch.rows = 1;
  batch.cols = cfg.seq;
  batch.inputs.assign(static_cast<std::size_t>(cfg.seq), 99);  // > vocab
  batch.targets.assign(static_cast<std::size_t>(cfg.seq), 0);
  EXPECT_THROW((void)model.Step(batch, provider, sink), Error);
}

// --- model parallelism ---

class GptMpTest : public ::testing::TestWithParam<int> {};

TEST_P(GptMpTest, MpMatchesSingleRankExactlyAtStepZero) {
  const int m = GetParam();
  GptConfig cfg = TinyConfig();
  cfg.heads = 4;
  cfg.hidden = 16;  // head dim 4, divisible by mp in {1,2,4}
  Batch batch = TinyBatch(cfg, 2, 8);

  auto [ref_loss, ref_grads] = RunStep(cfg, batch, 13);

  std::vector<float> mp_losses(static_cast<std::size_t>(m));
  comm::World world(m);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator mp_comm = comm::Communicator::WholeWorld(ctx);
    GptSession session;
    session.mp = &mp_comm;
    GptModel model(cfg, session);
    std::vector<float> params(
        static_cast<std::size_t>(model.layout().total_numel()));
    model.InitParameters(params, 13);
    std::vector<float> grads(params.size(), 0.0f);
    DirectParamProvider provider(model.layout(), params);
    AccumulatingGradSink sink(model.layout(), grads);
    mp_losses[static_cast<std::size_t>(ctx.rank)] =
        model.Step(batch, provider, sink);
  });

  for (int r = 0; r < m; ++r) {
    // All MP ranks compute the same loss, equal to the single-rank run up
    // to fp32 reduction reordering.
    EXPECT_NEAR(mp_losses[static_cast<std::size_t>(r)], ref_loss,
                2e-4f * std::abs(ref_loss))
        << "rank " << r;
  }
}

TEST_P(GptMpTest, ReplicatedParamGradsAgreeAcrossMpRanks) {
  const int m = GetParam();
  if (m == 1) GTEST_SKIP();
  GptConfig cfg = TinyConfig();
  cfg.heads = 4;
  cfg.hidden = 16;
  Batch batch = TinyBatch(cfg, 2, 9);

  std::vector<std::vector<float>> rank_grads(static_cast<std::size_t>(m));
  comm::World world(m);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator mp_comm = comm::Communicator::WholeWorld(ctx);
    GptSession session;
    session.mp = &mp_comm;
    GptModel model(cfg, session);
    std::vector<float> params(
        static_cast<std::size_t>(model.layout().total_numel()));
    model.InitParameters(params, 17);
    std::vector<float> grads(params.size(), 0.0f);
    DirectParamProvider provider(model.layout(), params);
    AccumulatingGradSink sink(model.layout(), grads);
    (void)model.Step(batch, provider, sink);
    // Embedding unit is replicated across MP; its grads must agree.
    auto [b, e] = model.layout().UnitRange(0);
    rank_grads[static_cast<std::size_t>(ctx.rank)] =
        std::vector<float>(grads.begin() + b, grads.begin() + e);
  });
  for (int r = 1; r < m; ++r) {
    ASSERT_EQ(rank_grads[0].size(), rank_grads[static_cast<std::size_t>(r)].size());
    for (std::size_t i = 0; i < rank_grads[0].size(); ++i) {
      ASSERT_NEAR(rank_grads[0][i], rank_grads[static_cast<std::size_t>(r)][i],
                  1e-4f)
          << "rank " << r << " index " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(MpDegrees, GptMpTest, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace zero::model
