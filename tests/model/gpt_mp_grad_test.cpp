// Megatron-MP gradient correctness: run the same global model and batch
// at MP = 1 and MP = 2, re-assemble the MP = 2 ranks' sharded gradients
// into global coordinates, and compare element-wise. This pins down the
// column/row-parallel backward paths (and the two backward all-reduces)
// far more tightly than loss agreement alone.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/world.hpp"
#include "model/corpus.hpp"
#include "model/gpt.hpp"

namespace zero::model {
namespace {

GptConfig Config() {
  GptConfig cfg;
  cfg.vocab = 13;
  cfg.seq = 6;
  cfg.hidden = 16;
  cfg.layers = 2;
  cfg.heads = 4;
  return cfg;
}

struct RankRun {
  std::vector<float> grads;
};

TEST(GptMpGradTest, ShardedGradientsReassembleToSingleRankGradients) {
  const GptConfig cfg = Config();
  MarkovCorpus corpus(cfg.vocab, 3, 31);
  const Batch batch = corpus.NextBatch(2, cfg.seq);

  // --- MP = 1 reference ---
  GptModel ref(cfg, {});
  std::vector<float> ref_params(
      static_cast<std::size_t>(ref.layout().total_numel()));
  ref.InitParameters(ref_params, 21);
  std::vector<float> ref_grads(ref_params.size(), 0.0f);
  {
    DirectParamProvider provider(ref.layout(), ref_params);
    AccumulatingGradSink sink(ref.layout(), ref_grads);
    (void)ref.Step(batch, provider, sink);
  }

  // --- MP = 2 run ---
  const int m = 2;
  std::vector<RankRun> runs(static_cast<std::size_t>(m));
  comm::World world(m);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator mp_comm = comm::Communicator::WholeWorld(ctx);
    GptSession session;
    session.mp = &mp_comm;
    GptModel model(cfg, session);
    std::vector<float> params(
        static_cast<std::size_t>(model.layout().total_numel()));
    model.InitParameters(params, 21);
    std::vector<float> grads(params.size(), 0.0f);
    DirectParamProvider provider(model.layout(), params);
    AccumulatingGradSink sink(model.layout(), grads);
    (void)model.Step(batch, provider, sink);
    runs[static_cast<std::size_t>(ctx.rank)].grads = std::move(grads);
  });

  // Both MP ranks share one (sharded) layout; rebuild it here by
  // replaying the GptModel constructor's registration order so the test
  // can address tensors by name without a communicator.
  const std::int64_t h = cfg.hidden;
  const std::int64_t hm = h / m;
  const std::int64_t im = cfg.inner() / m;

  const auto& ref_layout = ref.layout();
  auto ref_at = [&](const std::string& name) {
    return ref_layout.Find(name).offset;
  };

  // Walk the sharded layout exactly as GptModel builds it.
  ParamLayout sharded;
  sharded.Add("wte", cfg.vocab * h, 0);
  sharded.Add("wpe", cfg.seq * h, 0);
  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    const std::string p = "h" + std::to_string(l) + ".";
    const int unit = static_cast<int>(l) + 1;
    sharded.Add(p + "ln1.g", h, unit);
    sharded.Add(p + "ln1.b", h, unit);
    sharded.Add(p + "attn.w_qkv", 3 * hm * h, unit);
    sharded.Add(p + "attn.b_qkv", 3 * hm, unit);
    sharded.Add(p + "attn.w_o", h * hm, unit);
    sharded.Add(p + "attn.b_o", h, unit);
    sharded.Add(p + "ln2.g", h, unit);
    sharded.Add(p + "ln2.b", h, unit);
    sharded.Add(p + "mlp.w_fc", im * h, unit);
    sharded.Add(p + "mlp.b_fc", im, unit);
    sharded.Add(p + "mlp.w_pr", h * im, unit);
    sharded.Add(p + "mlp.b_pr", h, unit);
  }
  sharded.Add("lnf.g", h, static_cast<int>(cfg.layers) + 1);
  sharded.Add("lnf.b", h, static_cast<int>(cfg.layers) + 1);
  ASSERT_EQ(sharded.total_numel(),
            static_cast<std::int64_t>(runs[0].grads.size()));

  const float tol = 2e-3f;
  auto expect_near = [&](float actual, float expected, const char* what) {
    ASSERT_NEAR(actual, expected,
                tol * std::max(1.0f, std::abs(expected)))
        << what;
  };

  // Replicated tensors: both ranks' grads equal the reference.
  for (const char* name : {"wte", "wpe", "lnf.g", "lnf.b"}) {
    const auto& se = sharded.Find(name);
    const auto ro = ref_at(name);
    for (std::int64_t i = 0; i < se.numel; ++i) {
      for (int r = 0; r < m; ++r) {
        expect_near(
            runs[static_cast<std::size_t>(r)]
                .grads[static_cast<std::size_t>(se.offset + i)],
            ref_grads[static_cast<std::size_t>(ro + i)], name);
      }
    }
  }

  for (std::int64_t l = 0; l < cfg.layers; ++l) {
    const std::string p = "h" + std::to_string(l) + ".";
    // Replicated per-layer tensors.
    for (const char* base :
         {"ln1.g", "ln1.b", "attn.b_o", "ln2.g", "ln2.b", "mlp.b_pr"}) {
      const auto& se = sharded.Find(p + base);
      const auto ro = ref_at(p + base);
      for (std::int64_t i = 0; i < se.numel; ++i) {
        for (int r = 0; r < m; ++r) {
          expect_near(
              runs[static_cast<std::size_t>(r)]
                  .grads[static_cast<std::size_t>(se.offset + i)],
              ref_grads[static_cast<std::size_t>(ro + i)], base);
        }
      }
    }

    // Column-parallel w_qkv: rank r's q/k/v row blocks map to global
    // rows [r*hm, (r+1)*hm) of each of q, k, v; full row width h.
    {
      const auto so = sharded.Find(p + "attn.w_qkv").offset;
      const auto ro = ref_at(p + "attn.w_qkv");
      for (int r = 0; r < m; ++r) {
        for (int part = 0; part < 3; ++part) {  // q, k, v
          for (std::int64_t row = 0; row < hm; ++row) {
            for (std::int64_t col = 0; col < h; ++col) {
              const std::int64_t local =
                  so + (part * hm + row) * h + col;
              const std::int64_t global =
                  ro + (part * h + r * hm + row) * h + col;
              expect_near(runs[static_cast<std::size_t>(r)]
                              .grads[static_cast<std::size_t>(local)],
                          ref_grads[static_cast<std::size_t>(global)],
                          "w_qkv");
            }
          }
        }
      }
    }
    // Column-parallel b_qkv (three hm-slices of the 3h global bias).
    {
      const auto so = sharded.Find(p + "attn.b_qkv").offset;
      const auto ro = ref_at(p + "attn.b_qkv");
      for (int r = 0; r < m; ++r) {
        for (int part = 0; part < 3; ++part) {
          for (std::int64_t i = 0; i < hm; ++i) {
            expect_near(
                runs[static_cast<std::size_t>(r)].grads[static_cast<
                    std::size_t>(so + part * hm + i)],
                ref_grads[static_cast<std::size_t>(ro + part * h + r * hm +
                                                   i)],
                "b_qkv");
          }
        }
      }
    }
    // Row-parallel w_o: rank r keeps columns [r*hm, (r+1)*hm).
    {
      const auto so = sharded.Find(p + "attn.w_o").offset;
      const auto ro = ref_at(p + "attn.w_o");
      for (int r = 0; r < m; ++r) {
        for (std::int64_t row = 0; row < h; ++row) {
          for (std::int64_t col = 0; col < hm; ++col) {
            expect_near(
                runs[static_cast<std::size_t>(r)].grads[static_cast<
                    std::size_t>(so + row * hm + col)],
                ref_grads[static_cast<std::size_t>(ro + row * h + r * hm +
                                                   col)],
                "w_o");
          }
        }
      }
    }
    // Column-parallel w_fc rows; row-parallel w_pr columns; b_fc slices.
    {
      const auto so = sharded.Find(p + "mlp.w_fc").offset;
      const auto ro = ref_at(p + "mlp.w_fc");
      for (int r = 0; r < m; ++r) {
        for (std::int64_t row = 0; row < im; ++row) {
          for (std::int64_t col = 0; col < h; ++col) {
            expect_near(
                runs[static_cast<std::size_t>(r)].grads[static_cast<
                    std::size_t>(so + row * h + col)],
                ref_grads[static_cast<std::size_t>(
                    ro + (r * im + row) * h + col)],
                "w_fc");
          }
        }
      }
    }
    {
      const auto so = sharded.Find(p + "mlp.b_fc").offset;
      const auto ro = ref_at(p + "mlp.b_fc");
      for (int r = 0; r < m; ++r) {
        for (std::int64_t i = 0; i < im; ++i) {
          expect_near(runs[static_cast<std::size_t>(r)]
                          .grads[static_cast<std::size_t>(so + i)],
                      ref_grads[static_cast<std::size_t>(ro + r * im + i)],
                      "b_fc");
        }
      }
    }
    {
      const auto so = sharded.Find(p + "mlp.w_pr").offset;
      const auto ro = ref_at(p + "mlp.w_pr");
      for (int r = 0; r < m; ++r) {
        for (std::int64_t row = 0; row < h; ++row) {
          for (std::int64_t col = 0; col < im; ++col) {
            expect_near(
                runs[static_cast<std::size_t>(r)].grads[static_cast<
                    std::size_t>(so + row * im + col)],
                ref_grads[static_cast<std::size_t>(
                    ro + row * cfg.inner() + r * im + col)],
                "w_pr");
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace zero::model
