#include "model/transformer_spec.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace zero::model {
namespace {

TEST(TransformerSpecTest, ParamCountsMatchPaperConfigs) {
  // Table 4: the paper's named model sizes from (layers, hidden).
  struct Case {
    std::int64_t layers, hidden;
    double expected_billions, tolerance;
  };
  const Case cases[] = {
      {48, 1600, 1.5, 0.15},    // GPT-2 1.5B
      {72, 3072, 8.0, 0.4},     // 8B
      {88, 6144, 40.0, 2.0},    // 40B
      {132, 6144, 60.0, 3.0},   // 60B
      {125, 8192, 100.0, 3.0},  // 100B
      {212, 8192, 170.0, 5.0},  // 170B
  };
  for (const Case& c : cases) {
    TransformerSpec spec;
    spec.layers = c.layers;
    spec.hidden = c.hidden;
    spec.heads = 16;
    const double psi = static_cast<double>(spec.NumParameters()) / 1e9;
    EXPECT_NEAR(psi, c.expected_billions, c.tolerance)
        << c.layers << "x" << c.hidden;
  }
}

TEST(TransformerSpecTest, ActivationFootprintMatchesFootnote3) {
  // Sec 3.2: 1.5B GPT-2, seq 1K, batch 32 -> ~60 GB of activations.
  TransformerSpec spec;
  spec.layers = 48;
  spec.hidden = 1600;
  spec.heads = 16;
  spec.seq = 1024;
  EXPECT_NEAR(spec.ActivationBytes(32) / 1e9, 60.0, 6.0);
}

TEST(TransformerSpecTest, CheckpointMemoryMatchesSec61Example) {
  // Sec 6.1: 100B model, batch 32, seq 1024, MP 16. One fp16 checkpoint
  // per layer is 2*32*1024*8192 bytes = 0.55 GB; for 125 layers that is
  // 68.7 GB, which Pa divides by the MP degree. (The paper quotes
  // "about 33 GB" / "about 2 GB" — the value for checkpointing every
  // other layer; the 16x Pa ratio, which is the claim under test, is
  // independent of checkpoint density.)
  TransformerSpec spec;
  spec.layers = 125;
  spec.hidden = 8192;
  spec.heads = 64;
  spec.seq = 1024;
  const double ckpt_gb = spec.CheckpointBytes(32) / 1e9;
  EXPECT_NEAR(ckpt_gb, 67.1, 1.0);
  EXPECT_NEAR(ckpt_gb / 2.0, 33.0, 2.0);       // every-other-layer reading
  EXPECT_NEAR(ckpt_gb / 2.0 / 16.0, 2.0, 0.2);  // the Sec 6.1 Pa example
}

TEST(TransformerSpecTest, StepFlopsRecomputeFactor) {
  TransformerSpec spec;
  spec.layers = 10;
  spec.hidden = 512;
  spec.heads = 8;
  spec.seq = 128;
  const double no_ckpt = spec.StepFlops(4, false);
  const double with_ckpt = spec.StepFlops(4, true);
  EXPECT_NEAR(with_ckpt / no_ckpt, 4.0 / 3.0, 1e-9);
}

TEST(ModelStatesTest, Figure1Examples) {
  // Fig 1 / Sec 5: Psi = 7.5B, Nd = 64, K = 12.
  const double psi = 7.5e9;
  const double baseline =
      PerDeviceModelStates(psi, ZeroStage::kNone, 64).total();
  EXPECT_NEAR(baseline / 1e9, 120.0, 0.1);
  const double pos = PerDeviceModelStates(psi, ZeroStage::kOs, 64).total();
  EXPECT_NEAR(pos / 1e9, 31.4, 0.1);
  const double posg = PerDeviceModelStates(psi, ZeroStage::kOsG, 64).total();
  EXPECT_NEAR(posg / 1e9, 16.6, 0.1);
  const double posgp =
      PerDeviceModelStates(psi, ZeroStage::kOsGP, 64).total();
  EXPECT_NEAR(posgp / 1e9, 1.88, 0.01);
}

TEST(ModelStatesTest, AsymptoticReductions) {
  // Sec 5: 4x for Pos, 8x for Pos+g, Nd-fold for Pos+g+p at large Nd.
  const double psi = 1e12;
  const int nd = 1024;
  const double base = PerDeviceModelStates(psi, ZeroStage::kNone, nd).total();
  EXPECT_NEAR(base / PerDeviceModelStates(psi, ZeroStage::kOs, nd).total(),
              4.0, 0.05);
  EXPECT_NEAR(base / PerDeviceModelStates(psi, ZeroStage::kOsG, nd).total(),
              8.0, 0.1);
  EXPECT_NEAR(base / PerDeviceModelStates(psi, ZeroStage::kOsGP, nd).total(),
              static_cast<double>(nd), 1.0);
}

TEST(ModelStatesTest, TrillionParameterHeadline) {
  // Sec 1: 1T parameters require ~16 TB total; /1024 GPUs = 15.6 GB.
  const double psi = 1e12;
  EXPECT_NEAR(PerDeviceModelStates(psi, ZeroStage::kNone, 1).total() / 1e12,
              16.0, 0.01);
  EXPECT_NEAR(
      PerDeviceModelStates(psi, ZeroStage::kOsGP, 1024).total() / 1e9, 15.6,
      0.1);
}

}  // namespace
}  // namespace zero::model
