#include "core/partition.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zero::core {
namespace {

TEST(PartitionerTest, EvenSplit) {
  Partitioner p(100, 4);
  EXPECT_EQ(p.partition_size(), 25);
  EXPECT_EQ(p.padded_total(), 100);
  EXPECT_EQ(p.PartitionRange(2), (Range{50, 75}));
  EXPECT_EQ(p.PartitionRangeClipped(3), (Range{75, 100}));
}

TEST(PartitionerTest, UnevenSplitPadsTail) {
  Partitioner p(10, 4);
  EXPECT_EQ(p.partition_size(), 3);
  EXPECT_EQ(p.padded_total(), 12);
  EXPECT_EQ(p.PartitionRange(3), (Range{9, 12}));
  EXPECT_EQ(p.PartitionRangeClipped(3), (Range{9, 10}));
}

TEST(PartitionerTest, PartitionEntirelyInPaddingClipsEmpty) {
  Partitioner p(5, 8);
  EXPECT_EQ(p.partition_size(), 1);
  EXPECT_EQ(p.PartitionRangeClipped(7), (Range{5, 5}));
  EXPECT_TRUE(p.PartitionRangeClipped(7).empty());
}

TEST(PartitionerTest, OwnerOf) {
  Partitioner p(100, 4);
  EXPECT_EQ(p.OwnerOf(0), 0);
  EXPECT_EQ(p.OwnerOf(24), 0);
  EXPECT_EQ(p.OwnerOf(25), 1);
  EXPECT_EQ(p.OwnerOf(99), 3);
  EXPECT_THROW(p.OwnerOf(100), Error);
}

TEST(PartitionerTest, OverlapsSpanningMultiplePartitions) {
  Partitioner p(100, 4);
  auto overlaps = p.Overlaps(Range{20, 60});
  ASSERT_EQ(overlaps.size(), 3u);
  EXPECT_EQ(overlaps[0], (std::pair<int, Range>{0, {20, 25}}));
  EXPECT_EQ(overlaps[1], (std::pair<int, Range>{1, {25, 50}}));
  EXPECT_EQ(overlaps[2], (std::pair<int, Range>{2, {50, 60}}));
}

TEST(PartitionerTest, OverlapsOfEmptyRange) {
  Partitioner p(100, 4);
  EXPECT_TRUE(p.Overlaps(Range{30, 30}).empty());
}

TEST(PartitionerTest, RangesTileWholeSpace) {
  Partitioner p(1003, 7);
  std::int64_t covered = 0;
  for (int j = 0; j < 7; ++j) {
    const Range r = p.PartitionRange(j);
    EXPECT_EQ(r.begin, covered);
    covered = r.end;
  }
  EXPECT_EQ(covered, p.padded_total());
}

TEST(IntersectTest, Basics) {
  EXPECT_EQ(Intersect({0, 10}, {5, 15}), (Range{5, 10}));
  EXPECT_TRUE(Intersect({0, 5}, {5, 10}).empty());
  EXPECT_TRUE(Intersect({0, 5}, {7, 10}).empty());
}

}  // namespace
}  // namespace zero::core
