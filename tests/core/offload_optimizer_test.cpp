// Optimizer-state offload (EngineConfig::offload_optimizer): the K*Psi/Nd
// fp32 state moves to host memory without changing a single computed bit.
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"

namespace zero::core {
namespace {

using model::Batch;
using model::ZeroStage;

Batch MakeBatch(int rank, int step) {
  Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

TEST(OffloadOptimizerTest, TrajectoryIsBitwiseIdentical) {
  // Offload changes where the state lives, not the arithmetic.
  const int nd = 2;
  const std::int64_t numel = 101;
  auto run = [&](bool offload) {
    std::vector<float> out;
    std::mutex mu;
    comm::World world(nd);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 4);
      EngineConfig cfg;
      cfg.stage = ZeroStage::kOsG;
      cfg.fp16 = true;
      cfg.offload_optimizer = offload;
      ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
      for (int s = 0; s < 4; ++s) {
        (void)engine.TrainStep(MakeBatch(ctx.rank, s));
      }
      auto p = engine.GatherFullParams();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) out = std::move(p);
    });
    return out;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(OffloadOptimizerTest, DeviceMemoryDropsByK) {
  const int nd = 2;
  const std::int64_t numel = 1 << 12;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, 4);

    alloc::DeviceMemory dev_a(4ull << 20, "plain");
    alloc::CachingAllocator cache_a(dev_a);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    ZeroDpEngine plain(cfg, m, dp, &cache_a, 3);

    alloc::DeviceMemory dev_b(4ull << 20, "offload");
    alloc::CachingAllocator cache_b(dev_b);
    cfg.offload_optimizer = true;
    ZeroDpEngine offloaded(cfg, m, dp, &cache_b, 3);

    const std::size_t shard = static_cast<std::size_t>(numel) / nd;
    const std::size_t k_bytes = 12u * shard;
    EXPECT_GE(dev_a.Stats().in_use, dev_b.Stats().in_use + k_bytes);

    const ModelStateReport r = offloaded.MeasureModelStates();
    EXPECT_TRUE(r.optimizer_on_host);
    EXPECT_EQ(r.device_total(), r.param_bytes + r.grad_bytes);
    EXPECT_EQ(plain.MeasureModelStates().device_total(),
              plain.MeasureModelStates().total());
  });
}

TEST(OffloadOptimizerTest, TransferAccountingPerStep) {
  const int nd = 2;
  const std::int64_t numel = 1 << 10;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    cfg.offload_optimizer = true;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
    EXPECT_EQ(engine.optimizer_transfer_bytes(), 0u);
    (void)engine.TrainStep(MakeBatch(ctx.rank, 0));
    // Shard of 512 fp16 elements: 2 bytes each, in and out.
    EXPECT_EQ(engine.optimizer_transfer_bytes(), 512u * 2u * 2u);
    (void)engine.TrainStep(MakeBatch(ctx.rank, 1));
    EXPECT_EQ(engine.optimizer_transfer_bytes(), 2u * 512u * 2u * 2u);
  });
}

TEST(OffloadOptimizerTest, ComposesWithAccumulationAndCheckpointing) {
  const int nd = 2;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(100, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsGP;
    cfg.fp16 = true;
    cfg.offload_optimizer = true;
    cfg.accumulation_steps = 2;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
    for (int s = 0; s < 4; ++s) {
      (void)engine.TrainStep(MakeBatch(ctx.rank, s));
    }
    EXPECT_EQ(engine.steps_taken(), 2);  // 4 micro-steps, 2 updates
    // Exported state round-trips even though it lives on the host.
    const TrainingState state = engine.ExportState();
    EXPECT_EQ(state.step_count, 2);
    engine.ImportState(state);
    (void)engine.TrainStep(MakeBatch(ctx.rank, 9));
  });
}

}  // namespace
}  // namespace zero::core
