// Checkpointing of ZeRO training state, including elastic resume at a
// different DP degree.
#include "core/state_checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"

namespace zero::core {
namespace {

using model::Batch;
using model::ZeroStage;

Batch RankBatch(int rank, int step) {
  Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

TEST(TrainingStateTest, SerializeRoundTrip) {
  TrainingState state;
  state.total_numel = 5;
  state.step_count = 42;
  state.loss_scale = 2048.0f;
  state.master = {1, 2, 3, 4, 5};
  state.momentum = {0.1f, 0.2f, 0.3f, 0.4f, 0.5f};
  state.variance = {9, 8, 7, 6, 5};
  const auto bytes = state.Serialize();
  const TrainingState back = TrainingState::Deserialize(bytes);
  EXPECT_EQ(back, state);
}

TEST(TrainingStateTest, RejectsCorruptData) {
  TrainingState state;
  state.total_numel = 2;
  state.master = {1, 2};
  state.momentum = {3, 4};
  state.variance = {5, 6};
  auto bytes = state.Serialize();
  // Truncated.
  EXPECT_THROW(TrainingState::Deserialize(
                   std::span<const std::byte>(bytes.data(), 10)),
               Error);
  // Bad magic.
  bytes[0] = static_cast<std::byte>(0xFF);
  EXPECT_THROW(TrainingState::Deserialize(bytes), Error);
}

TEST(TrainingStateTest, FileRoundTrip) {
  TrainingState state;
  state.total_numel = 3;
  state.step_count = 7;
  state.master = {1, 2, 3};
  state.momentum = {4, 5, 6};
  state.variance = {7, 8, 9};
  const std::string path = "/tmp/zero_ckpt_test.bin";
  state.SaveToFile(path);
  EXPECT_EQ(TrainingState::LoadFromFile(path), state);
  std::remove(path.c_str());
}

class ExportImportTest : public ::testing::TestWithParam<ZeroStage> {};

TEST_P(ExportImportTest, ResumeContinuesTrajectoryBitwise) {
  const ZeroStage stage = GetParam();
  const std::int64_t numel = 101;
  const int nd = 3;
  const int pre_steps = 2;
  const int post_steps = 3;
  optim::AdamConfig adam;
  adam.lr = 0.05f;

  auto make_cfg = [&] {
    EngineConfig cfg;
    cfg.stage = stage;
    cfg.fp16 = false;
    cfg.exact_reductions = true;
    cfg.adam = adam;
    return cfg;
  };

  // Uninterrupted run.
  std::vector<float> uninterrupted;
  {
    comm::World world(nd);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 4);
      ZeroDpEngine engine(make_cfg(), m, dp, nullptr, 1);
      for (int s = 0; s < pre_steps + post_steps; ++s) {
        (void)engine.TrainStep(RankBatch(ctx.rank, s));
      }
      auto p = engine.GatherFullParams();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) uninterrupted = std::move(p);
    });
  }

  // Save after pre_steps, resume into a fresh engine, finish.
  TrainingState saved;
  {
    comm::World world(nd);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 4);
      ZeroDpEngine engine(make_cfg(), m, dp, nullptr, 1);
      for (int s = 0; s < pre_steps; ++s) {
        (void)engine.TrainStep(RankBatch(ctx.rank, s));
      }
      TrainingState state = engine.ExportState();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) saved = std::move(state);
    });
  }
  EXPECT_EQ(saved.step_count, pre_steps);

  std::vector<float> resumed;
  {
    comm::World world(nd);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 4);
      // Different seed: everything is overwritten by the import.
      ZeroDpEngine engine(make_cfg(), m, dp, nullptr, 999);
      engine.ImportState(saved);
      EXPECT_EQ(engine.steps_taken(), pre_steps);
      for (int s = pre_steps; s < pre_steps + post_steps; ++s) {
        (void)engine.TrainStep(RankBatch(ctx.rank, s));
      }
      auto p = engine.GatherFullParams();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) resumed = std::move(p);
    });
  }

  ASSERT_EQ(resumed.size(), uninterrupted.size());
  for (std::size_t i = 0; i < resumed.size(); ++i) {
    ASSERT_EQ(resumed[i], uninterrupted[i])
        << "stage " << static_cast<int>(stage) << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllStages, ExportImportTest,
                         ::testing::Values(ZeroStage::kNone, ZeroStage::kOs,
                                           ZeroStage::kOsG,
                                           ZeroStage::kOsGP));

TEST(ElasticResumeTest, SavedAtNd4ResumesAtNd2) {
  // The exported state is Nd-independent, so resharding works. The
  // reference is computed with the matching per-phase DP degrees.
  const std::int64_t numel = 97;
  optim::AdamConfig adam;
  adam.lr = 0.05f;

  auto make_cfg = [&](ZeroStage stage) {
    EngineConfig cfg;
    cfg.stage = stage;
    cfg.fp16 = false;
    cfg.exact_reductions = true;
    cfg.adam = adam;
    return cfg;
  };

  // Phase 1: 2 steps at Nd = 4, stage 3.
  TrainingState saved;
  {
    comm::World world(4);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 4);
      ZeroDpEngine engine(make_cfg(ZeroStage::kOsGP), m, dp, nullptr, 1);
      (void)engine.TrainStep(RankBatch(ctx.rank, 0));
      (void)engine.TrainStep(RankBatch(ctx.rank, 1));
      TrainingState state = engine.ExportState();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) saved = std::move(state);
    });
  }

  // Phase 2: resume at Nd = 2 under a *different stage* too (stage 2).
  std::vector<float> resumed;
  {
    comm::World world(2);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 4);
      ZeroDpEngine engine(make_cfg(ZeroStage::kOsG), m, dp, nullptr, 7);
      engine.ImportState(saved);
      (void)engine.TrainStep(RankBatch(ctx.rank, 2));
      auto p = engine.GatherFullParams();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) resumed = std::move(p);
    });
  }

  // Reference: 2 steps averaging 4 rank-batches, then 1 step averaging 2.
  model::QuadModel m(numel, 4);
  std::vector<float> params(static_cast<std::size_t>(numel));
  m.InitParameters(params, 1);
  std::vector<float> mom(params.size(), 0.0f), var(params.size(), 0.0f);
  int t = 0;
  for (int step = 0; step < 3; ++step) {
    const int nd = step < 2 ? 4 : 2;
    std::vector<float> sum(params.size(), 0.0f);
    for (int r = 0; r < nd; ++r) {
      std::vector<float> g(params.size(), 0.0f);
      model::DirectParamProvider provider(m.layout(), params);
      model::AccumulatingGradSink sink(m.layout(), g);
      (void)m.Step(RankBatch(r, step), provider, sink);
      for (std::size_t i = 0; i < g.size(); ++i) sum[i] += g[i];
    }
    for (float& g : sum) g *= 1.0f / static_cast<float>(nd);
    optim::AdamUpdate(adam, ++t, params, sum, mom, var);
  }

  ASSERT_EQ(resumed.size(), params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    ASSERT_EQ(resumed[i], params[i]) << "i=" << i;
  }
}

TEST(ExportImportTest2, ExportIdenticalOnAllRanks) {
  const int nd = 3;
  std::vector<TrainingState> states(static_cast<std::size_t>(nd));
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(64, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
    (void)engine.TrainStep(RankBatch(ctx.rank, 0));
    states[static_cast<std::size_t>(ctx.rank)] = engine.ExportState();
  });
  for (int r = 1; r < nd; ++r) {
    EXPECT_EQ(states[0], states[static_cast<std::size_t>(r)]);
  }
}

TEST(ExportImportTest2, RejectsWrongModelSize) {
  comm::World world(1);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(64, 4);
    EngineConfig cfg;
    cfg.fp16 = true;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
    TrainingState wrong;
    wrong.total_numel = 65;
    wrong.master.resize(65);
    wrong.momentum.resize(65);
    wrong.variance.resize(65);
    EXPECT_THROW(engine.ImportState(wrong), Error);
  });
}

}  // namespace
}  // namespace zero::core
