// Edge cases of the ZeRO-DP engine: degenerate partition shapes, device
// capacity boundaries, and protocol misuse.
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"

namespace zero::core {
namespace {

using model::Batch;
using model::ZeroStage;

Batch MakeBatch(int rank, int step) {
  Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

// Fewer parameters than ranks: most partitions are pure padding, some
// units may be single elements.
TEST(EngineEdgeTest, ModelSmallerThanWorld) {
  const int nd = 8;
  const std::int64_t numel = 3;
  for (ZeroStage stage : {ZeroStage::kOs, ZeroStage::kOsG,
                          ZeroStage::kOsGP}) {
    std::vector<std::vector<float>> gathered(static_cast<std::size_t>(nd));
    comm::World world(nd);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 2);
      EngineConfig cfg;
      cfg.stage = stage;
      cfg.fp16 = true;
      ZeroDpEngine engine(cfg, m, dp, nullptr, 1);
      for (int s = 0; s < 3; ++s) {
        (void)engine.TrainStep(MakeBatch(ctx.rank, s));
      }
      gathered[static_cast<std::size_t>(ctx.rank)] =
          engine.GatherFullParams();
    });
    for (int r = 1; r < nd; ++r) {
      EXPECT_EQ(gathered[0], gathered[static_cast<std::size_t>(r)])
          << "stage " << static_cast<int>(stage);
    }
  }
}

TEST(EngineEdgeTest, SingleUnitModel) {
  // One unit spanning every partition exercises the multi-partition
  // bucketizer path in a single emission.
  const int nd = 4;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(257, 1);  // prime, one unit
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    cfg.bucket_elems = 8;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 1);
    const float first = engine.TrainStep(MakeBatch(ctx.rank, 0));
    const float second = engine.TrainStep(MakeBatch(ctx.rank, 0));
    EXPECT_LT(second, first);  // repeated batch: loss strictly improves
  });
}

TEST(EngineEdgeTest, SingleRankWorldAllStages) {
  // Nd = 1: all collectives degenerate; every stage must still work and
  // agree exactly with each other (no communication, no partitioning).
  std::vector<std::vector<float>> results;
  for (ZeroStage stage : {ZeroStage::kNone, ZeroStage::kOs,
                          ZeroStage::kOsG, ZeroStage::kOsGP}) {
    comm::World world(1);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(64, 4);
      EngineConfig cfg;
      cfg.stage = stage;
      cfg.fp16 = false;
      ZeroDpEngine engine(cfg, m, dp, nullptr, 4);
      for (int s = 0; s < 3; ++s) {
        (void)engine.TrainStep(MakeBatch(0, s));
      }
      results.push_back(engine.GatherFullParams());
    });
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    EXPECT_EQ(results[0], results[i]) << "stage index " << i;
  }
}

TEST(EngineEdgeTest, DeviceBackedTrainingRespectsCapacity) {
  // The whole engine state fits in a measured budget, and the same
  // config on a too-small device OOMs symmetrically on every rank.
  const int nd = 2;
  const std::int64_t numel = 4096;
  // Model states (stage 2): 2*psi params + (2+12)*psi/2 per rank ~= 36KB.
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    alloc::DeviceMemory dev(256ull << 10, "edge");
    alloc::CachingAllocator cache(dev);
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    ZeroDpEngine engine(cfg, m, dp, &cache, 1);
    (void)engine.TrainStep(MakeBatch(ctx.rank, 0));
    const ModelStateReport report = engine.MeasureModelStates();
    EXPECT_LE(report.total(), dev.Stats().peak_in_use);
  });

  comm::World world2(nd);
  world2.Run([&](comm::RankContext& ctx) {
    alloc::DeviceMemory dev(8ull << 10, "tiny");
    alloc::CachingAllocator cache(dev);
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    EXPECT_THROW(ZeroDpEngine(cfg, m, dp, &cache, 1), DeviceOomError);
  });
}

TEST(EngineEdgeTest, BucketSizeOneStillCorrect) {
  const int nd = 2;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(64, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsGP;
    cfg.fp16 = false;
    cfg.exact_reductions = true;
    cfg.bucket_elems = 1;  // one element per fused message
    ZeroDpEngine engine(cfg, m, dp, nullptr, 4);
    const float l0 = engine.TrainStep(MakeBatch(ctx.rank, 0));
    const float l1 = engine.TrainStep(MakeBatch(ctx.rank, 0));
    EXPECT_LT(l1, l0);
  });
}

TEST(EngineEdgeTest, RejectsZeroBucket) {
  comm::World world(1);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(8, 2);
    EngineConfig cfg;
    cfg.bucket_elems = 0;
    EXPECT_THROW(ZeroDpEngine(cfg, m, dp, nullptr, 1), Error);
  });
}

TEST(EngineEdgeTest, ManyUnitsPerPartition) {
  // Units much smaller than partitions: many emissions before a single
  // flush; coverage bookkeeping must fire exactly at the boundary.
  const int nd = 2;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(96, 24);  // 24 units, 2 partitions of 48
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 9);
    for (int s = 0; s < 2; ++s) {
      (void)engine.TrainStep(MakeBatch(ctx.rank, s));
    }
    EXPECT_EQ(engine.steps_taken(), 2);
  });
}

}  // namespace
}  // namespace zero::core
