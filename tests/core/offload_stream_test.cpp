// Streaming optimizer-state offload (core/offload_engine.hpp) must be a
// pure placement/latency optimization: with the fp32 state behind the
// host or simulated-NVMe tier, every trajectory — losses, fp16
// parameters, fp32 master/momentum/variance — must be bit-identical to
// the device-resident MixedPrecisionAdam at every stage, composed with
// prefetch, accumulation, eval, checkpoint/restore mid-training, and
// when the staging budget forces eager streaming back to blocking.
#include <gtest/gtest.h>

#include <vector>

#include "alloc/tier.hpp"
#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"
#include "obs/metrics.hpp"

namespace zero::core {
namespace {

using alloc::TierKind;
using model::Batch;
using model::ZeroStage;

Batch RankBatch(int rank, int step) {
  Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

struct Trajectory {
  std::vector<float> losses;  // rank 0's per-step losses
  TrainingState state;        // reassembled full training state
  friend bool operator==(const Trajectory&, const Trajectory&) = default;
};

Trajectory RunTraining(EngineConfig cfg, int nd, int steps,
                       std::int64_t numel, int units, std::uint64_t seed) {
  Trajectory out;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, units);
    ZeroDpEngine engine(cfg, m, dp, nullptr, seed);
    std::vector<float> losses;
    for (int step = 0; step < steps; ++step) {
      losses.push_back(engine.TrainStep(RankBatch(ctx.rank, step)));
    }
    TrainingState state = engine.ExportState();
    if (ctx.rank == 0) {
      out.losses = std::move(losses);
      out.state = std::move(state);
    }
  });
  return out;
}

// Small slices + small buckets so every step exercises multi-slice
// streaming and (stages 2/3) per-chunk grad finality.
EngineConfig StreamingConfig(ZeroStage stage, TierKind tier) {
  EngineConfig cfg;
  cfg.stage = stage;
  cfg.fp16 = true;
  cfg.bucket_elems = 16;
  cfg.offload_tier = tier;
  cfg.offload_slice_elems = 16;
  return cfg;
}

class OffloadTierTest : public ::testing::TestWithParam<TierKind> {};

TEST_P(OffloadTierTest, EveryStageBitExactVsDeviceResident) {
  const TierKind tier = GetParam();
  for (ZeroStage stage : {ZeroStage::kNone, ZeroStage::kOs, ZeroStage::kOsG,
                          ZeroStage::kOsGP}) {
    const Trajectory device =
        RunTraining(StreamingConfig(stage, TierKind::kDevice), 2, 4, 101, 4,
                    7);
    const Trajectory offloaded =
        RunTraining(StreamingConfig(stage, tier), 2, 4, 101, 4, 7);
    EXPECT_EQ(offloaded.losses, device.losses)
        << "stage=" << static_cast<int>(stage);
    EXPECT_EQ(offloaded.state, device.state)
        << "stage=" << static_cast<int>(stage);
  }
}

TEST_P(OffloadTierTest, Stage3WithPrefetchBitExact) {
  // The acceptance bar: offload composes with the prefetched stage-3
  // schedule (ZERO_PREFETCH=2) without changing a bit.
  const TierKind tier = GetParam();
  EngineConfig cfg = StreamingConfig(ZeroStage::kOsGP, TierKind::kDevice);
  cfg.prefetch_lookahead = 2;
  const Trajectory device = RunTraining(cfg, 4, 5, 131, 5, 7);
  cfg.offload_tier = tier;
  const Trajectory offloaded = RunTraining(cfg, 4, 5, 131, 5, 7);
  EXPECT_EQ(offloaded.losses, device.losses);
  EXPECT_EQ(offloaded.state, device.state);
}

TEST_P(OffloadTierTest, AccumulationBitExact) {
  // Accumulation disables eager streaming (grads are summed in fp32
  // first); the at-update path must still match exactly.
  const TierKind tier = GetParam();
  EngineConfig cfg = StreamingConfig(ZeroStage::kOsG, TierKind::kDevice);
  cfg.accumulation_steps = 2;
  const Trajectory device = RunTraining(cfg, 2, 6, 97, 4, 5);
  cfg.offload_tier = tier;
  const Trajectory offloaded = RunTraining(cfg, 2, 6, 97, 4, 5);
  EXPECT_EQ(offloaded.losses, device.losses);
  EXPECT_EQ(offloaded.state, device.state);
}

TEST_P(OffloadTierTest, MidTrainingCheckpointRestoreBitExact) {
  const TierKind tier = GetParam();
  // Train 3 steps, export, import into a *fresh* engine of the same
  // config, train 3 more. The offloaded sequence must match the
  // device-resident sequence bit for bit.
  auto run = [&](TierKind t) {
    EngineConfig cfg = StreamingConfig(ZeroStage::kOsGP, t);
    Trajectory out;
    comm::World world(2);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(101, 4);
      std::vector<float> losses;
      TrainingState mid;
      {
        ZeroDpEngine engine(cfg, m, dp, nullptr, 13);
        for (int step = 0; step < 3; ++step) {
          losses.push_back(engine.TrainStep(RankBatch(ctx.rank, step)));
        }
        mid = engine.ExportState();
      }
      ZeroDpEngine resumed(cfg, m, dp, nullptr, 13);
      resumed.ImportState(mid);
      for (int step = 3; step < 6; ++step) {
        losses.push_back(resumed.TrainStep(RankBatch(ctx.rank, step)));
      }
      TrainingState state = resumed.ExportState();
      if (ctx.rank == 0) {
        out.losses = std::move(losses);
        out.state = std::move(state);
      }
    });
    return out;
  };
  const Trajectory device = run(TierKind::kDevice);
  const Trajectory offloaded = run(tier);
  EXPECT_EQ(offloaded.losses, device.losses);
  EXPECT_EQ(offloaded.state, device.state);
  EXPECT_EQ(offloaded.state.step_count, 6);
}

TEST_P(OffloadTierTest, MidTrainingEvalDoesNotDerailStreaming) {
  // EvalLoss discards gradients at the sink, so no slice ever becomes
  // "final" during eval — the record/replay schedule must survive
  // interleaved evals unchanged.
  const TierKind tier = GetParam();
  auto run = [&](TierKind t) {
    EngineConfig cfg = StreamingConfig(ZeroStage::kOsG, t);
    Trajectory out;
    comm::World world(2);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(97, 4);
      ZeroDpEngine engine(cfg, m, dp, nullptr, 17);
      std::vector<float> losses;
      for (int step = 0; step < 4; ++step) {
        losses.push_back(engine.TrainStep(RankBatch(ctx.rank, step)));
        losses.push_back(engine.EvalLoss(RankBatch(ctx.rank, 50 + step)));
      }
      TrainingState state = engine.ExportState();
      if (ctx.rank == 0) {
        out.losses = std::move(losses);
        out.state = std::move(state);
      }
    });
    return out;
  };
  const Trajectory device = run(TierKind::kDevice);
  const Trajectory offloaded = run(tier);
  EXPECT_EQ(offloaded.losses, device.losses);
  EXPECT_EQ(offloaded.state, device.state);
}

INSTANTIATE_TEST_SUITE_P(Tiers, OffloadTierTest,
                         ::testing::Values(TierKind::kHost, TierKind::kNvme));

TEST(OffloadStreamTest, Fp32ExactReductionsBitExact) {
  EngineConfig cfg = StreamingConfig(ZeroStage::kOsG, TierKind::kDevice);
  cfg.fp16 = false;
  cfg.exact_reductions = true;
  const Trajectory device = RunTraining(cfg, 3, 4, 131, 5, 42);
  cfg.offload_tier = TierKind::kHost;
  const Trajectory offloaded = RunTraining(cfg, 3, 4, 131, 5, 42);
  EXPECT_EQ(offloaded.losses, device.losses);
  EXPECT_EQ(offloaded.state, device.state);
}

TEST(OffloadStreamTest, ReplayStepsStreamEagerly) {
  EngineConfig cfg = StreamingConfig(ZeroStage::kOsG, TierKind::kHost);
  const double eager_before =
      obs::Metrics().counter("offload.eager_slices").value();
  (void)RunTraining(cfg, 2, 4, 101, 4, 9);
  // Step 0 records the slice-finality order; steps 1..3 replay it and
  // should launch eager gradient transfers during backward.
  EXPECT_GT(obs::Metrics().counter("offload.eager_slices").value(),
            eager_before);
}

TEST(OffloadStreamTest, TinyBudgetDegradesToBlockingAndStaysExact) {
  // A 1-byte budget can never stage a slice ahead: every transfer falls
  // back to the at-update path, which must still be bit-exact.
  EngineConfig cfg = StreamingConfig(ZeroStage::kOsG, TierKind::kDevice);
  const Trajectory device = RunTraining(cfg, 2, 4, 101, 4, 9);
  cfg.offload_tier = TierKind::kHost;
  cfg.offload_max_inflight_bytes = 1;
  const double stops_before =
      obs::Metrics().counter("offload.eager_stops").value();
  const Trajectory degraded = RunTraining(cfg, 2, 4, 101, 4, 9);
  EXPECT_EQ(degraded.losses, device.losses);
  EXPECT_EQ(degraded.state, device.state);
  EXPECT_GT(obs::Metrics().counter("offload.eager_stops").value(),
            stops_before);
}

TEST(OffloadStreamTest, NvmeStreamsTheStateThroughTheLink) {
  // The host tier updates in place (only the 2+2 B/param wire traffic
  // crosses the link); NVMe is not host-addressable, so the K = 12
  // B/param fp32 state must additionally stream through both ways.
  auto transfer_bytes = [&](TierKind tier) {
    EngineConfig cfg = StreamingConfig(ZeroStage::kOsG, tier);
    std::uint64_t bytes = 0;
    comm::World world(2);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(96, 4);
      ZeroDpEngine engine(cfg, m, dp, nullptr, 7);
      (void)engine.TrainStep(RankBatch(ctx.rank, 0));
      if (ctx.rank == 0) bytes = engine.optimizer_transfer_bytes();
    });
    return bytes;
  };
  const std::uint64_t host = transfer_bytes(TierKind::kHost);
  const std::uint64_t nvme = transfer_bytes(TierKind::kNvme);
  // Shard: 48 elements per rank over nd=2; fp16 grads down + fp16
  // params back = 4 B/param. NVMe adds fetch+store of the 12 B/param
  // fp32 state (+24 B/param/step) plus the one-time 4 B/param initial
  // master upload at construction.
  EXPECT_EQ(host, 48u * 2u * 2u);
  EXPECT_EQ(nvme, host + 48u * 24u + 48u * 4u);
}

}  // namespace
}  // namespace zero::core
