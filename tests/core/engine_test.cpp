#include "core/dp_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "comm/world.hpp"
#include "model/corpus.hpp"
#include "model/gpt.hpp"
#include "model/quad_model.hpp"

namespace zero::core {
namespace {

using model::Batch;
using model::ZeroStage;

Batch RankBatch(int rank, int step) {
  Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

// Single-process reference trajectory: grads summed in rank order, then
// averaged, then exact fp32 Adam — what every stage must reproduce
// bitwise in exact_reductions mode.
std::vector<float> ReferenceTrajectory(std::int64_t numel, int units, int nd,
                                       int steps, std::uint64_t seed,
                                       const optim::AdamConfig& adam) {
  model::QuadModel m(numel, units);
  std::vector<float> params(static_cast<std::size_t>(numel));
  m.InitParameters(params, seed);
  std::vector<float> mom(params.size(), 0.0f), var(params.size(), 0.0f);
  for (int step = 0; step < steps; ++step) {
    std::vector<float> grad_sum(params.size(), 0.0f);
    for (int r = 0; r < nd; ++r) {
      std::vector<float> g(params.size(), 0.0f);
      model::DirectParamProvider provider(m.layout(), params);
      model::AccumulatingGradSink sink(m.layout(), g);
      (void)m.Step(RankBatch(r, step), provider, sink);
      for (std::size_t i = 0; i < g.size(); ++i) grad_sum[i] += g[i];
    }
    const float scale = 1.0f / static_cast<float>(nd);
    for (float& g : grad_sum) g *= scale;
    optim::AdamUpdate(adam, step + 1, params, grad_sum, mom, var);
  }
  return params;
}

struct StageNd {
  ZeroStage stage;
  int nd;
};

class StageEquivalenceTest : public ::testing::TestWithParam<StageNd> {};

TEST_P(StageEquivalenceTest, ExactFp32TrajectoryMatchesReference) {
  const auto [stage, nd] = GetParam();
  // 131 parameters over 5 units: prime size exercises padding, and units
  // that straddle partition boundaries exercise the bucketizer.
  const std::int64_t numel = 131;
  const int units = 5;
  const int steps = 4;
  optim::AdamConfig adam;
  adam.lr = 0.05f;

  const std::vector<float> expected =
      ReferenceTrajectory(numel, units, nd, steps, 42, adam);

  std::vector<std::vector<float>> gathered(static_cast<std::size_t>(nd));
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, units);
    EngineConfig cfg;
    cfg.stage = stage;
    cfg.fp16 = false;
    cfg.exact_reductions = true;
    cfg.adam = adam;
    cfg.bucket_elems = 16;  // force multi-chunk flushes
    ZeroDpEngine engine(cfg, m, dp, nullptr, 42);
    for (int step = 0; step < steps; ++step) {
      (void)engine.TrainStep(RankBatch(ctx.rank, step));
    }
    gathered[static_cast<std::size_t>(ctx.rank)] = engine.GatherFullParams();
  });

  for (int r = 0; r < nd; ++r) {
    ASSERT_EQ(gathered[static_cast<std::size_t>(r)].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(gathered[static_cast<std::size_t>(r)][i], expected[i])
          << "stage=" << static_cast<int>(stage) << " rank=" << r
          << " index=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StagesAndWorlds, StageEquivalenceTest,
    ::testing::Values(StageNd{ZeroStage::kNone, 1},
                      StageNd{ZeroStage::kNone, 2},
                      StageNd{ZeroStage::kNone, 4},
                      StageNd{ZeroStage::kOs, 2}, StageNd{ZeroStage::kOs, 3},
                      StageNd{ZeroStage::kOs, 4},
                      StageNd{ZeroStage::kOsG, 2},
                      StageNd{ZeroStage::kOsG, 3},
                      StageNd{ZeroStage::kOsG, 4},
                      StageNd{ZeroStage::kOsGP, 2},
                      StageNd{ZeroStage::kOsGP, 3},
                      StageNd{ZeroStage::kOsGP, 4}));

// fp16 end-to-end on the real GPT: every ZeRO stage must track the
// baseline DDP trajectory to fp16 tolerance (ZeRO changes *where* state
// lives, never *what* is computed — Sec 2.2.3).
class Fp16StageTest : public ::testing::TestWithParam<ZeroStage> {};

TEST_P(Fp16StageTest, GptTrajectoryTracksDdpBaseline) {
  const ZeroStage stage = GetParam();
  const int nd = 2;
  const int steps = 3;
  model::GptConfig gcfg;
  gcfg.vocab = 13;
  gcfg.seq = 4;
  gcfg.hidden = 8;
  gcfg.layers = 2;
  gcfg.heads = 2;

  auto run = [&](ZeroStage s) {
    std::vector<float> params;
    std::vector<float> losses;
    comm::World world(nd);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::GptModel gpt(gcfg, {});
      EngineConfig cfg;
      cfg.stage = s;
      cfg.fp16 = true;
      cfg.loss_scale = 128.0f;
      cfg.adam.lr = 1e-3f;
      ZeroDpEngine engine(cfg, gpt, dp, nullptr, 7);
      model::MarkovCorpus corpus(gcfg.vocab, 3, 91,
                                 static_cast<std::uint64_t>(ctx.rank));
      std::vector<float> local;
      for (int step = 0; step < steps; ++step) {
        local.push_back(engine.TrainStep(corpus.NextBatch(2, gcfg.seq)));
      }
      auto full = engine.GatherFullParams();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) {
        params = std::move(full);
        losses = std::move(local);
      }
    });
    return std::make_pair(params, losses);
  };

  auto [base_params, base_losses] = run(ZeroStage::kNone);
  auto [stage_params, stage_losses] = run(stage);

  ASSERT_EQ(base_params.size(), stage_params.size());
  double max_diff = 0;
  for (std::size_t i = 0; i < base_params.size(); ++i) {
    max_diff = std::max(
        max_diff,
        static_cast<double>(std::abs(base_params[i] - stage_params[i])));
  }
  // fp16 rounding differs with reduction bracketing; divergence after a
  // few steps stays within a few fp16 ulps of the parameter scale.
  EXPECT_LT(max_diff, 5e-3) << "stage " << static_cast<int>(stage);
  for (int s = 0; s < steps; ++s) {
    EXPECT_NEAR(base_losses[static_cast<std::size_t>(s)],
                stage_losses[static_cast<std::size_t>(s)], 5e-2f);
  }
}

INSTANTIATE_TEST_SUITE_P(AllStages, Fp16StageTest,
                         ::testing::Values(ZeroStage::kOs, ZeroStage::kOsG,
                                           ZeroStage::kOsGP));

// Sec 7: per-rank communication volume. Baseline and stages 1-2 move
// 2*Psi elements per step; stage 3 moves 3*Psi.
TEST(CommVolumeTest, MatchesSection7Analysis) {
  const int nd = 4;
  const std::int64_t numel = 4096;  // divisible by nd: padding-free
  struct Case {
    ZeroStage stage;
    double expected_factor;  // x Psi elements sent per rank
  };
  const Case cases[] = {
      {ZeroStage::kNone, 2.0},
      {ZeroStage::kOs, 2.0},
      {ZeroStage::kOsG, 2.0},
      {ZeroStage::kOsGP, 3.0},
  };
  for (const Case& c : cases) {
    std::vector<std::uint64_t> sent(static_cast<std::size_t>(nd));
    comm::World world(nd);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 8);
      EngineConfig cfg;
      cfg.stage = c.stage;
      cfg.fp16 = true;
      ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
      // Skip warm-up effects: measure the second step only.
      (void)engine.TrainStep(RankBatch(ctx.rank, 0));
      const std::uint64_t before = dp.stats().bytes_sent;
      (void)engine.TrainStep(RankBatch(ctx.rank, 1));
      sent[static_cast<std::size_t>(ctx.rank)] =
          dp.stats().bytes_sent - before;
    });
    const double psi_bytes = static_cast<double>(numel) * 2;  // fp16
    for (int r = 0; r < nd; ++r) {
      const double factor =
          static_cast<double>(sent[static_cast<std::size_t>(r)]) / psi_bytes;
      // Ring collectives move (nd-1)/nd of the ideal volume; allow the
      // slack plus per-message overheads.
      EXPECT_GT(factor, c.expected_factor * 0.70)
          << "stage " << static_cast<int>(c.stage) << " rank " << r;
      EXPECT_LT(factor, c.expected_factor * 1.10)
          << "stage " << static_cast<int>(c.stage) << " rank " << r;
    }
  }
}

// Figure 1: measured per-rank model-state bytes under each stage.
TEST(ModelStateMemoryTest, MatchesFigure1Equations) {
  const int nd = 4;
  const std::int64_t numel = 1 << 14;  // divisible by nd
  const double psi = static_cast<double>(numel);
  struct Case {
    ZeroStage stage;
    double expected_bytes;
  };
  const Case cases[] = {
      {ZeroStage::kNone, 16.0 * psi},
      {ZeroStage::kOs, 4.0 * psi + 12.0 * psi / nd},
      {ZeroStage::kOsG, 2.0 * psi + 14.0 * psi / nd},
      {ZeroStage::kOsGP, 16.0 * psi / nd},
  };
  for (const Case& c : cases) {
    comm::World world(nd);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 8);
      EngineConfig cfg;
      cfg.stage = c.stage;
      cfg.fp16 = true;
      ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
      const ModelStateReport r = engine.MeasureModelStates();
      EXPECT_NEAR(static_cast<double>(r.total()), c.expected_bytes,
                  0.02 * c.expected_bytes)
          << "stage " << static_cast<int>(c.stage);
    });
  }
}

// Stage 3 transient footprint: while a unit is materialized its fp16
// bytes live on the device; after release they are gone.
TEST(Stage3Test, MaterializedUnitsAreTransient) {
  const int nd = 2;
  const std::int64_t numel = 1024;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    alloc::DeviceMemory dev(1 << 20, "r" + std::to_string(ctx.rank));
    alloc::CachingAllocator cache(dev);
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsGP;
    cfg.fp16 = true;
    ZeroDpEngine engine(cfg, m, dp, &cache, 3);
    const std::size_t resident = cache.Stats().live_bytes;
    auto span = engine.AcquireUnit(1, model::Phase::kForward);
    EXPECT_EQ(span.size(), 256u);
    EXPECT_GT(cache.Stats().live_bytes, resident);
    engine.ReleaseUnit(1, model::Phase::kForward);
    EXPECT_EQ(cache.Stats().live_bytes, resident);
  });
}

TEST(EngineTest, NestedAcquireRefcounts) {
  comm::World world(1);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(64, 2);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsGP;
    cfg.fp16 = true;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
    auto a = engine.AcquireUnit(0, model::Phase::kForward);
    auto b = engine.AcquireUnit(0, model::Phase::kForward);
    EXPECT_EQ(a.data(), b.data());  // same materialization
    engine.ReleaseUnit(0, model::Phase::kForward);
    engine.ReleaseUnit(0, model::Phase::kForward);
    EXPECT_THROW(engine.ReleaseUnit(0, model::Phase::kForward), Error);
  });
}

TEST(EngineTest, RejectsExactReductionsWithFp16) {
  comm::World world(1);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(64, 2);
    EngineConfig cfg;
    cfg.fp16 = true;
    cfg.exact_reductions = true;
    EXPECT_THROW(ZeroDpEngine(cfg, m, dp, nullptr, 3), Error);
  });
}

TEST(EngineTest, LossDecreasesOverTrainingGpt) {
  const int nd = 2;
  model::GptConfig gcfg;
  gcfg.vocab = 13;
  gcfg.seq = 8;
  gcfg.hidden = 16;
  gcfg.layers = 2;
  gcfg.heads = 2;
  std::vector<float> first(static_cast<std::size_t>(nd)),
      last(static_cast<std::size_t>(nd));
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::GptModel gpt(gcfg, {});
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    cfg.loss_scale = 256.0f;
    cfg.adam.lr = 3e-3f;
    ZeroDpEngine engine(cfg, gpt, dp, nullptr, 5);
    model::MarkovCorpus corpus(gcfg.vocab, 2, 7,
                               static_cast<std::uint64_t>(ctx.rank));
    const int steps = 200;
    std::vector<float> losses;
    for (int step = 0; step < steps; ++step) {
      losses.push_back(engine.TrainStep(corpus.NextBatch(8, gcfg.seq)));
    }
    float head = 0, tail = 0;
    for (int i = 0; i < 10; ++i) {
      head += losses[static_cast<std::size_t>(i)] / 10.0f;
      tail += losses[static_cast<std::size_t>(steps - 10 + i)] / 10.0f;
    }
    first[static_cast<std::size_t>(ctx.rank)] = head;
    last[static_cast<std::size_t>(ctx.rank)] = tail;
  });
  for (int r = 0; r < nd; ++r) {
    EXPECT_LT(last[static_cast<std::size_t>(r)],
              first[static_cast<std::size_t>(r)] - 0.2f);
  }
}

}  // namespace
}  // namespace zero::core
