#include "core/zero_r.hpp"

#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "common/rng.hpp"

namespace zero::core {
namespace {

std::vector<float> TestData(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

TEST(ArenaCheckpointStoreTest, SaveLoadRoundTrip) {
  alloc::DeviceMemory dev(1 << 20, "t");
  alloc::Arena arena(dev, 64 * 1024, "ckpt");
  ArenaCheckpointStore store(arena);
  auto data = TestData(100, 1);
  const auto h = store.Save(0, data);
  std::vector<float> out(100);
  store.Load(h, out);
  EXPECT_EQ(out, data);
  EXPECT_THROW(store.Load(h, out), Error);  // consumed
}

TEST(ArenaCheckpointStoreTest, ResetRecyclesArena) {
  alloc::DeviceMemory dev(1 << 20, "t");
  alloc::Arena arena(dev, 4096, "ckpt");
  ArenaCheckpointStore store(arena);
  for (int iter = 0; iter < 5; ++iter) {
    auto data = TestData(512, static_cast<std::uint64_t>(iter));
    (void)store.Save(0, data);
    store.Reset();  // without this the arena would overflow at iter 2
  }
  EXPECT_LE(arena.peak_used(), 4096u);
}

class PaStoreTest : public ::testing::TestWithParam<int> {};

TEST_P(PaStoreTest, PartitionedRoundTripAcrossMpDegrees) {
  const int m = GetParam();
  const std::size_t n = 103;  // not divisible by m: exercises padding
  auto data = TestData(n, 9);
  comm::World world(m);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator mp = comm::Communicator::WholeWorld(ctx);
    PartitionedCheckpointStore store(mp, nullptr, nullptr);
    const auto h = store.Save(3, data);
    std::vector<float> out(n);
    store.Load(h, out);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], data[i]) << "rank " << ctx.rank << " i " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(MpDegrees, PaStoreTest, ::testing::Values(1, 2, 4));

TEST(PaStoreTest, DeviceFootprintIsSliceSized) {
  // Pa's point: each rank holds ~1/m of every checkpoint (Sec 6.1).
  const int m = 4;
  const std::size_t n = 4096;
  auto data = TestData(n, 10);
  comm::World world(m);
  world.Run([&](comm::RankContext& ctx) {
    alloc::DeviceMemory dev(1 << 20, "r");
    alloc::CachingAllocator cache(dev);
    comm::Communicator mp = comm::Communicator::WholeWorld(ctx);
    PartitionedCheckpointStore store(mp, &cache, nullptr);
    (void)store.Save(0, data);
    const std::size_t full_bytes = n * sizeof(float);
    EXPECT_LE(store.DeviceBytesHeld(), full_bytes / m + 512);
    EXPECT_GT(store.DeviceBytesHeld(), 0u);
  });
}

TEST(PaStoreTest, CpuOffloadFreesDeviceAndCountsTransfers) {
  const int m = 2;
  const std::size_t n = 2048;
  auto data = TestData(n, 11);
  comm::World world(m);
  world.Run([&](comm::RankContext& ctx) {
    alloc::DeviceMemory dev(1 << 20, "r");
    alloc::CachingAllocator cache(dev);
    alloc::HostMemory host;
    comm::Communicator mp = comm::Communicator::WholeWorld(ctx);
    PartitionedCheckpointStore store(mp, &cache, &host);
    const auto h = store.Save(0, data);
    // Pa+cpu: nothing remains on the device once offloaded.
    EXPECT_EQ(store.DeviceBytesHeld(), 0u);
    const std::size_t slice_bytes = (n / m) * sizeof(float);
    EXPECT_EQ(host.Stats().bytes_to_host, slice_bytes);
    std::vector<float> out(n);
    store.Load(h, out);
    EXPECT_EQ(out, data);
    // Sec 8: Pa+cpu adds 2x data movement (out and back).
    EXPECT_EQ(host.Stats().bytes_from_host, slice_bytes);
    EXPECT_EQ(host.Stats().in_use, 0u);
  });
}

TEST(PaStoreTest, LoadAllGatherVolumeIsMessageSized) {
  // Sec 8: the Pa overhead is one all-gather per checkpoint, volume ~=
  // message size per rank.
  const int m = 4;
  const std::size_t n = 4096;
  auto data = TestData(n, 12);
  comm::World world(m);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator mp = comm::Communicator::WholeWorld(ctx);
    PartitionedCheckpointStore store(mp, nullptr, nullptr);
    const auto h = store.Save(0, data);
    const std::uint64_t before = mp.stats().bytes_sent;
    std::vector<float> out(n);
    store.Load(h, out);
    const std::uint64_t sent = mp.stats().bytes_sent - before;
    const double message = static_cast<double>(n) * sizeof(float);
    EXPECT_LT(static_cast<double>(sent), 1.1 * message);
  });
}

TEST(PaStoreTest, RejectsOffloadWithArena) {
  comm::World world(1);
  world.Run([&](comm::RankContext& ctx) {
    alloc::DeviceMemory dev(1 << 20, "r");
    alloc::Arena arena(dev, 4096, "a");
    alloc::HostMemory host;
    comm::Communicator mp = comm::Communicator::WholeWorld(ctx);
    EXPECT_THROW(PartitionedCheckpointStore(mp, nullptr, &host, &arena),
                 Error);
  });
}

}  // namespace
}  // namespace zero::core
