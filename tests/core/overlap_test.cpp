// Stage-3 parameter prefetch (core/stages/param_prefetcher.hpp) must be
// a pure latency optimization: every trajectory it produces — losses,
// fp16 parameters, fp32 master state — must be bit-identical to the
// blocking broadcast-on-demand path at every lookahead depth, in every
// precision mode, under accumulation, and when the memory budget forces
// it back to blocking.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/checkpoint_store.hpp"
#include "model/gpt.hpp"
#include "model/quad_model.hpp"
#include "obs/metrics.hpp"

namespace zero::core {
namespace {

using model::Batch;
using model::ZeroStage;

Batch RankBatch(int rank, int step) {
  Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

struct Trajectory {
  std::vector<float> losses;   // rank 0's per-step losses
  TrainingState state;         // reassembled full training state
  friend bool operator==(const Trajectory&, const Trajectory&) = default;
};

// Runs `steps` training steps on an nd-rank world and returns rank 0's
// loss sequence plus the exported (Nd-independent) training state.
Trajectory RunTraining(EngineConfig cfg, int nd, int steps,
                       std::int64_t numel, int units, std::uint64_t seed) {
  Trajectory out;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, units);
    ZeroDpEngine engine(cfg, m, dp, nullptr, seed);
    std::vector<float> losses;
    for (int step = 0; step < steps; ++step) {
      losses.push_back(engine.TrainStep(RankBatch(ctx.rank, step)));
    }
    TrainingState state = engine.ExportState();
    if (ctx.rank == 0) {
      out.losses = std::move(losses);
      out.state = std::move(state);
    }
  });
  return out;
}

class PrefetchLookaheadTest : public ::testing::TestWithParam<int> {};

TEST_P(PrefetchLookaheadTest, Stage3Fp16BitExactVsBlocking) {
  const int lookahead = GetParam();
  EngineConfig cfg;
  cfg.stage = ZeroStage::kOsGP;
  cfg.fp16 = true;
  cfg.bucket_elems = 16;
  const Trajectory blocking = RunTraining(cfg, 4, 5, 131, 5, 7);
  cfg.prefetch_lookahead = lookahead;
  const Trajectory prefetched = RunTraining(cfg, 4, 5, 131, 5, 7);
  EXPECT_EQ(prefetched.losses, blocking.losses);
  EXPECT_EQ(prefetched.state, blocking.state);
}

INSTANTIATE_TEST_SUITE_P(Lookaheads, PrefetchLookaheadTest,
                         ::testing::Values(1, 2, 4));

TEST(PrefetchTest, AllStagesUnaffectedByPrefetchConfig) {
  // prefetch_lookahead is a stage-3 knob; setting it on any stage must
  // never change the trajectory.
  for (ZeroStage stage : {ZeroStage::kNone, ZeroStage::kOs, ZeroStage::kOsG,
                          ZeroStage::kOsGP}) {
    EngineConfig cfg;
    cfg.stage = stage;
    cfg.fp16 = true;
    const Trajectory blocking = RunTraining(cfg, 2, 3, 97, 4, 11);
    cfg.prefetch_lookahead = 2;
    const Trajectory prefetched = RunTraining(cfg, 2, 3, 97, 4, 11);
    EXPECT_EQ(prefetched.losses, blocking.losses)
        << "stage=" << static_cast<int>(stage);
    EXPECT_EQ(prefetched.state, blocking.state)
        << "stage=" << static_cast<int>(stage);
  }
}

TEST(PrefetchTest, Fp32ExactReductionsBitExact) {
  EngineConfig cfg;
  cfg.stage = ZeroStage::kOsGP;
  cfg.fp16 = false;
  cfg.exact_reductions = true;
  cfg.bucket_elems = 16;
  const Trajectory blocking = RunTraining(cfg, 3, 4, 131, 5, 42);
  cfg.prefetch_lookahead = 2;
  const Trajectory prefetched = RunTraining(cfg, 3, 4, 131, 5, 42);
  EXPECT_EQ(prefetched.losses, blocking.losses);
  EXPECT_EQ(prefetched.state, blocking.state);
}

TEST(PrefetchTest, AccumulationBitExact) {
  EngineConfig cfg;
  cfg.stage = ZeroStage::kOsGP;
  cfg.fp16 = true;
  cfg.accumulation_steps = 2;
  const Trajectory blocking = RunTraining(cfg, 2, 6, 97, 4, 5);
  cfg.prefetch_lookahead = 2;
  const Trajectory prefetched = RunTraining(cfg, 2, 6, 97, 4, 5);
  EXPECT_EQ(prefetched.losses, blocking.losses);
  EXPECT_EQ(prefetched.state, blocking.state);
}

TEST(PrefetchTest, TinyBudgetDegradesToBlockingAndStaysExact) {
  // A 1-byte budget can never fit a unit: every claim becomes a miss
  // launched on demand, which must still be bit-exact.
  EngineConfig cfg;
  cfg.stage = ZeroStage::kOsGP;
  cfg.fp16 = true;
  const Trajectory blocking = RunTraining(cfg, 2, 4, 97, 4, 9);
  cfg.prefetch_lookahead = 2;
  cfg.prefetch_max_bytes = 1;
  const double misses_before =
      obs::Metrics().counter("prefetch.misses").value();
  const Trajectory degraded = RunTraining(cfg, 2, 4, 97, 4, 9);
  EXPECT_EQ(degraded.losses, blocking.losses);
  EXPECT_EQ(degraded.state, blocking.state);
  EXPECT_GT(obs::Metrics().counter("prefetch.misses").value(),
            misses_before);
}

TEST(PrefetchTest, ReplayStepsHitThePipeline) {
  EngineConfig cfg;
  cfg.stage = ZeroStage::kOsGP;
  cfg.fp16 = true;
  cfg.prefetch_lookahead = 2;
  const double hits_before = obs::Metrics().counter("prefetch.hits").value();
  (void)RunTraining(cfg, 2, 4, 97, 4, 9);
  // Step 0 records; steps 1..3 replay and should claim prefetched
  // gathers (QuadModel acquires every unit twice per step on 2 ranks).
  EXPECT_GT(obs::Metrics().counter("prefetch.hits").value(), hits_before);
}

TEST(PrefetchTest, MidTrainingEvalDoesNotDerailOrDiverge) {
  // EvalLoss materializes units outside the step bracket (prefetcher
  // idle -> blocking path) and must not disturb replay on later steps.
  EngineConfig cfg;
  cfg.stage = ZeroStage::kOsGP;
  cfg.fp16 = true;
  auto run = [&](EngineConfig c) {
    Trajectory out;
    comm::World world(2);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(97, 4);
      ZeroDpEngine engine(c, m, dp, nullptr, 13);
      std::vector<float> losses;
      for (int step = 0; step < 4; ++step) {
        losses.push_back(engine.TrainStep(RankBatch(ctx.rank, step)));
        losses.push_back(engine.EvalLoss(RankBatch(ctx.rank, 50 + step)));
      }
      TrainingState state = engine.ExportState();
      if (ctx.rank == 0) {
        out.losses = std::move(losses);
        out.state = std::move(state);
      }
    });
    return out;
  };
  const Trajectory blocking = run(cfg);
  cfg.prefetch_lookahead = 2;
  const Trajectory prefetched = run(cfg);
  EXPECT_EQ(prefetched.losses, blocking.losses);
  EXPECT_EQ(prefetched.state, blocking.state);
}

TEST(PrefetchTest, GptTrainingBitExact) {
  // End-to-end over the real transformer: recompute-driven re-acquires
  // give the schedule its irregular shape.
  model::GptConfig gc;
  gc.layers = 2;
  gc.hidden = 16;
  gc.heads = 2;
  gc.vocab = 31;
  gc.seq = 8;
  gc.activation_checkpointing = true;
  auto run = [&](int lookahead) {
    Trajectory out;
    comm::World world(2);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::DeviceCheckpointStore store(nullptr);
      model::GptSession session;
      session.checkpoints = &store;
      model::GptModel m(gc, session);
      EngineConfig cfg;
      cfg.stage = ZeroStage::kOsGP;
      cfg.fp16 = true;
      cfg.prefetch_lookahead = lookahead;
      ZeroDpEngine engine(cfg, m, dp, nullptr, 17);
      std::vector<float> losses;
      for (int step = 0; step < 3; ++step) {
        Batch b;
        b.rows = 1;
        b.cols = static_cast<int>(gc.seq);
        for (int i = 0; i < gc.seq; ++i) {
          b.inputs.push_back((ctx.rank * 13 + step * 5 + i) % gc.vocab);
          b.targets.push_back((ctx.rank * 7 + step * 3 + i) % gc.vocab);
        }
        losses.push_back(engine.TrainStep(b));
      }
      TrainingState state = engine.ExportState();
      if (ctx.rank == 0) {
        out.losses = std::move(losses);
        out.state = std::move(state);
      }
    });
    return out;
  };
  const Trajectory blocking = run(0);
  const Trajectory prefetched = run(2);
  EXPECT_EQ(prefetched.losses, blocking.losses);
  EXPECT_EQ(prefetched.state, blocking.state);
}

TEST(HierarchicalEngineTest, TrainsCloseToFlatAllReduce) {
  // Hierarchical all-reduce brackets differently than the flat ring, so
  // parity is approximate — the trajectories must stay close, and the
  // hierarchical run must actually engage the node topology.
  EngineConfig cfg;
  cfg.stage = ZeroStage::kNone;
  cfg.fp16 = true;
  const Trajectory flat = RunTraining(cfg, 4, 4, 97, 4, 23);
  cfg.hierarchical_comm = true;
  cfg.ranks_per_node = 2;
  const Trajectory hier = RunTraining(cfg, 4, 4, 97, 4, 23);
  ASSERT_EQ(hier.losses.size(), flat.losses.size());
  for (std::size_t i = 0; i < flat.losses.size(); ++i) {
    EXPECT_NEAR(hier.losses[i], flat.losses[i],
                1e-2f * (1.0f + std::abs(flat.losses[i])));
  }
}

TEST(HierarchicalEngineTest, ExactReductionsIgnoreHierarchy) {
  // exact_reductions promises rank-ordered deterministic sums, which
  // the two-level reduction cannot honor — the engine must keep the
  // flat path and stay bit-exact.
  EngineConfig cfg;
  cfg.stage = ZeroStage::kNone;
  cfg.fp16 = false;
  cfg.exact_reductions = true;
  const Trajectory flat = RunTraining(cfg, 4, 3, 97, 4, 29);
  cfg.hierarchical_comm = true;
  cfg.ranks_per_node = 2;
  const Trajectory hier = RunTraining(cfg, 4, 3, 97, 4, 29);
  EXPECT_EQ(hier.losses, flat.losses);
  EXPECT_EQ(hier.state, flat.state);
}

}  // namespace
}  // namespace zero::core
