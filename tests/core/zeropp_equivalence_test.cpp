// ZeRO++ convergence equivalence (ISSUE 7 satellite): the compressed
// paths must not change what the optimizer computes beyond the
// quantizer's bounded error.
//
//  - hpZ alone is numerically lossless: the secondary shard serves the
//    same fp16 bytes the owner would have broadcast. (The assertion is
//    a tight NEAR, not EQ: forward kernels carry a pre-existing ~1-ulp
//    sensitivity to heap layout, and hpZ's extra allocations shift it.)
//  - qwZ + hpZ + qgZ together track the exact stage-3 loss trajectory
//    within a small tolerance, across seeds.
//  - exact_reductions = true downgrades every flag: same code path as
//    the plain exact run, with bit-identical DP byte counts.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"

namespace zero::core {
namespace {

TrainOptions Stage3Options(std::uint64_t seed) {
  TrainOptions opt;
  opt.model.vocab = 13;
  opt.model.seq = 4;
  opt.model.hidden = 8;
  opt.model.layers = 2;
  opt.model.heads = 2;
  opt.engine.stage = model::ZeroStage::kOsGP;
  opt.engine.loss_scale = 128.0f;
  opt.engine.prefetch_lookahead = 2;
  opt.cluster.dp_degree = 4;
  opt.cluster.mp_degree = 1;
  opt.cluster.device_capacity_bytes = 32ull << 20;
  opt.batch_per_rank = 2;
  opt.steps = 6;
  opt.seed = seed;
  return opt;
}

TEST(ZeroppEquivalenceTest, HpzAloneIsLossless) {
  TrainOptions exact = Stage3Options(42);
  TrainResult base = TrainGpt(exact);
  ASSERT_FALSE(base.oom) << base.oom_message;

  TrainOptions hpz = Stage3Options(42);
  hpz.engine.hpz = true;
  hpz.engine.ranks_per_node = 2;
  TrainResult got = TrainGpt(hpz);
  ASSERT_FALSE(got.oom) << got.oom_message;

  // 1e-4 is far below any quantization error (qwZ-level loss shifts are
  // ~1e-3 on this model) but leaves room for the heap-layout ulp wobble
  // described above: this fails if hpZ ever serves different *values*.
  ASSERT_EQ(got.losses.size(), base.losses.size());
  for (std::size_t i = 0; i < base.losses.size(); ++i) {
    EXPECT_NEAR(got.losses[i], base.losses[i], 1e-4f) << "step " << i;
  }
  // The backward re-gathers really did stay inside the node groups:
  // less DP fabric traffic than the exact run.
  EXPECT_LT(got.TotalDpBytesSent(), base.TotalDpBytesSent());
}

TEST(ZeroppEquivalenceTest, CompressedTracksExactAcrossSeeds) {
  for (const std::uint64_t seed : {std::uint64_t{42}, std::uint64_t{7}}) {
    TrainResult base = TrainGpt(Stage3Options(seed));
    ASSERT_FALSE(base.oom) << base.oom_message;

    TrainOptions zpp = Stage3Options(seed);
    zpp.engine.qwz = true;
    zpp.engine.hpz = true;
    zpp.engine.qgz = true;
    zpp.engine.ranks_per_node = 2;
    TrainResult got = TrainGpt(zpp);
    ASSERT_FALSE(got.oom) << got.oom_message;

    ASSERT_EQ(got.losses.size(), base.losses.size());
    for (std::size_t i = 0; i < base.losses.size(); ++i) {
      ASSERT_TRUE(std::isfinite(got.losses[i])) << "seed " << seed;
      EXPECT_NEAR(got.losses[i], base.losses[i], 0.05f)
          << "seed " << seed << " step " << i;
    }
    // And it was actually cheaper on the wire.
    EXPECT_LT(got.TotalDpBytesSent(), base.TotalDpBytesSent() / 2);
  }
}

TEST(ZeroppEquivalenceTest, ExactReductionsDowngradesEveryFlag) {
  // exact_reductions requires fp32 mode; with every flag downgraded the
  // engine runs the identical code path as the plain exact run. Losses
  // get a ~1-ulp tolerance (the first run's heap churn can shift the
  // second run's buffer addresses — the same kernel-level layout
  // sensitivity HpzAloneIsLossless documents); the DP byte counts must
  // be *exactly* equal, which is what proves no compressed path ran.
  TrainOptions zpp = Stage3Options(42);
  zpp.engine.fp16 = false;
  zpp.engine.loss_scale = 1.0f;
  zpp.engine.qwz = true;
  zpp.engine.hpz = true;
  zpp.engine.qgz = true;
  zpp.engine.ranks_per_node = 2;
  zpp.engine.exact_reductions = true;
  TrainResult got = TrainGpt(zpp);
  ASSERT_FALSE(got.oom) << got.oom_message;

  TrainOptions plain = Stage3Options(42);
  plain.engine.fp16 = false;
  plain.engine.loss_scale = 1.0f;
  plain.engine.exact_reductions = true;
  TrainResult want = TrainGpt(plain);
  ASSERT_FALSE(want.oom) << want.oom_message;

  ASSERT_EQ(got.losses.size(), want.losses.size());
  for (std::size_t i = 0; i < want.losses.size(); ++i) {
    // ~4 ulp at loss ~2.6 — far below any quantization signature.
    EXPECT_NEAR(got.losses[i], want.losses[i], 1e-6f) << "step " << i;
  }
  EXPECT_EQ(got.TotalDpBytesSent(), want.TotalDpBytesSent());
}

}  // namespace
}  // namespace zero::core
