// End-to-end check of the kernel determinism contract: a full fp16 GPT
// training trajectory through the ZeRO engine must be bitwise-identical
// whether the intra-op pool runs serial or with several workers. This
// is the property that lets deployments turn the pool on without
// changing any numeric result.
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/corpus.hpp"
#include "model/gpt.hpp"
#include "tensor/parallel_for.hpp"

namespace zero::core {
namespace {

using model::ZeroStage;

std::pair<std::vector<float>, std::vector<float>> RunGptTrajectory(
    ZeroStage stage, int workers) {
  tensor::IntraOpWorkersGuard guard(workers);
  model::GptConfig gcfg;
  gcfg.vocab = 13;
  gcfg.seq = 4;
  gcfg.hidden = 8;
  gcfg.layers = 2;
  gcfg.heads = 2;
  const int nd = 2;
  const int steps = 3;

  std::vector<float> params;
  std::vector<float> losses;
  comm::World world(nd);
  std::mutex mu;
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::GptModel gpt(gcfg, {});
    EngineConfig cfg;
    cfg.stage = stage;
    cfg.fp16 = true;
    cfg.loss_scale = 128.0f;
    cfg.max_grad_norm = 1.0f;  // cover the SquaredNorm clip path too
    cfg.adam.lr = 1e-3f;
    ZeroDpEngine engine(cfg, gpt, dp, nullptr, 7);
    model::MarkovCorpus corpus(gcfg.vocab, 3, 91,
                               static_cast<std::uint64_t>(ctx.rank));
    std::vector<float> local;
    for (int step = 0; step < steps; ++step) {
      local.push_back(engine.TrainStep(corpus.NextBatch(2, gcfg.seq)));
    }
    auto full = engine.GatherFullParams();
    std::lock_guard<std::mutex> lock(mu);
    if (ctx.rank == 0) {
      params = std::move(full);
      losses = std::move(local);
    }
  });
  return {params, losses};
}

class IntraOpEngineTest : public ::testing::TestWithParam<ZeroStage> {};

TEST_P(IntraOpEngineTest, GptTrajectoryBitwiseStableAcrossWorkerCounts) {
  const auto [serial_params, serial_losses] = RunGptTrajectory(GetParam(), 1);
  ASSERT_FALSE(serial_params.empty());
  for (int workers : {3}) {
    const auto [params, losses] = RunGptTrajectory(GetParam(), workers);
    ASSERT_EQ(serial_params.size(), params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      ASSERT_EQ(serial_params[i], params[i])
          << "workers=" << workers << " param " << i;
    }
    ASSERT_EQ(serial_losses.size(), losses.size());
    for (std::size_t i = 0; i < losses.size(); ++i) {
      ASSERT_EQ(serial_losses[i], losses[i])
          << "workers=" << workers << " step " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStages, IntraOpEngineTest,
                         ::testing::Values(ZeroStage::kNone, ZeroStage::kOs,
                                           ZeroStage::kOsG,
                                           ZeroStage::kOsGP));

}  // namespace
}  // namespace zero::core
