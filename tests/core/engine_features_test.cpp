// Tests for the production features layered on the ZeRO-DP engine:
// gradient accumulation, dynamic loss scaling with global overflow
// skipping, global gradient-norm clipping, and evaluation steps.
#include <gtest/gtest.h>

#include <cmath>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"

namespace zero::core {
namespace {

using model::Batch;
using model::ZeroStage;

Batch RankBatch(int rank, int step) {
  Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

// Reference with accumulation: for each micro-step, gradients are summed
// over ranks in rank order, then summed over micro-steps, then averaged
// by nd*accum — the exact bracketing the engine uses.
std::vector<float> ReferenceWithAccumulation(std::int64_t numel, int units,
                                             int nd, int updates, int accum,
                                             std::uint64_t seed,
                                             const optim::AdamConfig& adam,
                                             float max_norm = 0.0f) {
  model::QuadModel m(numel, units);
  std::vector<float> params(static_cast<std::size_t>(numel));
  m.InitParameters(params, seed);
  std::vector<float> mom(params.size(), 0.0f), var(params.size(), 0.0f);
  int micro = 0;
  for (int update = 0; update < updates; ++update) {
    std::vector<float> acc(params.size(), 0.0f);
    for (int k = 0; k < accum; ++k, ++micro) {
      // Each micro-step's reduction completes (rank-ordered sum) before
      // being added to the accumulator — matching the engine's
      // reduce-then-accumulate bracketing exactly.
      std::vector<float> micro_sum(params.size(), 0.0f);
      for (int r = 0; r < nd; ++r) {
        std::vector<float> g(params.size(), 0.0f);
        model::DirectParamProvider provider(m.layout(), params);
        model::AccumulatingGradSink sink(m.layout(), g);
        (void)m.Step(RankBatch(r, micro), provider, sink);
        for (std::size_t i = 0; i < g.size(); ++i) micro_sum[i] += g[i];
      }
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += micro_sum[i];
    }
    float scale = 1.0f / static_cast<float>(nd * accum);
    if (max_norm > 0.0f) {
      // Partitioned stages compute per-shard squared norms (double
      // accumulation within a shard, float across shards via the
      // all-reduce) — mimic that bracketing exactly.
      const std::int64_t shard = (numel + nd - 1) / nd;
      float total_sq = 0.0f;
      for (int j = 0; j < nd; ++j) {
        double sq = 0.0;
        for (std::int64_t i = j * shard;
             i < std::min<std::int64_t>((j + 1) * shard, numel); ++i) {
          sq += static_cast<double>(acc[static_cast<std::size_t>(i)]) *
                acc[static_cast<std::size_t>(i)];
        }
        total_sq += static_cast<float>(sq);
      }
      const float norm = std::sqrt(total_sq) * scale;
      if (norm > max_norm) scale *= max_norm / (norm + 1e-6f);
    }
    std::vector<float> g_final(acc.size());
    for (std::size_t i = 0; i < acc.size(); ++i) g_final[i] = acc[i] * scale;
    optim::AdamUpdate(adam, update + 1, params, g_final, mom, var);
  }
  return params;
}

struct AccumCase {
  ZeroStage stage;
  int nd;
  int accum;
};

class AccumulationTest : public ::testing::TestWithParam<AccumCase> {};

TEST_P(AccumulationTest, ExactFp32MatchesReference) {
  const auto [stage, nd, accum] = GetParam();
  const std::int64_t numel = 97;  // prime: padding + straddling units
  const int units = 4;
  const int updates = 3;
  optim::AdamConfig adam;
  adam.lr = 0.05f;

  const std::vector<float> expected = ReferenceWithAccumulation(
      numel, units, nd, updates, accum, 11, adam);

  std::vector<std::vector<float>> gathered(static_cast<std::size_t>(nd));
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, units);
    EngineConfig cfg;
    cfg.stage = stage;
    cfg.fp16 = false;
    cfg.exact_reductions = true;
    cfg.accumulation_steps = accum;
    cfg.adam = adam;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 11);
    for (int micro = 0; micro < updates * accum; ++micro) {
      (void)engine.TrainStep(RankBatch(ctx.rank, micro));
    }
    EXPECT_EQ(engine.steps_taken(), updates);
    gathered[static_cast<std::size_t>(ctx.rank)] = engine.GatherFullParams();
  });

  for (int r = 0; r < nd; ++r) {
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(gathered[static_cast<std::size_t>(r)][i], expected[i])
          << "stage=" << static_cast<int>(stage) << " accum=" << accum
          << " rank=" << r << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    StagesAndAccum, AccumulationTest,
    ::testing::Values(AccumCase{ZeroStage::kNone, 2, 2},
                      AccumCase{ZeroStage::kNone, 3, 3},
                      AccumCase{ZeroStage::kOs, 2, 2},
                      AccumCase{ZeroStage::kOs, 3, 2},
                      AccumCase{ZeroStage::kOsG, 2, 2},
                      AccumCase{ZeroStage::kOsG, 4, 3},
                      AccumCase{ZeroStage::kOsGP, 2, 2},
                      AccumCase{ZeroStage::kOsGP, 3, 3}));

TEST(ClippingTest, ExactFp32MatchesReferenceAtNd2) {
  // nd = 2: two-operand float sums are commutative, so the shard-norm
  // all-reduce is bitwise independent of bracketing and the whole
  // trajectory is exactly reproducible.
  const std::int64_t numel = 64;
  const int units = 4;
  const int nd = 2;
  const int updates = 4;
  const float max_norm = 0.5f;
  optim::AdamConfig adam;
  adam.lr = 0.05f;

  const std::vector<float> expected = ReferenceWithAccumulation(
      numel, units, nd, updates, 1, 5, adam, max_norm);

  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, units);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = false;
    cfg.exact_reductions = true;
    cfg.max_grad_norm = max_norm;
    cfg.adam = adam;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 5);
    for (int step = 0; step < updates; ++step) {
      (void)engine.TrainStep(RankBatch(ctx.rank, step));
      EXPECT_GT(engine.last_grad_norm(), 0.0f);
    }
    auto params = engine.GatherFullParams();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(params[i], expected[i]) << "i=" << i;
    }
  });
}

TEST(ClippingTest, ClipChangesTrajectoryWhenNormExceedsLimit) {
  const std::int64_t numel = 64;
  const int nd = 2;
  auto run = [&](float max_norm) {
    std::vector<float> out;
    comm::World world(nd);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(numel, 2);
      EngineConfig cfg;
      cfg.stage = ZeroStage::kOsG;
      cfg.fp16 = false;
      cfg.max_grad_norm = max_norm;
      ZeroDpEngine engine(cfg, m, dp, nullptr, 5);
      (void)engine.TrainStep(RankBatch(ctx.rank, 0));
      auto p = engine.GatherFullParams();
      std::lock_guard<std::mutex> lock(mu);
      if (ctx.rank == 0) out = std::move(p);
    });
    return out;
  };
  const auto unclipped = run(0.0f);
  const auto tight = run(0.01f);
  int differing = 0;
  for (std::size_t i = 0; i < unclipped.size(); ++i) {
    if (unclipped[i] != tight[i]) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(DynamicScalingTest, OverflowStepsAreSkippedGloballyThenRecover) {
  // QuadModel gradients are O(1); an initial scale of 65536 pushes them
  // past fp16 max (65504), so early steps overflow until the scaler
  // backs off far enough, after which training proceeds.
  const int nd = 2;
  const std::int64_t numel = 64;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, 2);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    cfg.dynamic_loss_scale = true;
    cfg.scaler.init_scale = 65536.0f;
    cfg.scaler.backoff_factor = 0.5f;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 9);
    const std::vector<float> before = engine.GatherFullParams();

    (void)engine.TrainStep(RankBatch(ctx.rank, 0));
    // First step must have been skipped: params untouched, scale halved.
    const std::vector<float> after_skip = engine.GatherFullParams();
    EXPECT_EQ(before, after_skip);
    EXPECT_EQ(engine.skipped_steps(), 1);
    EXPECT_EQ(engine.current_loss_scale(), 32768.0f);

    // Keep going: the scale decays until updates apply.
    for (int step = 1; step < 12; ++step) {
      (void)engine.TrainStep(RankBatch(ctx.rank, step));
    }
    EXPECT_GT(engine.skipped_steps(), 0);
    EXPECT_LT(engine.skipped_steps(), 12);
    const std::vector<float> final_params = engine.GatherFullParams();
    EXPECT_NE(before, final_params);  // training eventually progressed
  });
}

TEST(DynamicScalingTest, AllRanksAgreeOnSkips) {
  // The overflow flag is all-reduced, so skipped_steps must be identical
  // on every rank even though only some shards contain the overflow.
  const int nd = 4;
  std::vector<std::int64_t> skipped(static_cast<std::size_t>(nd));
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(101, 3);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsGP;
    cfg.fp16 = true;
    cfg.dynamic_loss_scale = true;
    cfg.scaler.init_scale = 65536.0f;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 2);
    for (int step = 0; step < 8; ++step) {
      (void)engine.TrainStep(RankBatch(ctx.rank, step));
    }
    skipped[static_cast<std::size_t>(ctx.rank)] = engine.skipped_steps();
  });
  for (int r = 1; r < nd; ++r) {
    EXPECT_EQ(skipped[0], skipped[static_cast<std::size_t>(r)]);
  }
}

TEST(EvalTest, EvalLossMatchesTrainLossAndLeavesStateUntouched) {
  const int nd = 2;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(64, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsGP;
    cfg.fp16 = true;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 3);
    const Batch batch = RankBatch(ctx.rank, 0);

    const std::vector<float> before = engine.GatherFullParams();
    const float eval = engine.EvalLoss(batch);
    EXPECT_EQ(engine.GatherFullParams(), before);  // no state change
    EXPECT_EQ(engine.steps_taken(), 0);

    const float train = engine.TrainStep(batch);
    EXPECT_EQ(eval, train);  // same params, same batch, same loss
    // And after the update the eval loss drops.
    EXPECT_LT(engine.EvalLoss(batch), eval);
  });
}

TEST(EvalTest, MidAccumulationCycleStateIsConsistent) {
  // An eval between micro-steps must not disturb the accumulation.
  const int nd = 2;
  const std::int64_t numel = 97;
  optim::AdamConfig adam;
  adam.lr = 0.05f;
  const std::vector<float> expected =
      ReferenceWithAccumulation(numel, 4, nd, 1, 2, 21, adam);
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, 4);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = false;
    cfg.exact_reductions = true;
    cfg.accumulation_steps = 2;
    cfg.adam = adam;
    ZeroDpEngine engine(cfg, m, dp, nullptr, 21);
    (void)engine.TrainStep(RankBatch(ctx.rank, 0));
    (void)engine.EvalLoss(RankBatch(ctx.rank, 99));  // mid-cycle eval
    (void)engine.TrainStep(RankBatch(ctx.rank, 1));
    auto params = engine.GatherFullParams();
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(params[i], expected[i]);
    }
  });
}

TEST(AccumulationTestExtra, AccumulatorMemoryOnlyWhenEnabled) {
  comm::World world(2);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(1024, 4);
    alloc::DeviceMemory dev(1 << 20, "r");
    alloc::CachingAllocator cache(dev);
    EngineConfig cfg;
    cfg.stage = ZeroStage::kOsG;
    cfg.fp16 = true;
    {
      ZeroDpEngine engine(cfg, m, dp, &cache, 1);
      const std::size_t base = cache.Stats().live_bytes;
      cfg.accumulation_steps = 4;
      ZeroDpEngine engine2(cfg, m, dp, &cache, 1);
      // The second engine additionally holds a 4-byte/param fp32 shard
      // accumulator (512 params/shard at nd=2).
      EXPECT_GE(cache.Stats().live_bytes - base, base);
      EXPECT_GE(cache.Stats().live_bytes - base, 512u * 4u);
    }
  });
}

}  // namespace
}  // namespace zero::core
