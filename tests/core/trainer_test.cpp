#include "core/trainer.hpp"

#include <gtest/gtest.h>

namespace zero::core {
namespace {

TrainOptions SmallOptions() {
  TrainOptions opt;
  opt.model.vocab = 13;
  opt.model.seq = 4;
  opt.model.hidden = 8;
  opt.model.layers = 2;
  opt.model.heads = 2;
  opt.engine.stage = model::ZeroStage::kOsG;
  opt.engine.loss_scale = 128.0f;
  opt.cluster.dp_degree = 2;
  opt.cluster.mp_degree = 1;
  opt.cluster.device_capacity_bytes = 32ull << 20;
  opt.batch_per_rank = 2;
  opt.steps = 2;
  return opt;
}

TEST(TrainerTest, RunsAllStagesToCompletion) {
  for (model::ZeroStage stage :
       {model::ZeroStage::kNone, model::ZeroStage::kOs,
        model::ZeroStage::kOsG, model::ZeroStage::kOsGP}) {
    TrainOptions opt = SmallOptions();
    opt.engine.stage = stage;
    TrainResult result = TrainGpt(opt);
    ASSERT_FALSE(result.oom) << result.oom_message;
    ASSERT_EQ(result.losses.size(), 2u);
    EXPECT_GT(result.final_loss(), 0.0f);
    EXPECT_EQ(result.ranks.size(), 2u);
  }
}

TEST(TrainerTest, DeterministicAcrossRuns) {
  TrainOptions opt = SmallOptions();
  TrainResult a = TrainGpt(opt);
  TrainResult b = TrainGpt(opt);
  ASSERT_EQ(a.losses.size(), b.losses.size());
  for (std::size_t i = 0; i < a.losses.size(); ++i) {
    EXPECT_EQ(a.losses[i], b.losses[i]);
  }
  EXPECT_EQ(a.MaxPeakCached(), b.MaxPeakCached());
}

TEST(TrainerTest, MpTimesDpGrid) {
  TrainOptions opt = SmallOptions();
  opt.model.heads = 2;
  opt.model.hidden = 8;
  opt.cluster.dp_degree = 2;
  opt.cluster.mp_degree = 2;
  opt.zero_r.activation_checkpointing = true;
  opt.zero_r.partition_activations = true;
  TrainResult result = TrainGpt(opt);
  ASSERT_FALSE(result.oom) << result.oom_message;
  EXPECT_EQ(result.ranks.size(), 4u);
  EXPECT_GT(result.TotalMpBytesSent(), 0u);
  EXPECT_GT(result.TotalDpBytesSent(), 0u);
}

TEST(TrainerTest, ZeroRCombinationsRun) {
  struct Combo {
    bool ckpt, pa, cpu, md;
  };
  const Combo combos[] = {
      {true, false, false, false},
      {true, true, false, false},
      {true, true, true, false},
      {true, false, false, true},
      {true, true, false, true},
  };
  for (const Combo& c : combos) {
    TrainOptions opt = SmallOptions();
    opt.cluster.mp_degree = 2;
    opt.cluster.dp_degree = 1;
    opt.zero_r.activation_checkpointing = c.ckpt;
    opt.zero_r.partition_activations = c.pa;
    opt.zero_r.cpu_offload = c.cpu;
    opt.zero_r.defrag_arena = c.md;
    opt.zero_r.arena_bytes = 1ull << 20;
    TrainResult result = TrainGpt(opt);
    ASSERT_FALSE(result.oom)
        << "pa=" << c.pa << " cpu=" << c.cpu << " md=" << c.md << ": "
        << result.oom_message;
    if (c.cpu) {
      EXPECT_GT(result.ranks[0].host.bytes_to_host, 0u);
    }
  }
}

TEST(TrainerTest, ValidationLossesCollectedWhenEnabled) {
  TrainOptions opt = SmallOptions();
  opt.steps = 4;
  opt.eval_every = 2;
  opt.eval_batches = 2;
  const TrainResult result = TrainGpt(opt);
  ASSERT_FALSE(result.oom) << result.oom_message;
  ASSERT_EQ(result.validation_losses.size(), 2u);  // after steps 2 and 4
  for (float v : result.validation_losses) {
    EXPECT_GT(v, 0.0f);
    EXPECT_LT(v, 10.0f);
  }
  // Disabled by default.
  opt.eval_every = 0;
  EXPECT_TRUE(TrainGpt(opt).validation_losses.empty());
}

TEST(TrainerTest, ValidationRunsUnderStage3AndMp) {
  // EvalLoss is collective for stage 3; the trainer must keep all ranks
  // (including MP peers) in lockstep through the eval points.
  TrainOptions opt = SmallOptions();
  opt.engine.stage = model::ZeroStage::kOsGP;
  opt.cluster.mp_degree = 2;
  opt.zero_r.activation_checkpointing = true;
  opt.steps = 2;
  opt.eval_every = 1;
  const TrainResult result = TrainGpt(opt);
  ASSERT_FALSE(result.oom) << result.oom_message;
  EXPECT_EQ(result.validation_losses.size(), 2u);
}

TEST(TrainerTest, InvalidZeroRCombosRejected) {
  TrainOptions opt = SmallOptions();
  opt.zero_r.partition_activations = true;  // without checkpointing
  EXPECT_THROW(TrainGpt(opt), Error);
}

TEST(TrainerTest, OomIsReportedNotThrown) {
  TrainOptions opt = SmallOptions();
  opt.cluster.device_capacity_bytes = 2 << 10;  // absurdly small
  TrainResult result = TrainGpt(opt);
  EXPECT_TRUE(result.oom);
  EXPECT_FALSE(result.oom_message.empty());
  EXPECT_TRUE(result.losses.empty());
}

TEST(TrainerTest, HigherStageUsesLessModelStateMemory) {
  TrainOptions opt = SmallOptions();
  opt.cluster.dp_degree = 4;
  opt.batch_per_rank = 1;

  std::size_t mem[4];
  int idx = 0;
  for (model::ZeroStage stage :
       {model::ZeroStage::kNone, model::ZeroStage::kOs,
        model::ZeroStage::kOsG, model::ZeroStage::kOsGP}) {
    opt.engine.stage = stage;
    TrainResult result = TrainGpt(opt);
    ASSERT_FALSE(result.oom);
    mem[idx++] = result.ranks[0].model_states.total();
  }
  EXPECT_GT(mem[0], mem[1]);
  EXPECT_GT(mem[1], mem[2]);
  EXPECT_GT(mem[2], mem[3]);
  // Stage 3 at Nd = 4 is ~4x smaller than baseline.
  EXPECT_NEAR(static_cast<double>(mem[0]) / static_cast<double>(mem[3]), 4.0,
              0.4);
}

}  // namespace
}  // namespace zero::core
