// Randomized equivalence fuzzing: arbitrary model sizes, unit counts,
// world sizes, stages and bucket sizes — every combination must
// reproduce the single-process reference trajectory bitwise under
// deterministic reductions. This is the bucketizer/partitioner torture
// chamber: units straddling partitions, partitions containing many
// units, heavy padding, one-element buckets.
#include <gtest/gtest.h>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"

namespace zero::core {
namespace {

using model::Batch;
using model::ZeroStage;

Batch FuzzBatch(int rank, int step, std::uint64_t seed) {
  Batch b;
  b.rows = 1;
  b.cols = 3;
  Rng rng(seed ^ (static_cast<std::uint64_t>(rank) << 20) ^
          static_cast<std::uint64_t>(step));
  for (int i = 0; i < 3; ++i) {
    b.inputs.push_back(static_cast<std::int32_t>(rng.NextBelow(97)));
    b.targets.push_back(0);
  }
  return b;
}

class EngineFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EngineFuzzTest, RandomShapesMatchReferenceBitwise) {
  const std::uint64_t seed = GetParam();
  Rng shape_rng(seed);
  const std::int64_t numel =
      7 + static_cast<std::int64_t>(shape_rng.NextBelow(400));
  const int units =
      1 + static_cast<int>(shape_rng.NextBelow(
              static_cast<std::uint64_t>(std::min<std::int64_t>(numel, 9))));
  const int nd = 1 + static_cast<int>(shape_rng.NextBelow(5));
  const std::int64_t bucket = 1 + static_cast<std::int64_t>(
                                      shape_rng.NextBelow(64));
  const ZeroStage stage = static_cast<ZeroStage>(shape_rng.NextBelow(4));
  const int steps = 3;
  optim::AdamConfig adam;
  adam.lr = 0.03f;

  // Reference.
  model::QuadModel ref_model(numel, units);
  std::vector<float> expected(static_cast<std::size_t>(numel));
  ref_model.InitParameters(expected, seed);
  {
    std::vector<float> mom(expected.size(), 0.0f), var(expected.size(), 0.0f);
    for (int step = 0; step < steps; ++step) {
      std::vector<float> sum(expected.size(), 0.0f);
      for (int r = 0; r < nd; ++r) {
        std::vector<float> g(expected.size(), 0.0f);
        model::DirectParamProvider provider(ref_model.layout(), expected);
        model::AccumulatingGradSink sink(ref_model.layout(), g);
        (void)ref_model.Step(FuzzBatch(r, step, seed), provider, sink);
        for (std::size_t i = 0; i < g.size(); ++i) sum[i] += g[i];
      }
      const float scale = 1.0f / static_cast<float>(nd);
      for (float& g : sum) g *= scale;
      optim::AdamUpdate(adam, step + 1, expected, sum, mom, var);
    }
  }

  // Engine run.
  std::vector<std::vector<float>> gathered(static_cast<std::size_t>(nd));
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(numel, units);
    EngineConfig cfg;
    cfg.stage = stage;
    cfg.fp16 = false;
    cfg.exact_reductions = true;
    cfg.bucket_elems = bucket;
    cfg.adam = adam;
    ZeroDpEngine engine(cfg, m, dp, nullptr, seed);
    for (int step = 0; step < steps; ++step) {
      (void)engine.TrainStep(FuzzBatch(ctx.rank, step, seed));
    }
    gathered[static_cast<std::size_t>(ctx.rank)] = engine.GatherFullParams();
  });

  for (int r = 0; r < nd; ++r) {
    ASSERT_EQ(gathered[static_cast<std::size_t>(r)].size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      ASSERT_EQ(gathered[static_cast<std::size_t>(r)][i], expected[i])
          << "seed=" << seed << " numel=" << numel << " units=" << units
          << " nd=" << nd << " stage=" << static_cast<int>(stage)
          << " bucket=" << bucket << " rank=" << r << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzzTest,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace zero::core
