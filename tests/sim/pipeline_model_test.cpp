#include "sim/pipeline_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "sim/memory_model.hpp"

namespace zero::sim {
namespace {

model::TransformerSpec Spec40B() {
  model::TransformerSpec spec;
  spec.layers = 88;
  spec.hidden = 6144;
  spec.heads = 32;
  return spec;
}

TEST(PipelineModelTest, GpipeBubbleShrinksWithMicroBatches) {
  ClusterSpec cluster;
  PipelineConfig pp;
  pp.model = Spec40B();
  pp.stages = 16;
  pp.micro_batches = 16;
  const double bubble_small =
      EstimatePipeline(cluster, pp).bubble_fraction;
  pp.micro_batches = 128;
  const double bubble_big = EstimatePipeline(cluster, pp).bubble_fraction;
  EXPECT_GT(bubble_small, bubble_big);
  EXPECT_NEAR(bubble_small, 15.0 / 31.0, 1e-9);  // (P-1)/(M+P-1)
}

TEST(PipelineModelTest, GpipeActivationMemoryGrowsWithMicroBatches) {
  // The paper's criticism: hiding the bubble needs more micro-batches,
  // which inflates resident activation checkpoints.
  ClusterSpec cluster;
  PipelineConfig pp;
  pp.model = Spec40B();
  pp.stages = 16;
  pp.micro_batches = 16;
  const double act16 = EstimatePipeline(cluster, pp).activation_bytes;
  pp.micro_batches = 128;
  const double act128 = EstimatePipeline(cluster, pp).activation_bytes;
  EXPECT_NEAR(act128 / act16, 8.0, 1e-9);
}

TEST(PipelineModelTest, PipeDreamTradesBubbleForWeightVersions) {
  ClusterSpec cluster;
  PipelineConfig pp;
  pp.model = Spec40B();
  pp.stages = 8;
  pp.scheme = PipelineScheme::kPipeDream;
  const PipelineEstimate est = EstimatePipeline(cluster, pp);
  EXPECT_EQ(est.bubble_fraction, 0.0);
  EXPECT_EQ(est.weight_versions, 8.0);
  EXPECT_FALSE(est.equivalent_to_sync_sgd);
  // Weight stashing multiplies parameter memory well past G-Pipe's.
  pp.scheme = PipelineScheme::kGpipe;
  EXPECT_GT(est.param_state_bytes,
            EstimatePipeline(cluster, pp).param_state_bytes * 1.5);
}

TEST(PipelineModelTest, ZeroMatchesPipelineMemoryWithoutRestrictions) {
  // Sec 2.1's claim: at equal device count, ZeRO stage 3's model-state
  // memory is in the same class as G-Pipe's partitioned parameters —
  // without the bubble/batch coupling.
  ClusterSpec cluster;
  const int devices = 64;

  JobConfig zero_job;
  zero_job.model = Spec40B();
  zero_job.gpus = devices;
  zero_job.mp = 1;
  zero_job.stage = model::ZeroStage::kOsGP;
  zero_job.batch_per_gpu = 1;
  const double zero_states =
      EstimateMemory(cluster, zero_job).model_states();

  PipelineConfig pp;
  pp.model = Spec40B();
  pp.stages = devices;
  pp.micro_batches = devices;
  const double pp_states =
      EstimatePipeline(cluster, pp).param_state_bytes;

  EXPECT_NEAR(zero_states, pp_states, 0.05 * pp_states);
}

TEST(PipelineModelTest, RejectsDegenerateConfig) {
  ClusterSpec cluster;
  PipelineConfig pp;
  pp.stages = 0;
  EXPECT_THROW((void)EstimatePipeline(cluster, pp), Error);
}

}  // namespace
}  // namespace zero::sim
