#include "sim/memory_model.hpp"

#include <gtest/gtest.h>

#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

namespace zero::sim {
namespace {

using model::ZeroStage;

JobConfig BigJob(double psi_target_b, ZeroStage stage, int gpus, int mp) {
  JobConfig job;
  job.model.hidden = 8192;
  job.model.heads = 64;
  // layers from target Psi: 12*l*h^2 ~= psi.
  job.model.layers = static_cast<std::int64_t>(
      psi_target_b * 1e9 / (12.0 * 8192.0 * 8192.0));
  job.gpus = gpus;
  job.mp = mp;
  job.stage = stage;
  return job;
}

TEST(MemoryModelTest, Table1ModelStateColumns) {
  // Table 1: per-device model-state GB for 7.5B/128B/1T at DP degrees.
  // Model states only — compare against PerDeviceModelStates directly
  // through the sim plumbing (mp = 1, so psi_local = psi).
  const struct {
    double psi;
    int nd;
    ZeroStage stage;
    double expected_gb;
  } cases[] = {
      {7.5e9, 64, ZeroStage::kOs, 31.4},
      {7.5e9, 64, ZeroStage::kOsG, 16.6},
      {7.5e9, 64, ZeroStage::kOsGP, 1.88},
      // Table 1 prints 0.12 for this cell; 16 * 7.5e9 / 1024 is 0.117.
      {7.5e9, 1024, ZeroStage::kOsGP, 0.1171875},
      {128e9, 16, ZeroStage::kOsGP, 128.0},
      {128e9, 1024, ZeroStage::kOsG, 257.0},
      {1e12, 1024, ZeroStage::kOsGP, 15.6},
      {1e12, 64, ZeroStage::kOs, 4187.0},
  };
  for (const auto& c : cases) {
    const double gb =
        model::PerDeviceModelStates(c.psi, c.stage, c.nd).total() / 1e9;
    EXPECT_NEAR(gb, c.expected_gb, c.expected_gb * 0.01)
        << "psi=" << c.psi << " nd=" << c.nd;
  }
}

TEST(MemoryModelTest, Table2TheoreticalMaxSizes) {
  // Table 2 left half: 32 GB V100, Nd = 64 at every row.
  const double cap = 32e9;
  const struct {
    int mp;
    double baseline, pos, posg, posgp;  // billions
  } rows[] = {
      {1, 2.0, 7.6, 14.4, 128.0},
      {2, 4.0, 15.2, 28.8, 256.0},
      {4, 8.0, 30.4, 57.6, 512.0},
      {8, 16.0, 60.8, 115.2, 1000.0},
      {16, 32.0, 121.6, 230.4, 2000.0},
  };
  for (const auto& r : rows) {
    EXPECT_NEAR(TheoreticalMaxParams(cap, ZeroStage::kNone, r.mp, 64) / 1e9,
                r.baseline, r.baseline * 0.01);
    EXPECT_NEAR(TheoreticalMaxParams(cap, ZeroStage::kOs, r.mp, 64) / 1e9,
                r.pos, r.pos * 0.01);
    EXPECT_NEAR(TheoreticalMaxParams(cap, ZeroStage::kOsG, r.mp, 64) / 1e9,
                r.posg, r.posg * 0.01);
    EXPECT_NEAR(TheoreticalMaxParams(cap, ZeroStage::kOsGP, r.mp, 64) / 1e9,
                r.posgp, r.posgp * 0.03);
  }
}

TEST(MemoryModelTest, BaselineDpCapsNear1p4B) {
  // Sec 1 / Fig 4: plain 2019-era DDP (no ZeRO-R: unfused-proportional
  // buffers, no checkpointing, no defrag) runs out of memory beyond
  // ~1.4B parameters.
  ClusterSpec cluster;
  JobConfig job;
  job.model.hidden = 1536;
  job.model.heads = 16;
  job.model.layers = 40;  // ~1.4B (the Table 10 baseline row)
  job.gpus = 128;
  job.mp = 1;
  job.stage = ZeroStage::kNone;
  job.batch_per_gpu = 1;
  job.activation_checkpointing = false;
  job.constant_buffers = false;
  job.defrag = false;
  EXPECT_TRUE(Fits(cluster, job));
  job.model.layers = 60;  // ~2B
  EXPECT_FALSE(Fits(cluster, job));
}

TEST(MemoryModelTest, ZeroStage2Runs13BWithoutMp) {
  // Fig 4 headline: 13B trainable with Pos+g and no model parallelism.
  ClusterSpec cluster;
  JobConfig job;
  job.model.hidden = 4096;
  job.model.heads = 32;
  job.model.layers = 62;  // 13B row of Table 10
  job.gpus = 128;
  job.mp = 1;
  job.stage = ZeroStage::kOsG;
  job.batch_per_gpu = 2;
  EXPECT_TRUE(Fits(cluster, job));
  // But not under baseline DP.
  job.stage = ZeroStage::kNone;
  EXPECT_FALSE(Fits(cluster, job));
}

TEST(MemoryModelTest, PaDividesCheckpointMemoryByMp) {
  ClusterSpec cluster;
  JobConfig job = BigJob(100, ZeroStage::kOsG, 400, 16);
  job.batch_per_gpu = 32;
  const MemoryBreakdown without_pa = EstimateMemory(cluster, job);
  job.pa = true;
  const MemoryBreakdown with_pa = EstimateMemory(cluster, job);
  EXPECT_NEAR(without_pa.checkpoints / with_pa.checkpoints, 16.0, 0.01);
  job.pa_cpu = true;
  const MemoryBreakdown with_cpu = EstimateMemory(cluster, job);
  EXPECT_EQ(with_cpu.checkpoints, 0.0);
}

TEST(MemoryModelTest, ConstantBuffersCapBufferMemory) {
  ClusterSpec cluster;
  JobConfig job = BigJob(100, ZeroStage::kOsG, 400, 16);
  job.constant_buffers = false;
  const double unfused = EstimateMemory(cluster, job).buffers;
  job.constant_buffers = true;
  const double fused = EstimateMemory(cluster, job).buffers;
  EXPECT_EQ(fused, kConstantBufferBytes);
  EXPECT_GT(unfused, 10.0 * fused);  // 4 bytes * 6.25B local params
}

TEST(MemoryModelTest, MaxBatchGrowsWithDpDegreeUnderZero) {
  // The super-linearity mechanism (Sec 10.3): more DP ranks -> smaller
  // model states per rank -> bigger batch fits.
  ClusterSpec cluster;
  JobConfig job = BigJob(60, ZeroStage::kOsG, 64, 16);
  const std::int64_t batch_64 = MaxBatchPerGpu(cluster, job);
  job.gpus = 400;
  const std::int64_t batch_400 = MaxBatchPerGpu(cluster, job);
  EXPECT_GT(batch_400, batch_64);
  EXPECT_GE(batch_64, 1);
}

TEST(MemoryModelTest, ConfigC1ThroughC5MaxModelSizeOrdering) {
  // Figure 6's narrative: C1 -> C2 grows via Pa (40B -> 60B in the
  // paper), C2 -> C4 grows via Pos+g, C4 -> C5 grows slightly via
  // Pa+cpu. C3 (Pos+g without Pa) is not ordered against C2 by the
  // paper; it must still beat C1.
  ClusterSpec cluster;
  JobConfig base = Figure6BaseRun().ToJob();
  double psi[6] = {0};
  for (int config = 1; config <= 5; ++config) {
    JobConfig job = JobConfig::WithConfigId(base, config);
    job.model.layers = MaxLayers(cluster, job);
    psi[config] = static_cast<double>(job.psi());
  }
  EXPECT_GT(psi[2], psi[1] * 1.2);  // Pa buys a sizable jump
  EXPECT_GT(psi[3], psi[1]);        // Pos+g alone beats Pos alone
  EXPECT_GT(psi[4], psi[2] * 1.2);  // Pos+g on top of Pa: the big jump
  EXPECT_GT(psi[5], psi[4]);        // Pa+cpu adds a little more
  // Absolute scale: C4/C5 land in the 100B-250B range like the paper's
  // 140B/150B.
  EXPECT_GT(psi[4], 100e9);
  EXPECT_LT(psi[5], 250e9);
}

TEST(MemoryModelTest, SearchesAreConsistentWithFits) {
  ClusterSpec cluster;
  JobConfig job = BigJob(60, ZeroStage::kOsG, 128, 16);
  const std::int64_t max_batch = MaxBatchPerGpu(cluster, job);
  ASSERT_GE(max_batch, 1);
  job.batch_per_gpu = max_batch;
  EXPECT_TRUE(Fits(cluster, job));
  job.batch_per_gpu = max_batch + 1;
  EXPECT_FALSE(Fits(cluster, job));
}

TEST(MemoryModelTest, FragmentationReserveWithoutMd) {
  ClusterSpec cluster;
  JobConfig job = BigJob(60, ZeroStage::kOsG, 128, 16);
  job.batch_per_gpu = 16;
  job.defrag = false;
  const double without_md = EstimateMemory(cluster, job).total();
  job.defrag = true;
  const double with_md = EstimateMemory(cluster, job).total();
  EXPECT_GT(without_md, with_md);
}

}  // namespace
}  // namespace zero::sim
