// The storage-tier extension of the memory and cost models: "what fits
// on N GPUs with the optimizer state in host DRAM or on NVMe" (the
// ZeRO-Offload / ZeRO-Infinity direction the paper's Sec 2.2.2
// contrasts with), up to trillion-parameter configs.
#include <gtest/gtest.h>

#include "sim/cost_model.hpp"
#include "sim/memory_model.hpp"
#include "sim/netsim_bridge.hpp"
#include "sim/search.hpp"

namespace zero::sim {
namespace {

using model::ZeroStage;

JobConfig TrillionJob(OffloadTier tier) {
  JobConfig job;
  job.model.hidden = 16384;
  job.model.heads = 128;
  job.model.layers = 310;  // 12*l*h^2 ~= 1T
  job.gpus = 1024;
  job.mp = 1;
  job.batch_per_gpu = 1;
  job.stage = ZeroStage::kOsGP;
  job.optimizer_tier = tier;
  return job;
}

TEST(OffloadMemoryModelTest, TierRelocatesTheOptimizerTermOffDevice) {
  ClusterSpec cluster;
  const MemoryBreakdown device =
      EstimateMemory(cluster, TrillionJob(OffloadTier::kNone));
  ASSERT_GT(device.optimizer, 0.0);
  EXPECT_EQ(device.host_total(), 0.0);
  EXPECT_EQ(device.nvme_total(), 0.0);

  const MemoryBreakdown host =
      EstimateMemory(cluster, TrillionJob(OffloadTier::kHost));
  EXPECT_EQ(host.optimizer, 0.0);
  EXPECT_EQ(host.host_optimizer, device.optimizer);
  EXPECT_EQ(host.nvme_total(), 0.0);
  // The device footprint drops by exactly the relocated K*Psi/Nd term.
  EXPECT_DOUBLE_EQ(device.total() - host.total(), device.optimizer);

  const MemoryBreakdown nvme =
      EstimateMemory(cluster, TrillionJob(OffloadTier::kNvme));
  EXPECT_EQ(nvme.optimizer, 0.0);
  EXPECT_EQ(nvme.host_optimizer, 0.0);
  EXPECT_EQ(nvme.nvme_optimizer, device.optimizer);
  EXPECT_DOUBLE_EQ(nvme.total(), host.total());
}

TEST(OffloadMemoryModelTest, PaCpuCheckpointsCountAgainstHostCapacity) {
  ClusterSpec cluster;
  JobConfig job = TrillionJob(OffloadTier::kHost);
  job.pa = true;
  job.pa_cpu = true;
  const MemoryBreakdown mem = EstimateMemory(cluster, job);
  EXPECT_EQ(mem.checkpoints, 0.0);
  EXPECT_GT(mem.host_checkpoints, 0.0);
  EXPECT_DOUBLE_EQ(mem.host_total(),
                   mem.host_optimizer + mem.host_checkpoints);
}

TEST(OffloadMemoryModelTest, CheckFitsEnforcesEveryTiersCapacity) {
  ClusterSpec cluster;
  // 1T on 512 GPUs with Pos+g+p: the K*Psi/Nd term blows the usable
  // device budget; relocating it to either off-device tier fits.
  JobConfig device_job = TrillionJob(OffloadTier::kNone);
  device_job.gpus = 512;
  EXPECT_FALSE(CheckFits(cluster, device_job).device);
  JobConfig host_job = TrillionJob(OffloadTier::kHost);
  host_job.gpus = 512;
  const FitsReport host = CheckFits(cluster, host_job);
  EXPECT_TRUE(host.device);
  EXPECT_TRUE(host.host);
  EXPECT_TRUE(host.all());
  JobConfig nvme_job = TrillionJob(OffloadTier::kNvme);
  nvme_job.gpus = 512;
  const FitsReport nvme = CheckFits(cluster, nvme_job);
  EXPECT_TRUE(nvme.all());

  // Host DRAM is a real capacity, not a free escape hatch: starve it
  // and the same job stops fitting (likewise NVMe).
  ClusterSpec tiny = cluster;
  tiny.host_memory_per_node = 1e9;
  const FitsReport starved = CheckFits(tiny, host_job);
  EXPECT_TRUE(starved.device);
  EXPECT_FALSE(starved.host);
  EXPECT_FALSE(starved.all());
  ClusterSpec tiny_nvme = cluster;
  tiny_nvme.nvme_per_node = 1e9;
  EXPECT_FALSE(CheckFits(tiny_nvme, nvme_job).nvme);
  EXPECT_FALSE(Fits(tiny_nvme, nvme_job));
}

TEST(OffloadSearchTest, MinGpusToFitIsTightAndOffloadShrinksIt) {
  ClusterSpec cluster;
  const int device_min = MinGpusToFit(cluster, TrillionJob(OffloadTier::kNone));
  const int host_min = MinGpusToFit(cluster, TrillionJob(OffloadTier::kHost));
  const int nvme_min = MinGpusToFit(cluster, TrillionJob(OffloadTier::kNvme));
  ASSERT_GT(device_min, 0);
  ASSERT_GT(host_min, 0);
  // Moving K*Psi/Nd off the device is what makes 1T reachable with
  // far fewer GPUs (Sec 9's feasibility frontier).
  EXPECT_LT(host_min, device_min);
  EXPECT_EQ(nvme_min, host_min);

  // Tightness: fits at the returned count, not one fewer.
  for (const int min_gpus : {device_min, host_min}) {
    JobConfig job = TrillionJob(min_gpus == host_min ? OffloadTier::kHost
                                                     : OffloadTier::kNone);
    job.gpus = min_gpus;
    EXPECT_TRUE(Fits(cluster, job)) << min_gpus;
    job.gpus = min_gpus - 1;
    EXPECT_FALSE(Fits(cluster, job)) << min_gpus;
  }

  // A search capped below the answer reports "never" as 0.
  EXPECT_EQ(MinGpusToFit(cluster, TrillionJob(OffloadTier::kNone), 64), 0);
}

TEST(OffloadCostModelTest, BytesPerStepMatchTheWireFormat) {
  JobConfig job = TrillionJob(OffloadTier::kNone);
  EXPECT_EQ(OptimizerOffloadBytesPerStep(job), 0.0);

  job.optimizer_tier = OffloadTier::kHost;
  const double shard = job.psi_local() / job.dp();
  // ZeRO-Offload's split: fp16 gradients down + fp16 parameters back.
  EXPECT_DOUBLE_EQ(OptimizerOffloadBytesPerStep(job), 4.0 * shard);

  // NVMe is not host-addressable: the 12 B/param fp32 state streams
  // through the link both ways on top of the wire format.
  job.optimizer_tier = OffloadTier::kNvme;
  EXPECT_DOUBLE_EQ(OptimizerOffloadBytesPerStep(job), 28.0 * shard);

  // The unpartitioned baseline offloads its full replica.
  job.stage = ZeroStage::kNone;
  job.optimizer_tier = OffloadTier::kHost;
  EXPECT_DOUBLE_EQ(OptimizerOffloadBytesPerStep(job), 4.0 * job.psi_local());
}

TEST(OffloadCostModelTest, ExposedTimeShrinksWithComputeToOverlap) {
  ClusterSpec cluster;
  JobConfig job = TrillionJob(OffloadTier::kHost);
  const double cold = ExposedOffloadSeconds(cluster, job, 0.0);
  EXPECT_DOUBLE_EQ(cold,
                   OptimizerOffloadBytesPerStep(job) / cluster.pcie_bw);
  // Enough backward/step compute hides the stream entirely.
  EXPECT_LT(ExposedOffloadSeconds(cluster, job, cold), cold);
  EXPECT_EQ(ExposedOffloadSeconds(cluster, job, 1e9), 0.0);
  // The NVMe stream rides the (slower) NVMe link.
  job.optimizer_tier = OffloadTier::kNvme;
  EXPECT_DOUBLE_EQ(ExposedOffloadSeconds(cluster, job, 0.0),
                   OptimizerOffloadBytesPerStep(job) / cluster.nvme_bw);
}

TEST(OffloadCostModelTest, ThroughputChargesTheExposedStream) {
  // EstimateThroughput's offload_s is exactly the shared helper's
  // answer — the analytic model and the netsim bridge no longer carry
  // separate copies of this formula.
  ClusterSpec cluster;
  JobConfig job = TrillionJob(OffloadTier::kNvme);
  const ThroughputEstimate none =
      EstimateThroughput(cluster, TrillionJob(OffloadTier::kNone));
  const ThroughputEstimate nvme = EstimateThroughput(cluster, job);
  EXPECT_EQ(none.offload_s, 0.0);
  EXPECT_DOUBLE_EQ(nvme.offload_s,
                   ExposedOffloadSeconds(cluster, job, nvme.compute_s));
  EXPECT_LE(nvme.tflops_per_gpu, none.tflops_per_gpu);
  EXPECT_NEAR(nvme.step_seconds,
              nvme.compute_s + nvme.mp_comm_s + nvme.dp_comm_s +
                  nvme.offload_s,
              1e-12);
}

TEST(OffloadCostModelTest, NetsimBridgeAgreesWithTheAnalyticOffloadTerm) {
  // With overlap off, the stream is fully exposed in both models — the
  // dedup'd helper is the single source of the offload term.
  ClusterSpec cluster;
  cluster.optimizer_offload_overlap = 0.0;
  JobConfig job = TrillionJob(OffloadTier::kNvme);
  const ThroughputEstimate analytic = EstimateThroughput(cluster, job);
  const ThroughputEstimate simulated =
      EstimateThroughputSimulatedNetwork(cluster, job);
  ASSERT_GT(analytic.offload_s, 0.0);
  EXPECT_DOUBLE_EQ(analytic.offload_s,
                   OptimizerOffloadBytesPerStep(job) / cluster.nvme_bw);
  EXPECT_DOUBLE_EQ(simulated.offload_s,
                   ExposedOffloadSeconds(cluster, job, simulated.compute_s));
  EXPECT_DOUBLE_EQ(simulated.offload_s, analytic.offload_s);
}

}  // namespace
}  // namespace zero::sim
