#include "sim/netsim_bridge.hpp"

#include <gtest/gtest.h>

#include "sim/paper_configs.hpp"

namespace zero::sim {
namespace {

TEST(NetSimBridgeTest, TopologySizedFromJob) {
  ClusterSpec cluster;
  JobConfig job;
  job.gpus = 400;
  const NetTopology topo = TopologyFor(cluster, job);
  EXPECT_EQ(topo.nodes, 25);
  EXPECT_EQ(topo.gpus_per_node, 16);
  EXPECT_DOUBLE_EQ(topo.node_uplink_bw, 100e9);
  EXPECT_DOUBLE_EQ(topo.nic_bw, 12.5e9);
}

TEST(NetSimBridgeTest, AgreesWithAnalyticModelOnFigure2) {
  // Two derivations of the same physics: the simulated-network estimate
  // must agree with the closed-form model to first order on every
  // Figure 2 config (compute is shared; only comm terms differ).
  ClusterSpec cluster;
  for (const PaperRun& run : Figure2Runs()) {
    const JobConfig job = run.ToJob();
    const ThroughputEstimate analytic = EstimateThroughput(cluster, job);
    const ThroughputEstimate simulated =
        EstimateThroughputSimulatedNetwork(cluster, job);
    EXPECT_NEAR(simulated.tflops_per_gpu, analytic.tflops_per_gpu,
                0.40 * analytic.tflops_per_gpu)
        << run.label << (run.is_zero ? " zero" : " base");
  }
}

TEST(NetSimBridgeTest, CrossNodeBaselineCollapsesHereToo) {
  // The emergent cliff: Megatron beyond one node drops to single-digit
  // TFlops with the simulated fabric as well.
  ClusterSpec cluster;
  for (const PaperRun& run : Figure2Runs()) {
    if (run.is_zero || run.mp <= 16) continue;
    const ThroughputEstimate t =
        EstimateThroughputSimulatedNetwork(cluster, run.ToJob());
    EXPECT_LT(t.tflops_per_gpu, 10.0) << run.label;
  }
}

TEST(NetSimBridgeTest, ZeroStaysFastOnSimulatedFabric) {
  ClusterSpec cluster;
  for (const PaperRun& run : Figure2Runs()) {
    if (!run.is_zero) continue;
    const ThroughputEstimate t =
        EstimateThroughputSimulatedNetwork(cluster, run.ToJob());
    EXPECT_GT(t.tflops_per_gpu, 25.0) << run.label;
  }
}

TEST(NetSimBridgeTest, Stage3Costs50PercentMoreDpTime) {
  ClusterSpec cluster;
  JobConfig job;
  job.model.layers = 40;
  job.model.hidden = 4096;
  job.model.heads = 32;
  job.gpus = 64;
  job.mp = 1;
  job.batch_per_gpu = 1;
  job.stage = model::ZeroStage::kOsG;
  cluster.dp_overlap = 0.0;  // expose the raw comm time
  const double s2 =
      EstimateThroughputSimulatedNetwork(cluster, job).dp_comm_s;
  job.stage = model::ZeroStage::kOsGP;
  const double s3 =
      EstimateThroughputSimulatedNetwork(cluster, job).dp_comm_s;
  EXPECT_NEAR(s3 / s2, 1.5, 1e-9);
}

}  // namespace
}  // namespace zero::sim
