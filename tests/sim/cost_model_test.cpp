#include "sim/cost_model.hpp"

#include <gtest/gtest.h>

#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

namespace zero::sim {
namespace {

using model::ZeroStage;

TEST(CostModelTest, EfficiencyIncreasesWithBatchAndWidth) {
  ClusterSpec cluster;
  JobConfig job;
  job.model.hidden = 8192;
  job.mp = 16;
  job.batch_per_gpu = 4;
  const double e_small = Efficiency(cluster, job);
  job.batch_per_gpu = 64;
  const double e_big = Efficiency(cluster, job);
  EXPECT_GT(e_big, e_small);
  job.mp = 1;
  EXPECT_GT(Efficiency(cluster, job), e_big);
  EXPECT_LT(Efficiency(cluster, job), 1.0);
}

TEST(CostModelTest, Zero100BSustainsPaperThroughput) {
  // Sec 10.2: ZeRO-100B averages >38 TFlops/GPU (15 PFlops aggregate) on
  // 8B-100B models with 400 GPUs.
  ClusterSpec cluster;
  double total_pflops = 0;
  int count = 0;
  for (const PaperRun& run : Figure2Runs()) {
    if (!run.is_zero || run.psi_nominal < 8e9) continue;
    const ThroughputEstimate t = EstimateThroughput(cluster, run.ToJob());
    EXPECT_GT(t.tflops_per_gpu, 25.0) << run.label;
    EXPECT_LT(t.tflops_per_gpu, 60.0) << run.label;
    total_pflops += t.aggregate_pflops;
    ++count;
  }
  EXPECT_NEAR(total_pflops / count, 15.0, 5.0);
}

TEST(CostModelTest, CrossNodeMpCollapsesBaseline) {
  // Sec 1: Megatron at 40B across two DGX-2 nodes -> ~5 TFlops/GPU.
  ClusterSpec cluster;
  for (const PaperRun& run : Figure2Runs()) {
    if (run.is_zero || run.psi_nominal < 40e9) continue;
    const ThroughputEstimate t = EstimateThroughput(cluster, run.ToJob());
    EXPECT_LT(t.tflops_per_gpu, 10.0) << run.label;
  }
}

TEST(CostModelTest, ZeroBeatsBaselineEverywhereAndUpTo10x) {
  // Figure 2's headline shape: ZeRO wins at every size, modestly below
  // 40B (where the baseline still fits MP in one node) and by an order
  // of magnitude beyond it.
  ClusterSpec cluster;
  const auto& runs = Figure2Runs();
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const ThroughputEstimate z = EstimateThroughput(cluster, runs[i].ToJob());
    const ThroughputEstimate b =
        EstimateThroughput(cluster, runs[i + 1].ToJob());
    const double speedup = z.tflops_per_gpu / b.tflops_per_gpu;
    EXPECT_GT(speedup, 1.0) << runs[i].label;
    if (runs[i].psi_nominal < 40e9) {
      EXPECT_LT(speedup, 4.0) << runs[i].label;
    } else {
      // The paper reports "up to 10x"; the cross-node cliff makes the
      // exact factor sensitive to the MP bandwidth assumption.
      EXPECT_GT(speedup, 5.0) << runs[i].label;
      EXPECT_LT(speedup, 40.0) << runs[i].label;
    }
  }
}

TEST(CostModelTest, SuperLinearScalingOn60B) {
  // Figure 3: doubling GPUs more than doubles aggregate throughput,
  // because bigger DP frees memory for bigger batches.
  ClusterSpec cluster;
  const auto& runs = Figure3Runs();
  std::vector<double> per_gpu;
  for (const PaperRun& run : runs) {
    per_gpu.push_back(EstimateThroughput(cluster, run.ToJob()).tflops_per_gpu);
  }
  // Per-GPU throughput grows monotonically with scale (the super-linear
  // signature).
  for (std::size_t i = 1; i < per_gpu.size(); ++i) {
    EXPECT_GE(per_gpu[i], per_gpu[i - 1] * 0.98) << "step " << i;
  }
  // 64 -> 400 GPUs: aggregate speedup exceeds the 6.25x GPU ratio.
  const double aggregate_speedup =
      (per_gpu.back() * 400.0) / (per_gpu.front() * 64.0);
  EXPECT_GT(aggregate_speedup, 400.0 / 64.0);
}

TEST(CostModelTest, DemocratizationThroughput) {
  // Figure 4: ZeRO without MP sustains >30 TFlops/GPU up to 13B, while
  // baseline DDP at 1.4B stays under 20.
  ClusterSpec cluster;
  double zero_sum = 0;
  int zero_count = 0;
  double zero_1b = 0, base_1b = 0, base_largest = 0;
  for (const PaperRun& run : Figure4Runs()) {
    const ThroughputEstimate t = EstimateThroughput(cluster, run.ToJob());
    if (run.is_zero) {
      EXPECT_GT(t.tflops_per_gpu, 18.0) << run.label;
      zero_sum += t.tflops_per_gpu;
      ++zero_count;
      if (run.label == "1.16B") zero_1b = t.tflops_per_gpu;
    } else if (run.label == "1.16B-base") {
      base_1b = t.tflops_per_gpu;
    } else {
      base_largest = t.tflops_per_gpu;  // 1.38B at batch 1
    }
  }
  EXPECT_GT(zero_sum / zero_count, 33.0);  // "over 40 TFlops on average"
  // "the largest trainable model with DP alone has 1.4B parameters with
  // throughput less than 20 TFlops per GPU".
  EXPECT_LT(base_largest, 20.0);
  // And ZeRO beats the DDP baseline even where both fit.
  EXPECT_GT(zero_1b, base_1b);
}

TEST(CostModelTest, Stage3CostsFiftyPercentMoreDpTraffic) {
  ClusterSpec cluster;
  JobConfig job;
  job.model.layers = 40;
  job.model.hidden = 4096;
  job.model.heads = 32;
  job.gpus = 64;
  job.mp = 1;
  job.batch_per_gpu = 1;  // tiny batch: communication dominates
  job.stage = ZeroStage::kOsG;
  const ThroughputEstimate s2 = EstimateThroughput(cluster, job);
  job.stage = ZeroStage::kOsGP;
  const ThroughputEstimate s3 = EstimateThroughput(cluster, job);
  EXPECT_GT(s3.dp_comm_s, s2.dp_comm_s);
}

TEST(CostModelTest, Stage3PrefetchDepthControlsExposedParamTraffic) {
  // Sec 7.2.2: the extra 1 Psi of stage-3 parameter broadcasts is only
  // hidden when the gathers are pipelined ahead of the compute. Deeper
  // lookahead monotonically shrinks the exposed DP time; at depth >= 2
  // the analytic model treats the parameter traffic as fully
  // pipelined.
  ClusterSpec cluster;
  JobConfig job;
  job.model.layers = 40;
  job.model.hidden = 4096;
  job.model.heads = 32;
  job.gpus = 64;
  job.mp = 1;
  job.batch_per_gpu = 1;  // tiny batch: communication dominates
  job.stage = ZeroStage::kOsGP;

  job.prefetch_lookahead = 0;
  const ThroughputEstimate cold = EstimateThroughput(cluster, job);
  job.prefetch_lookahead = 1;
  const ThroughputEstimate shallow = EstimateThroughput(cluster, job);
  job.prefetch_lookahead = 2;
  const ThroughputEstimate deep = EstimateThroughput(cluster, job);
  job.prefetch_lookahead = 8;
  const ThroughputEstimate deeper = EstimateThroughput(cluster, job);

  EXPECT_GT(cold.dp_comm_s, shallow.dp_comm_s);
  EXPECT_GT(shallow.dp_comm_s, deep.dp_comm_s);
  EXPECT_EQ(deep.dp_comm_s, deeper.dp_comm_s);  // saturates at full hide
  EXPECT_LT(cold.tflops_per_gpu, deep.tflops_per_gpu);
}

TEST(CostModelTest, PaCpuExposesTransferCostAtSameBatch) {
  // Figure 8's 60B caveat: at the same batch size, C5 pays the PCIe
  // transfers and is strictly slower than C4.
  ClusterSpec cluster;
  JobConfig base = Figure8Runs()[0].ToJob();  // 60B, 128 GPUs
  base.batch_per_gpu = 32;
  const ThroughputEstimate c4 =
      EstimateThroughput(cluster, JobConfig::WithConfigId(base, 4));
  const ThroughputEstimate c5 =
      EstimateThroughput(cluster, JobConfig::WithConfigId(base, 5));
  EXPECT_EQ(c4.offload_s, 0.0);
  EXPECT_GT(c5.offload_s, 0.0);
  EXPECT_GT(c4.tflops_per_gpu, c5.tflops_per_gpu);
}

TEST(CostModelTest, OnlyC5Runs170BAtPaperBatch) {
  // Figure 8: at its batch size of 12, the 170B model only executes
  // under C5 — Pa+cpu is what removes the checkpoint footprint.
  ClusterSpec cluster;
  JobConfig base = Figure8Runs()[1].ToJob();  // 170B, 400 GPUs, batch 12
  EXPECT_FALSE(Fits(cluster, JobConfig::WithConfigId(base, 4)));
  const JobConfig c5 = JobConfig::WithConfigId(base, 5);
  ASSERT_TRUE(Fits(cluster, c5));
  EXPECT_GT(EstimateThroughput(cluster, c5).tflops_per_gpu, 10.0);
}

TEST(CostModelTest, StepTimeDecomposesExactly) {
  ClusterSpec cluster;
  const ThroughputEstimate t =
      EstimateThroughput(cluster, Figure2Runs()[0].ToJob());
  EXPECT_NEAR(t.step_seconds,
              t.compute_s + t.mp_comm_s + t.dp_comm_s + t.offload_s, 1e-12);
}

}  // namespace
}  // namespace zero::sim
