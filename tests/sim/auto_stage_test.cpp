#include "sim/auto_stage.hpp"

#include <gtest/gtest.h>

namespace zero::sim {
namespace {

JobConfig JobOf(double psi_b, int gpus, int mp, std::int64_t batch) {
  JobConfig job;
  job.model.hidden = 4096;
  job.model.heads = 32;
  job.model.layers = std::max<std::int64_t>(
      1,
      static_cast<std::int64_t>(psi_b * 1e9 / (12.0 * 4096.0 * 4096.0)));
  job.gpus = gpus;
  job.mp = mp;
  job.batch_per_gpu = batch;
  return job;
}

TEST(AutoStageTest, SmallModelNeedsNoZero) {
  ClusterSpec cluster;
  const auto rec = RecommendStage(cluster, JobOf(1.0, 64, 1, 4));
  EXPECT_TRUE(rec.fits);
  EXPECT_EQ(rec.stage, model::ZeroStage::kNone);
}

TEST(AutoStageTest, MidModelsPickProgressivelyHigherStages) {
  // The Table 1 ladder at Nd = 64: ~2B baseline limit, ~7.6B for Pos,
  // ~14.4B for Pos+g, beyond that Pos+g+p.
  ClusterSpec cluster;
  EXPECT_EQ(RecommendStage(cluster, JobOf(5.0, 64, 1, 2)).stage,
            model::ZeroStage::kOs);
  EXPECT_EQ(RecommendStage(cluster, JobOf(12.0, 64, 1, 2)).stage,
            model::ZeroStage::kOsG);
  EXPECT_EQ(RecommendStage(cluster, JobOf(40.0, 64, 1, 1)).stage,
            model::ZeroStage::kOsGP);
}

TEST(AutoStageTest, HopelessJobReportsNoFit) {
  ClusterSpec cluster;
  // 1T parameters on 8 GPUs: 2 TB/device even at stage 3.
  const auto rec = RecommendStage(cluster, JobOf(1000.0, 8, 1, 1));
  EXPECT_FALSE(rec.fits);
  EXPECT_EQ(rec.stage, model::ZeroStage::kOsGP);
  EXPECT_GT(rec.memory.total(), cluster.usable_memory());
}

TEST(AutoStageTest, MpLowersTheRequiredStage) {
  ClusterSpec cluster;
  const auto dp_only = RecommendStage(cluster, JobOf(40.0, 256, 1, 1));
  JobConfig with_mp = JobOf(40.0, 256, 16, 1);
  with_mp.pa = true;
  const auto mp16 = RecommendStage(cluster, with_mp);
  EXPECT_TRUE(mp16.fits);
  EXPECT_LT(static_cast<int>(mp16.stage), static_cast<int>(dp_only.stage));
}

}  // namespace
}  // namespace zero::sim
