#include "sim/step_scheduler.hpp"

#include <gtest/gtest.h>

#include "sim/paper_configs.hpp"

namespace zero::sim {
namespace {

TEST(StepSchedulerTest, AgreesWithClosedFormModelOnPaperConfigs) {
  // The event-true schedule and the closed-form cost model are two
  // implementations of the same physics; they must agree to first order
  // on every Figure 2 configuration.
  ClusterSpec cluster;
  for (const PaperRun& run : Figure2Runs()) {
    const JobConfig job = run.ToJob();
    const ThroughputEstimate analytic = EstimateThroughput(cluster, job);
    const ScheduledStep scheduled = ScheduleStep(cluster, job);
    EXPECT_NEAR(scheduled.tflops_per_gpu, analytic.tflops_per_gpu,
                0.35 * analytic.tflops_per_gpu)
        << run.label << (run.is_zero ? " (zero)" : " (base)");
  }
}

TEST(StepSchedulerTest, DpTrafficHiddenBehindLargeCompute) {
  // 100B-class compute swamps gradient traffic: zero exposed DP time.
  ClusterSpec cluster;
  const JobConfig job = Figure2Runs()[10].ToJob();  // 100B ZeRO
  const ScheduledStep s = ScheduleStep(cluster, job);
  EXPECT_GT(s.dp_comm_busy_s, 0.0);
  // Only the last layer's bucket reduce (which nothing can overlap) may
  // leak through — a fraction of a percent of the step.
  EXPECT_LT(s.exposed_dp_s, 0.001 * s.total_s);
}

TEST(StepSchedulerTest, DpTrafficExposedAtTinyCompute) {
  // A small model with a batch of 1 cannot hide its gradient traffic.
  ClusterSpec cluster;
  JobConfig job;
  job.model.layers = 40;
  job.model.hidden = 1536;
  job.model.heads = 16;
  job.gpus = 128;
  job.mp = 1;
  job.stage = model::ZeroStage::kOsG;
  job.batch_per_gpu = 1;
  const ScheduledStep s = ScheduleStep(cluster, job);
  EXPECT_GT(s.exposed_dp_s, 0.0);
}

TEST(StepSchedulerTest, CheckpointingAddsRecomputeTime) {
  ClusterSpec cluster;
  JobConfig job = Figure2Runs()[0].ToJob();  // 1.5B ZeRO, mp 1
  job.activation_checkpointing = true;
  const double with_ckpt = ScheduleStep(cluster, job).compute_busy_s;
  job.activation_checkpointing = false;
  const double without = ScheduleStep(cluster, job).compute_busy_s;
  // Recompute adds ~1 forward pass: compute grows by ~fwd/(fwd+bwd)=1/3.
  EXPECT_NEAR(with_ckpt / without, 4.0 / 3.0, 0.05);
}

TEST(StepSchedulerTest, Stage3FetchesKeepCommEngineBusy) {
  ClusterSpec cluster;
  JobConfig job;
  job.model.layers = 24;
  job.model.hidden = 2048;
  job.model.heads = 16;
  job.gpus = 64;
  job.mp = 1;
  job.batch_per_gpu = 8;
  job.stage = model::ZeroStage::kOsG;
  const double s2_comm = ScheduleStep(cluster, job).dp_comm_busy_s;
  job.stage = model::ZeroStage::kOsGP;
  const double s3_comm = ScheduleStep(cluster, job).dp_comm_busy_s;
  // Stage 3 adds the two parameter-fetch passes: ~1.5x stage-2 traffic
  // minus the dropped parameter all-gather => ratio ~1.5.
  EXPECT_NEAR(s3_comm / s2_comm, 1.5, 0.1);
}

TEST(StepSchedulerTest, PcieEngineOnlyBusyUnderPaCpu) {
  ClusterSpec cluster;
  JobConfig job = Figure8Runs()[0].ToJob();
  job = JobConfig::WithConfigId(job, 4);
  EXPECT_EQ(ScheduleStep(cluster, job).pcie_busy_s, 0.0);
  job = JobConfig::WithConfigId(job, 5);
  const ScheduledStep s = ScheduleStep(cluster, job);
  EXPECT_GT(s.pcie_busy_s, 0.0);
}

TEST(StepSchedulerTest, TimelineIsOrderedAndTruncated) {
  ClusterSpec cluster;
  const JobConfig job = Figure2Runs()[8].ToJob();  // 80B: 100 layers
  const ScheduledStep s = ScheduleStep(cluster, job);
  EXPECT_FALSE(s.timeline.empty());
  // Only first/last 2 layers recorded: << 100 layers * phases.
  EXPECT_LT(s.timeline.size(), 40u);
  for (const PhaseRecord& p : s.timeline) {
    EXPECT_LE(p.start, p.end);
    EXPECT_LE(p.end, s.total_s + 1e-9);
  }
}

TEST(StepSchedulerTest, TotalIsMaxOfEngines) {
  ClusterSpec cluster;
  for (const PaperRun& run : Figure3Runs()) {
    const ScheduledStep s = ScheduleStep(cluster, run.ToJob());
    EXPECT_GE(s.total_s, s.compute_busy_s);
    EXPECT_GE(s.total_s + 1e-12,
              s.compute_busy_s + s.exposed_dp_s);
  }
}

}  // namespace
}  // namespace zero::sim
