#include "sim/netsim.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zero::sim {
namespace {

NetTopology Dgx2Cluster() {
  NetTopology t;
  t.nodes = 4;
  t.gpus_per_node = 16;
  t.nvswitch_port_bw = 150e9;
  t.node_uplink_bw = 100e9;
  t.per_step_latency = 0;  // pure-bandwidth tests
  return t;
}

TEST(NetSimTest, SingleTransferTimeIsBytesOverBandwidth) {
  NetworkSimulator net(Dgx2Cluster());
  // Intra-node: limited by the 150 GB/s NVSwitch port.
  EXPECT_DOUBLE_EQ(net.StepTime({{0, 1, 150e9}}), 1.0);
  // Cross-node: a single flow is capped by one 12.5 GB/s EDR NIC even
  // though the node uplink aggregates to 100 GB/s.
  EXPECT_DOUBLE_EQ(net.StepTime({{0, 16, 12.5e9}}), 1.0);
}

TEST(NetSimTest, FlowsShareTheNodeUplink) {
  NetworkSimulator net(Dgx2Cluster());
  // 16 flows of 6.25 GB each leaving node 0: per-flow NIC time is 0.5 s,
  // but the shared 100 GB/s uplink carries 100 GB total -> 1 s.
  std::vector<Transfer> transfers;
  for (int i = 0; i < 16; ++i) {
    transfers.push_back({i, 16 + i, 6.25e9});
  }
  EXPECT_DOUBLE_EQ(net.StepTime(transfers), 1.0);
  // The same flows inside the node ride separate NVSwitch ports.
  const double intra = net.StepTime({{0, 2, 50e9}, {1, 3, 50e9}});
  EXPECT_NEAR(intra, 50.0 / 150.0, 1e-12);
}

TEST(NetSimTest, SelfTransfersAndZeroBytesAreFree) {
  NetworkSimulator net(Dgx2Cluster());
  EXPECT_DOUBLE_EQ(net.StepTime({{3, 3, 1e9}}), 0.0);
  EXPECT_DOUBLE_EQ(net.StepTime({{0, 1, 0.0}}), 0.0);
}

TEST(NetSimTest, InNodeRingMatchesClosedForm) {
  NetworkSimulator net(Dgx2Cluster());
  const auto ring = ContiguousGroup(0, 16);
  const double bytes = 1e9;
  // Ring all-reduce: 2*(p-1) steps of (bytes/p) over NVSwitch ports.
  const double expected = 2.0 * 15.0 * (bytes / 16.0) / 150e9;
  EXPECT_NEAR(net.RingAllReduce(ring, bytes), expected, 1e-12);
}

TEST(NetSimTest, CrossNodeRingDegradesToUplinkSpeed) {
  // The Sec 10.2 cliff, emergent: a 32-member ring spanning two nodes is
  // throttled by the two edges crossing the boundary.
  NetworkSimulator net(Dgx2Cluster());
  const double bytes = 1e9;
  const double in_node =
      net.AllReduceBusBandwidth(ContiguousGroup(0, 16), bytes);
  const double cross_node =
      net.AllReduceBusBandwidth(ContiguousGroup(0, 32), bytes);
  EXPECT_NEAR(in_node, 150e9, 1e9);
  // Limited by the single NIC the boundary-crossing ring edge rides:
  // the paper's 300 GB/s -> 12.5 GB/s per-link collapse.
  EXPECT_NEAR(cross_node, 12.5e9, 0.5e9);
  EXPECT_GT(in_node / cross_node, 10.0);
}

TEST(NetSimTest, ManyConcurrentDpRingsDivideTheUplink) {
  // 16 DP rings (one per MP rank) all cross nodes at once: each node's
  // uplink carries 16 chunks per step -> per-ring bandwidth drops to the
  // uplink divided by 16 — the 6.25 GB/s per-GPU DP share the cost
  // model assumes. (A single ring is NIC-bound at 12.5 GB/s, so the
  // slowdown factor from contention is 2x, not 16x.)
  NetworkSimulator net(Dgx2Cluster());
  const double bytes = 1e9;
  std::vector<std::vector<int>> rings;
  for (int column = 0; column < 16; ++column) {
    rings.push_back(StridedGroup(column, 16, 4));  // 4 nodes
  }
  const double t_all = net.ConcurrentRingAllReduce(rings, bytes);
  const double t_one = net.RingAllReduce(rings[0], bytes);
  EXPECT_NEAR(t_all / t_one, 2.0, 0.01);  // 12.5 -> 6.25 GB/s per ring
  const double per_ring = 2.0 * 3.0 / 4.0 * bytes / t_all;
  EXPECT_NEAR(per_ring, 6.25e9, 0.2e9);
}

TEST(NetSimTest, LatencyTermScalesWithSteps) {
  NetTopology topo = Dgx2Cluster();
  topo.per_step_latency = 1e-3;
  NetworkSimulator net(topo);
  const auto ring = ContiguousGroup(0, 8);
  const double tiny = net.RingAllReduce(ring, 8.0);  // bandwidth ~ 0
  EXPECT_NEAR(tiny, 2.0 * 7.0 * 1e-3, 1e-6);
}

TEST(NetSimTest, BroadcastCheaperThanAllReduce) {
  NetworkSimulator net(Dgx2Cluster());
  const auto ring = ContiguousGroup(0, 16);
  EXPECT_LT(net.RingBroadcast(ring, 1e9), net.RingAllReduce(ring, 1e9));
}

TEST(NetSimTest, RejectsBadInput) {
  NetworkSimulator net(Dgx2Cluster());
  EXPECT_THROW((void)net.StepTime({{0, 9999, 1.0}}), Error);
  NetTopology bad;
  bad.nodes = 0;
  EXPECT_THROW(NetworkSimulator{bad}, Error);
}

TEST(NetSimTest, GroupHelpers) {
  EXPECT_EQ(ContiguousGroup(16, 3), (std::vector<int>{16, 17, 18}));
  EXPECT_EQ(StridedGroup(2, 16, 3), (std::vector<int>{2, 18, 34}));
}

TEST(NetSimTest, MatchesCostModelCliffAssumptions) {
  // The analytic cost model assumes intra 150 GB/s and inter 12.5 GB/s
  // per-link MP bandwidth. The simulated per-rank bandwidth of an
  // in-node ring is the NVSwitch port; a 2-node ring's slowest edge is
  // the uplink shared by one flow in each direction — the same order as
  // the assumed IB link speed.
  NetTopology topo = Dgx2Cluster();
  topo.node_uplink_bw = 12.5e9;  // one EDR link per node
  NetworkSimulator net(topo);
  const double cross =
      net.AllReduceBusBandwidth(ContiguousGroup(0, 32), 1e9);
  EXPECT_NEAR(cross, 12.5e9, 0.5e9);
}

}  // namespace
}  // namespace zero::sim
