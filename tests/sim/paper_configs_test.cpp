// Consistency checks on the transcribed appendix tables: every run's
// (layers, hidden) must produce the parameter count its label claims,
// and the GPU/MP/batch columns must satisfy the constraints the appendix
// states (hidden divisible by heads, heads divisible by MP, GPUs
// divisible by MP). Guards against transcription errors in
// paper_configs.cpp silently skewing every figure.
#include "sim/paper_configs.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zero::sim {
namespace {

void CheckRun(const PaperRun& run, double tolerance) {
  const JobConfig job = run.ToJob();
  // Parameter count matches the label (the paper rounds model names, so
  // allow the stated tolerance).
  const double psi = static_cast<double>(job.psi());
  EXPECT_NEAR(psi, run.psi_nominal, tolerance * run.psi_nominal)
      << run.label << ": " << run.layers << "x" << run.hidden;
  // Structural constraints from the appendix text.
  EXPECT_EQ(run.gpus % run.mp, 0) << run.label;
  EXPECT_EQ(run.hidden % run.heads, 0) << run.label;
  EXPECT_EQ(run.heads % run.mp, 0) << run.label;
  EXPECT_GE(run.batch_per_gpu, 1) << run.label;
}

TEST(PaperConfigsTest, Figure2RunsMatchTheirLabels) {
  for (const PaperRun& run : Figure2Runs()) CheckRun(run, 0.12);
}

TEST(PaperConfigsTest, Figure3RunsMatchTheirLabels) {
  // Table 6's "60B" at 75 layers x 8192 computes to ~60.8B.
  for (const PaperRun& run : Figure3Runs()) CheckRun(run, 0.05);
}

TEST(PaperConfigsTest, Figure4RunsMatchTheirLabels) {
  for (const PaperRun& run : Figure4Runs()) CheckRun(run, 0.20);
}

TEST(PaperConfigsTest, Figure7And8RunsMatchTheirLabels) {
  for (const PaperRun& run : Figure7Runs()) CheckRun(run, 0.05);
  for (const PaperRun& run : Figure8Runs()) CheckRun(run, 0.05);
}

TEST(PaperConfigsTest, Figure2PairsZeroThenBaseline) {
  const auto& runs = Figure2Runs();
  ASSERT_EQ(runs.size() % 2, 0u);
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    EXPECT_TRUE(runs[i].is_zero) << i;
    EXPECT_FALSE(runs[i + 1].is_zero) << i;
    EXPECT_EQ(runs[i].label, runs[i + 1].label) << i;
    // Same model shape on both sides of a pair.
    EXPECT_EQ(runs[i].layers, runs[i + 1].layers) << i;
    EXPECT_EQ(runs[i].hidden, runs[i + 1].hidden) << i;
  }
}

TEST(PaperConfigsTest, ZeroRunsUseZeRO100BConfiguration) {
  // Sec 10.1: ZeRO-100B = Pos+g of ZeRO-DP plus ZeRO-R.
  for (const PaperRun& run : Figure2Runs()) {
    const JobConfig job = run.ToJob();
    if (run.is_zero) {
      EXPECT_EQ(job.stage, model::ZeroStage::kOsG) << run.label;
      EXPECT_TRUE(job.constant_buffers) << run.label;
      EXPECT_TRUE(job.defrag) << run.label;
      EXPECT_EQ(job.pa, run.mp > 1) << run.label;
    } else {
      EXPECT_EQ(job.stage, model::ZeroStage::kNone) << run.label;
      EXPECT_FALSE(job.pa) << run.label;
    }
  }
}

TEST(PaperConfigsTest, ConfigIdsMapTable3Exactly) {
  JobConfig base;
  base.gpus = 128;
  base.mp = 16;
  const struct {
    int id;
    model::ZeroStage stage;
    bool pa, cpu;
  } rows[] = {
      {1, model::ZeroStage::kOs, false, false},
      {2, model::ZeroStage::kOs, true, false},
      {3, model::ZeroStage::kOsG, false, false},
      {4, model::ZeroStage::kOsG, true, false},
      {5, model::ZeroStage::kOsG, true, true},
  };
  for (const auto& row : rows) {
    const JobConfig job = JobConfig::WithConfigId(base, row.id);
    EXPECT_EQ(job.stage, row.stage) << "C" << row.id;
    EXPECT_EQ(job.pa, row.pa) << "C" << row.id;
    EXPECT_EQ(job.pa_cpu, row.cpu) << "C" << row.id;
    EXPECT_TRUE(job.constant_buffers && job.defrag) << "C" << row.id;
  }
  EXPECT_THROW((void)JobConfig::WithConfigId(base, 6), zero::Error);
}

}  // namespace
}  // namespace zero::sim
