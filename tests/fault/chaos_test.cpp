// Chaos soak: randomized, seeded fault schedules against the full
// trainer across ZeRO stages 0-3. The invariants are liveness and
// truthfulness, not success: every run must terminate within its
// deadline budget (no deadlock, no stranded thread — the TSan CI job
// runs this too), and a killed run must say so in TrainResult. Each
// schedule derives deterministically from its seed, so a failure
// reproduces by exporting ZERO_CHAOS_SEEDS=<seed>.
#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/trainer.hpp"
#include "fault/fault_plan.hpp"

namespace zero::fault {
namespace {

std::vector<std::uint64_t> ChaosSeeds() {
  std::vector<std::uint64_t> seeds;
  if (const char* env = std::getenv("ZERO_CHAOS_SEEDS")) {
    std::stringstream ss(env);
    std::string item;
    while (std::getline(ss, item, ',')) {
      if (!item.empty()) seeds.push_back(std::stoull(item));
    }
  }
  if (seeds.empty()) seeds = {11, 23, 37, 53};
  return seeds;
}

// A small random schedule: 1-2 rules drawn from every fault kind, with
// durations kept well under the comm deadline so stragglers are never
// misdiagnosed as deaths.
std::string MakeChaosSpec(std::uint64_t seed, int nd) {
  Rng rng(seed);
  const char* kSites[] = {"step", "collective", "barrier"};
  std::ostringstream spec;
  spec << "seed=" << seed;
  const int rules = 1 + static_cast<int>(rng.NextBelow(2));
  for (int i = 0; i < rules; ++i) {
    const int rank = static_cast<int>(rng.NextBelow(static_cast<std::uint64_t>(nd)));
    switch (rng.NextBelow(6)) {
      case 0:
        spec << ";crash@" << rank << ':' << kSites[rng.NextBelow(3)] << '#'
             << (1 + rng.NextBelow(6));
        break;
      case 1:
        spec << ";hang@" << rank << ':' << kSites[rng.NextBelow(3)] << '#'
             << (1 + rng.NextBelow(6)) << "=10s";
        break;
      case 2:
        spec << ";slow@" << rank << ":step=" << (1 + rng.NextBelow(5)) << "ms";
        break;
      case 3:
        spec << ";drop@" << rank << '#' << (1 + rng.NextBelow(30));
        break;
      case 4:
        spec << ";delay@" << rank << "=" << (1 + rng.NextBelow(3)) << "ms%0.2";
        break;
      default:
        spec << ";dup@" << rank << '#' << (1 + rng.NextBelow(30));
        break;
    }
  }
  return spec.str();
}

core::TrainResult RunChaos(const std::string& spec, int stage_index) {
  core::TrainOptions opts;
  opts.model.vocab = 13;
  opts.model.seq = 4;
  opts.model.hidden = 8;
  opts.model.layers = 1;
  opts.model.heads = 2;
  opts.engine.stage = static_cast<model::ZeroStage>(stage_index);
  opts.engine.fp16 = true;
  opts.engine.loss_scale = 64.0f;
  opts.engine.fault_spec = spec;
  opts.engine.comm_deadline_ms = 60;
  opts.cluster.dp_degree = 3;
  opts.batch_per_rank = 1;
  opts.steps = 4;
  opts.seed = 5;
  return core::TrainGpt(opts);
}

TEST(ChaosTest, SeededSchedulesTerminateAndReplayIdentically) {
  const std::vector<std::uint64_t> seeds = ChaosSeeds();
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const std::uint64_t seed = seeds[i];
    // Sweep the stage with the seed so the default set covers 0-3.
    const int stage = static_cast<int>((seed + i) % 4);
    const std::string spec = MakeChaosSpec(seed, /*nd=*/3);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " stage=" +
                 std::to_string(stage) + " spec=" + spec);

    // Liveness: both calls return (a deadlock here hangs the suite and
    // trips the CI timeout). Truthfulness: a killed run reports failed
    // with a populated message; a surviving run reports losses.
    const core::TrainResult first = RunChaos(spec, stage);
    if (first.failed) {
      EXPECT_FALSE(first.failure_message.empty());
      EXPECT_TRUE(first.losses.empty());
    } else {
      EXPECT_EQ(first.losses.size(), 4u);
    }

    // Deterministic replay: the same seed kills (or spares) the run the
    // same way.
    const core::TrainResult again = RunChaos(spec, stage);
    EXPECT_EQ(first.failed, again.failed);
  }
}

}  // namespace
}  // namespace zero::fault
