#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/error.hpp"
#include "fault/injector.hpp"

namespace zero::fault {
namespace {

TEST(FaultPlanTest, ParsesFullGrammar) {
  const FaultPlan plan =
      FaultPlan::Parse("seed=7;crash@1:step#6;drop@0%0.25;slow@2:collective=5ms;"
                       "delay@3=250us%0.5;dup@1#10;hang@0:barrier");
  EXPECT_EQ(plan.seed, 7u);
  ASSERT_EQ(plan.rules.size(), 6u);

  EXPECT_EQ(plan.rules[0].kind, FaultKind::kCrash);
  EXPECT_EQ(plan.rules[0].rank, 1);
  EXPECT_EQ(plan.rules[0].site, "step");
  EXPECT_EQ(plan.rules[0].occurrence, 6u);
  EXPECT_EQ(plan.rules[0].probability, 1.0);

  EXPECT_EQ(plan.rules[1].kind, FaultKind::kDrop);
  EXPECT_EQ(plan.rules[1].rank, 0);
  EXPECT_EQ(plan.rules[1].probability, 0.25);

  EXPECT_EQ(plan.rules[2].kind, FaultKind::kSlow);
  EXPECT_EQ(plan.rules[2].duration_ns, 5u * 1000 * 1000);

  EXPECT_EQ(plan.rules[3].kind, FaultKind::kDelay);
  EXPECT_EQ(plan.rules[3].duration_ns, 250u * 1000);
  EXPECT_EQ(plan.rules[3].probability, 0.5);

  EXPECT_EQ(plan.rules[4].kind, FaultKind::kDup);
  EXPECT_EQ(plan.rules[4].occurrence, 10u);

  EXPECT_EQ(plan.rules[5].kind, FaultKind::kHang);
  EXPECT_EQ(plan.rules[5].site, "barrier");
}

TEST(FaultPlanTest, BareDurationIsMilliseconds) {
  const FaultPlan plan = FaultPlan::Parse("slow@0=2");
  EXPECT_EQ(plan.rules[0].duration_ns, 2u * 1000 * 1000);
}

TEST(FaultPlanTest, EmptySpecYieldsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::Parse("").empty());
  EXPECT_TRUE(FaultPlan::Parse("  ;  ").empty());
}

TEST(FaultPlanTest, SpecRoundTripsThroughToSpec) {
  const std::string spec = "seed=11;crash@1:step#6;drop@0%0.25";
  const FaultPlan plan = FaultPlan::Parse(spec);
  const FaultPlan again = FaultPlan::Parse(plan.ToSpec());
  EXPECT_EQ(again.seed, plan.seed);
  ASSERT_EQ(again.rules.size(), plan.rules.size());
  for (std::size_t i = 0; i < plan.rules.size(); ++i) {
    EXPECT_EQ(again.rules[i].kind, plan.rules[i].kind);
    EXPECT_EQ(again.rules[i].rank, plan.rules[i].rank);
    EXPECT_EQ(again.rules[i].site, plan.rules[i].site);
    EXPECT_EQ(again.rules[i].occurrence, plan.rules[i].occurrence);
    EXPECT_EQ(again.rules[i].probability, plan.rules[i].probability);
    EXPECT_EQ(again.rules[i].duration_ns, plan.rules[i].duration_ns);
  }
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::Parse("explode@0"), Error);       // unknown kind
  EXPECT_THROW(FaultPlan::Parse("crash"), Error);           // no rank
  EXPECT_THROW(FaultPlan::Parse("crash@x"), Error);         // bad rank
  EXPECT_THROW(FaultPlan::Parse("crash@0%1.5"), Error);     // bad probability
  EXPECT_THROW(FaultPlan::Parse("slow@0=5lightyears"), Error);  // bad unit
  EXPECT_THROW(FaultPlan::Parse("drop@0:step"), Error);     // site on send fault
  EXPECT_THROW(FaultPlan::Parse("seed=abc;crash@0"), Error);
}

TEST(FaultInjectorTest, ExactOccurrenceFiresExactlyOnce) {
  FaultInjector injector(FaultPlan::Parse("dup@0#3"), /*world_size=*/2);
  for (int i = 0; i < 10; ++i) {
    const comm::FaultSendVerdict v = injector.OnSend(0, 1, 0, 16);
    EXPECT_EQ(v.duplicates, i == 2 ? 1 : 0) << "send " << i;
  }
  EXPECT_EQ(injector.InjectedCount(FaultKind::kDup), 1u);
}

TEST(FaultInjectorTest, ProbabilityDrawsAreDeterministic) {
  const FaultPlan plan = FaultPlan::Parse("seed=5;drop@0%0.3");
  std::vector<bool> first, second;
  for (int run = 0; run < 2; ++run) {
    FaultInjector injector(plan, 2);
    std::vector<bool>& out = run == 0 ? first : second;
    for (int i = 0; i < 200; ++i) {
      out.push_back(injector.OnSend(0, 1, 0, 16).drop);
    }
  }
  EXPECT_EQ(first, second);
  // Roughly 30% of 200 draws should fire; determinism is the real claim,
  // the bounds only catch an all-or-nothing bug.
  const std::size_t fired =
      static_cast<std::size_t>(std::count(first.begin(), first.end(), true));
  EXPECT_GT(fired, 30u);
  EXPECT_LT(fired, 110u);
}

TEST(FaultInjectorTest, RulesOnlyFireForTheirRank) {
  FaultInjector injector(FaultPlan::Parse("drop@1"), 2);
  EXPECT_FALSE(injector.OnSend(0, 1, 0, 16).drop);
  EXPECT_TRUE(injector.OnSend(1, 0, 0, 16).drop);
  // Point rules never react to send triggers and vice versa.
  injector.AtPoint(1, "step");
  EXPECT_EQ(injector.InjectedCount(FaultKind::kCrash), 0u);
}

TEST(FaultInjectorTest, CrashRuleThrowsInjectedFaultError) {
  FaultInjector injector(FaultPlan::Parse("crash@0:step#2"), 1);
  injector.AtPoint(0, "step");                       // occurrence 1
  injector.AtPoint(0, "collective");                 // wrong site
  EXPECT_THROW(injector.AtPoint(0, "step"), InjectedFaultError);
  EXPECT_GT(injector.FirstLethalNs(), 0u);
  // Consumed: the same rule does not re-fire after a restart replays.
  injector.AtPoint(0, "step");
}

}  // namespace
}  // namespace zero::fault
