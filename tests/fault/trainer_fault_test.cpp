// Trainer-level fault wiring: periodic elastic checkpoints, the
// ZERO_FAULT/fault_spec injection path, and failure reporting in
// TrainResult.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/state_checkpoint.hpp"
#include "core/trainer.hpp"

namespace zero::core {
namespace {

TrainOptions SmallOptions() {
  TrainOptions opts;
  opts.model.vocab = 13;
  opts.model.seq = 4;
  opts.model.hidden = 8;
  opts.model.layers = 1;
  opts.model.heads = 2;
  opts.engine.stage = model::ZeroStage::kOsG;
  opts.engine.fp16 = true;
  opts.engine.loss_scale = 64.0f;
  opts.cluster.dp_degree = 2;
  opts.batch_per_rank = 1;
  opts.steps = 4;
  opts.seed = 9;
  return opts;
}

TEST(TrainerFaultTest, PeriodicCheckpointingWritesElasticState) {
  const std::string path = testing::TempDir() + "zero_trainer_ckpt.bin";
  TrainOptions opts = SmallOptions();
  opts.engine.checkpoint_every_n_steps = 2;
  opts.engine.checkpoint_path = path;

  const TrainResult result = TrainGpt(opts);
  ASSERT_FALSE(result.failed) << result.failure_message;
  ASSERT_EQ(result.losses.size(), 4u);

  const TrainingState state = TrainingState::LoadFromFile(path);
  EXPECT_EQ(state.step_count, 4);  // latest-wins: the step-4 snapshot
  EXPECT_GT(state.total_numel, 0);
  EXPECT_EQ(state.master.size(), state.momentum.size());
  std::remove(path.c_str());
}

TEST(TrainerFaultTest, InjectedCrashIsReportedNotThrown) {
  TrainOptions opts = SmallOptions();
  opts.engine.fault_spec = "crash@1:step#2";
  opts.engine.comm_deadline_ms = 100;

  const TrainResult result = TrainGpt(opts);
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.failure_message.find("injected crash"), std::string::npos)
      << result.failure_message;
  EXPECT_TRUE(result.losses.empty());
}

TEST(TrainerFaultTest, HangIsDetectedAndReported) {
  TrainOptions opts = SmallOptions();
  opts.engine.fault_spec = "hang@0:collective#4=10s";
  opts.engine.comm_deadline_ms = 50;

  const TrainResult result = TrainGpt(opts);
  EXPECT_TRUE(result.failed);
  EXPECT_FALSE(result.failure_message.empty());
}

TEST(TrainerFaultTest, EnvSpecDrivesInjection) {
  ASSERT_EQ(setenv("ZERO_FAULT", "crash@0:step#1", 1), 0);
  TrainOptions opts = SmallOptions();
  opts.engine.comm_deadline_ms = 100;
  const TrainResult result = TrainGpt(opts);
  unsetenv("ZERO_FAULT");
  EXPECT_TRUE(result.failed);
  EXPECT_NE(result.failure_message.find("injected crash"), std::string::npos);
}

TEST(TrainerFaultTest, ExplicitSpecWinsOverEnvironment) {
  // Env says crash; the explicit spec schedules only a benign straggler.
  ASSERT_EQ(setenv("ZERO_FAULT", "crash@0:step#1", 1), 0);
  TrainOptions opts = SmallOptions();
  opts.engine.fault_spec = "slow@0:step=1ms";
  opts.engine.comm_deadline_ms = 100;
  const TrainResult result = TrainGpt(opts);
  unsetenv("ZERO_FAULT");
  EXPECT_FALSE(result.failed) << result.failure_message;
  EXPECT_EQ(result.losses.size(), 4u);
}

TEST(TrainerFaultTest, RunWithoutFaultConfigIsUnchanged) {
  const TrainResult result = TrainGpt(SmallOptions());
  EXPECT_FALSE(result.failed);
  EXPECT_EQ(result.losses.size(), 4u);
}

}  // namespace
}  // namespace zero::core
