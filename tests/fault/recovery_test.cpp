// End-to-end recovery: a rank crashes mid-run, the coordinator reforms
// the world, re-partitions the last elastic checkpoint, and resumes.
// With the restart-rank policy the replayed trajectory must be
// BIT-EXACT: the recovered fp32 master parameters (and Adam moments)
// equal an uninterrupted run's at every ZeRO stage.
#include "fault/recovery.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <mutex>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "fault/injector.hpp"
#include "model/quad_model.hpp"

namespace zero::fault {
namespace {

using comm::Communicator;
using comm::RankContext;
using comm::World;
using core::EngineConfig;
using core::TrainingState;
using core::ZeroDpEngine;
using model::ZeroStage;

constexpr std::int64_t kNumel = 131;  // prime: exercises partition padding
constexpr int kUnits = 5;
constexpr int kSteps = 8;
constexpr int kCheckpointEvery = 2;
constexpr std::uint64_t kSeed = 42;

model::Batch RankBatch(int rank, int step) {
  model::Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

EngineConfig MakeConfig(ZeroStage stage) {
  EngineConfig cfg;
  cfg.stage = stage;
  cfg.fp16 = true;
  cfg.loss_scale = 64.0f;  // static: bit-exact replay needs a fixed scale
  cfg.adam.lr = 0.01f;
  cfg.bucket_elems = 16;
  return cfg;
}

// Runs `steps` uninterrupted at `nd` and returns the final serialized
// TrainingState.
std::vector<std::byte> UninterruptedFinalState(ZeroStage stage, int nd) {
  std::vector<std::byte> final_state;
  std::mutex mu;
  World world(nd);
  world.Run([&](RankContext& ctx) {
    Communicator dp = Communicator::WholeWorld(ctx);
    model::QuadModel m(kNumel, kUnits);
    ZeroDpEngine engine(MakeConfig(stage), m, dp, nullptr, kSeed);
    for (int s = 0; s < kSteps; ++s) {
      (void)engine.TrainStep(RankBatch(ctx.rank, s));
    }
    TrainingState st = engine.ExportState();
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      final_state = st.Serialize();
    }
  });
  return final_state;
}

// The shared rank body: build the engine, import the resume state if
// any, skip the already-completed steps, checkpoint every
// kCheckpointEvery applied steps.
RecoveryCoordinator::RankBody MakeBody(ZeroStage stage,
                                       RecoveryCoordinator& coordinator) {
  return [stage, &coordinator](RankContext& ctx, const AttemptContext& at) {
    Communicator dp = Communicator::WholeWorld(ctx);
    model::QuadModel m(kNumel, kUnits);
    ZeroDpEngine engine(MakeConfig(stage), m, dp, nullptr, kSeed);
    if (at.resume_state != nullptr) {
      engine.ImportState(TrainingState::Deserialize(*at.resume_state));
    }
    // Data-schedule resync: batches are a pure function of (rank, step),
    // so resuming at resume_step replays exactly the batches the
    // uninterrupted run would have consumed.
    for (int s = static_cast<int>(at.resume_step); s < kSteps; ++s) {
      (void)engine.TrainStep(RankBatch(ctx.rank, s));
      if ((s + 1) % kCheckpointEvery == 0) {
        TrainingState st = engine.ExportState();
        if (ctx.rank == 0) coordinator.vault().Store(s + 1, st.Serialize());
      }
    }
  };
}

class RecoveryStageTest : public ::testing::TestWithParam<ZeroStage> {};

TEST_P(RecoveryStageTest, RestartRankRecoveryIsBitExact) {
  const ZeroStage stage = GetParam();
  const int nd = 2;
  const std::vector<std::byte> expected = UninterruptedFinalState(stage, nd);

  // Rank 1 dies entering its 6th step (after 5 applied updates); the
  // last checkpoint then holds 4 steps, so the replay re-runs steps 4-7.
  FaultInjector injector(FaultPlan::Parse("crash@1:step#6"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 3;
  opts.policy = RestartPolicy::kRestartRank;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report =
      coordinator.Train(MakeBody(stage, coordinator));

  ASSERT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.history.size(), 2u);
  EXPECT_FALSE(report.history[0].ok);
  EXPECT_EQ(report.history[0].failed_ranks, std::vector<int>{1});
  EXPECT_EQ(report.history[1].resume_step, 4);
  EXPECT_TRUE(report.history[1].ok);
  EXPECT_EQ(report.final_world_size, nd);
  EXPECT_EQ(injector.InjectedCount(FaultKind::kCrash), 1u);

  ASSERT_EQ(coordinator.vault().LatestStep(), kSteps);
  EXPECT_EQ(coordinator.vault().LatestBytes(), expected)
      << "recovered master state diverged from the uninterrupted run";
}

INSTANTIATE_TEST_SUITE_P(AllStages, RecoveryStageTest,
                         ::testing::Values(ZeroStage::kNone, ZeroStage::kOs,
                                           ZeroStage::kOsG,
                                           ZeroStage::kOsGP));

// A crash before the first checkpoint restarts from scratch — still
// bit-exact, with resume_step 0 on the retry.
TEST(RecoveryTest, CrashBeforeFirstCheckpointRestartsFromScratch) {
  const ZeroStage stage = ZeroStage::kOsG;
  const int nd = 2;
  const std::vector<std::byte> expected = UninterruptedFinalState(stage, nd);

  FaultInjector injector(FaultPlan::Parse("crash@0:step#1"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 3;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report =
      coordinator.Train(MakeBody(stage, coordinator));
  ASSERT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.history[1].resume_step, 0);
  EXPECT_EQ(coordinator.vault().LatestBytes(), expected);
}

// Elastic shrink: the survivors re-partition the checkpoint at Nd' =
// Nd - 1 and finish the run. The data schedule changes with Nd, so this
// is equivalence-of-protocol, not bit-exactness.
TEST(RecoveryTest, ShrinkToSurvivorsFinishesAtSmallerWorld) {
  const ZeroStage stage = ZeroStage::kOsGP;
  const int nd = 4;

  FaultInjector injector(FaultPlan::Parse("crash@2:step#4"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 3;
  opts.policy = RestartPolicy::kShrinkToSurvivors;
  opts.min_world_size = 2;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report =
      coordinator.Train(MakeBody(stage, coordinator));

  ASSERT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.final_world_size, nd - 1);
  EXPECT_EQ(report.history[1].world_size, nd - 1);
  EXPECT_EQ(report.history[1].resume_step, 2);  // checkpoints at 2,4,6,8
  ASSERT_EQ(coordinator.vault().LatestStep(), kSteps);

  // The resumed state is sane: right shape, finite parameters, and the
  // step clock reflects the full run.
  const TrainingState final_state =
      TrainingState::Deserialize(coordinator.vault().LatestBytes());
  EXPECT_EQ(final_state.step_count, kSteps);
  for (float v : final_state.master) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

// Budget exhaustion: a crash rule that fires on every attempt leaves a
// truthful failure report instead of looping forever.
TEST(RecoveryTest, GivesUpAfterMaxAttempts) {
  const int nd = 2;
  // occurrence 0 = every match: rank 0 dies at its first step of every
  // attempt (the counter keeps matching).
  FaultInjector injector(FaultPlan::Parse("crash@0:step"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 2;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report =
      coordinator.Train(MakeBody(ZeroStage::kOs, coordinator));
  EXPECT_FALSE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.failures(), 2);
  for (const AttemptInfo& a : report.history) {
    EXPECT_NE(a.error.find("injected crash"), std::string::npos) << a.error;
  }
}

}  // namespace
}  // namespace zero::fault
