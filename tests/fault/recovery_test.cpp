// End-to-end recovery: a rank crashes mid-run, the coordinator reforms
// the world, re-partitions the last elastic checkpoint, and resumes.
// With the restart-rank policy the replayed trajectory must be
// BIT-EXACT: the recovered fp32 master parameters (and Adam moments)
// equal an uninterrupted run's at every ZeRO stage.
#include "fault/recovery.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "fault/injector.hpp"
#include "model/quad_model.hpp"

namespace zero::fault {
namespace {

using comm::Communicator;
using comm::RankContext;
using comm::World;
using core::EngineConfig;
using core::TrainingState;
using core::ZeroDpEngine;
using model::ZeroStage;

constexpr std::int64_t kNumel = 131;  // prime: exercises partition padding
constexpr int kUnits = 5;
constexpr int kSteps = 8;
constexpr int kCheckpointEvery = 2;
constexpr std::uint64_t kSeed = 42;

model::Batch RankBatch(int rank, int step) {
  model::Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

EngineConfig MakeConfig(ZeroStage stage) {
  EngineConfig cfg;
  cfg.stage = stage;
  cfg.fp16 = true;
  cfg.loss_scale = 64.0f;  // static: bit-exact replay needs a fixed scale
  cfg.adam.lr = 0.01f;
  cfg.bucket_elems = 16;
  return cfg;
}

// Runs `steps` uninterrupted at `nd` and returns the final serialized
// TrainingState.
std::vector<std::byte> UninterruptedFinalState(const EngineConfig& cfg,
                                               int nd) {
  std::vector<std::byte> final_state;
  std::mutex mu;
  World world(nd);
  world.Run([&](RankContext& ctx) {
    Communicator dp = Communicator::WholeWorld(ctx);
    model::QuadModel m(kNumel, kUnits);
    ZeroDpEngine engine(cfg, m, dp, nullptr, kSeed);
    for (int s = 0; s < kSteps; ++s) {
      (void)engine.TrainStep(RankBatch(ctx.rank, s));
    }
    TrainingState st = engine.ExportState();
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      final_state = st.Serialize();
    }
  });
  return final_state;
}

std::vector<std::byte> UninterruptedFinalState(ZeroStage stage, int nd) {
  return UninterruptedFinalState(MakeConfig(stage), nd);
}

// The shared rank body: build the engine, import the resume state if
// any, skip the already-completed steps, checkpoint every
// kCheckpointEvery applied steps.
RecoveryCoordinator::RankBody MakeBody(const EngineConfig& cfg,
                                       RecoveryCoordinator& coordinator) {
  return [cfg, &coordinator](RankContext& ctx, const AttemptContext& at) {
    Communicator dp = Communicator::WholeWorld(ctx);
    model::QuadModel m(kNumel, kUnits);
    ZeroDpEngine engine(cfg, m, dp, nullptr, kSeed);
    if (at.resume_state != nullptr) {
      engine.ImportState(TrainingState::Deserialize(*at.resume_state));
    }
    // Data-schedule resync: batches are a pure function of (rank, step),
    // so resuming at resume_step replays exactly the batches the
    // uninterrupted run would have consumed.
    for (int s = static_cast<int>(at.resume_step); s < kSteps; ++s) {
      (void)engine.TrainStep(RankBatch(ctx.rank, s));
      if ((s + 1) % kCheckpointEvery == 0) {
        TrainingState st = engine.ExportState();
        if (ctx.rank == 0) coordinator.vault().Store(s + 1, st.Serialize());
      }
    }
  };
}

RecoveryCoordinator::RankBody MakeBody(ZeroStage stage,
                                       RecoveryCoordinator& coordinator) {
  return MakeBody(MakeConfig(stage), coordinator);
}

class RecoveryStageTest : public ::testing::TestWithParam<ZeroStage> {};

TEST_P(RecoveryStageTest, RestartRankRecoveryIsBitExact) {
  const ZeroStage stage = GetParam();
  const int nd = 2;
  const std::vector<std::byte> expected = UninterruptedFinalState(stage, nd);

  // Rank 1 dies entering its 6th step (after 5 applied updates); the
  // last checkpoint then holds 4 steps, so the replay re-runs steps 4-7.
  FaultInjector injector(FaultPlan::Parse("crash@1:step#6"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 3;
  opts.policy = RestartPolicy::kRestartRank;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report =
      coordinator.Train(MakeBody(stage, coordinator));

  ASSERT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(report.history.size(), 2u);
  EXPECT_FALSE(report.history[0].ok);
  EXPECT_EQ(report.history[0].failed_ranks, std::vector<int>{1});
  EXPECT_EQ(report.history[1].resume_step, 4);
  EXPECT_TRUE(report.history[1].ok);
  EXPECT_EQ(report.final_world_size, nd);
  EXPECT_EQ(injector.InjectedCount(FaultKind::kCrash), 1u);

  ASSERT_EQ(coordinator.vault().LatestStep(), kSteps);
  EXPECT_EQ(coordinator.vault().LatestBytes(), expected)
      << "recovered master state diverged from the uninterrupted run";
}

INSTANTIATE_TEST_SUITE_P(AllStages, RecoveryStageTest,
                         ::testing::Values(ZeroStage::kNone, ZeroStage::kOs,
                                           ZeroStage::kOsG,
                                           ZeroStage::kOsGP));

// Bit-exact recovery under *dynamic* loss scaling: the v2 checkpoint
// carries the scaler's growth countdown, so the resumed run doubles the
// scale on exactly the same steps as the uninterrupted one. With
// growth_interval=3 over 8 steps the scale grows at steps 3 and 6 —
// the crash at step 6 resumes from the step-4 checkpoint with the
// countdown at 1, and a scaler that restarted its countdown would grow
// at the wrong step and diverge the fp16 rounding.
TEST(RecoveryTest, DynamicLossScaleRecoveryIsBitExact) {
  const int nd = 2;
  EngineConfig cfg = MakeConfig(ZeroStage::kOsGP);
  cfg.dynamic_loss_scale = true;
  cfg.scaler.init_scale = 64.0f;
  cfg.scaler.growth_interval = 3;
  const std::vector<std::byte> expected = UninterruptedFinalState(cfg, nd);
  // The uninterrupted run must actually exercise growth for this test
  // to prove anything.
  EXPECT_NE(TrainingState::Deserialize(expected).loss_scale, 64.0f);
  EXPECT_EQ(TrainingState::Deserialize(expected).scaler_good, kSteps);

  FaultInjector injector(FaultPlan::Parse("crash@1:step#6"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 3;
  opts.policy = RestartPolicy::kRestartRank;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report = coordinator.Train(MakeBody(cfg, coordinator));

  ASSERT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  ASSERT_EQ(coordinator.vault().LatestStep(), kSteps);
  EXPECT_EQ(coordinator.vault().LatestBytes(), expected)
      << "dynamic-scale recovery diverged from the uninterrupted run";
}

// A v1 (40-byte header) checkpoint still deserializes, with the scaler
// control-loop fields defaulted.
TEST(RecoveryTest, V1CheckpointStillLoads) {
  TrainingState st;
  st.total_numel = 3;
  st.step_count = 7;
  st.loss_scale = 128.0f;
  st.scaler_steps_since_backoff = 2;
  st.master = {1.0f, 2.0f, 3.0f};
  st.momentum = {0.1f, 0.2f, 0.3f};
  st.variance = {0.01f, 0.02f, 0.03f};
  std::vector<std::byte> bytes = st.Serialize();
  // Rewrite as v1: stamp version=1 and splice out the 24 v2 header
  // bytes (offsets 40..63).
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, sizeof(v1));
  bytes.erase(bytes.begin() + 40, bytes.begin() + 64);
  const TrainingState loaded = TrainingState::Deserialize(bytes);
  EXPECT_EQ(loaded.total_numel, 3);
  EXPECT_EQ(loaded.step_count, 7);
  EXPECT_EQ(loaded.loss_scale, 128.0f);
  EXPECT_EQ(loaded.scaler_steps_since_backoff, 0);  // defaulted
  EXPECT_EQ(loaded.scaler_good, 0);
  EXPECT_EQ(loaded.master, st.master);
  EXPECT_EQ(loaded.variance, st.variance);
}

// A crash before the first checkpoint restarts from scratch — still
// bit-exact, with resume_step 0 on the retry.
TEST(RecoveryTest, CrashBeforeFirstCheckpointRestartsFromScratch) {
  const ZeroStage stage = ZeroStage::kOsG;
  const int nd = 2;
  const std::vector<std::byte> expected = UninterruptedFinalState(stage, nd);

  FaultInjector injector(FaultPlan::Parse("crash@0:step#1"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 3;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report =
      coordinator.Train(MakeBody(stage, coordinator));
  ASSERT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.history[1].resume_step, 0);
  EXPECT_EQ(coordinator.vault().LatestBytes(), expected);
}

// Elastic shrink: the survivors re-partition the checkpoint at Nd' =
// Nd - 1 and finish the run. The data schedule changes with Nd, so this
// is equivalence-of-protocol, not bit-exactness.
TEST(RecoveryTest, ShrinkToSurvivorsFinishesAtSmallerWorld) {
  const ZeroStage stage = ZeroStage::kOsGP;
  const int nd = 4;

  FaultInjector injector(FaultPlan::Parse("crash@2:step#4"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 3;
  opts.policy = RestartPolicy::kShrinkToSurvivors;
  opts.min_world_size = 2;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report =
      coordinator.Train(MakeBody(stage, coordinator));

  ASSERT_TRUE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.final_world_size, nd - 1);
  EXPECT_EQ(report.history[1].world_size, nd - 1);
  EXPECT_EQ(report.history[1].resume_step, 2);  // checkpoints at 2,4,6,8
  ASSERT_EQ(coordinator.vault().LatestStep(), kSteps);

  // The resumed state is sane: right shape, finite parameters, and the
  // step clock reflects the full run.
  const TrainingState final_state =
      TrainingState::Deserialize(coordinator.vault().LatestBytes());
  EXPECT_EQ(final_state.step_count, kSteps);
  for (float v : final_state.master) {
    ASSERT_TRUE(std::isfinite(v));
  }
}

// Budget exhaustion: a crash rule that fires on every attempt leaves a
// truthful failure report instead of looping forever.
TEST(RecoveryTest, GivesUpAfterMaxAttempts) {
  const int nd = 2;
  // occurrence 0 = every match: rank 0 dies at its first step of every
  // attempt (the counter keeps matching).
  FaultInjector injector(FaultPlan::Parse("crash@0:step"), nd);
  RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 2;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  RecoveryCoordinator coordinator(opts);

  const RecoveryReport report =
      coordinator.Train(MakeBody(ZeroStage::kOs, coordinator));
  EXPECT_FALSE(report.succeeded);
  EXPECT_EQ(report.attempts, 2);
  EXPECT_EQ(report.failures(), 2);
  for (const AttemptInfo& a : report.history) {
    EXPECT_NE(a.error.find("injected crash"), std::string::npos) << a.error;
  }
}

}  // namespace
}  // namespace zero::fault
