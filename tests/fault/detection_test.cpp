// Failure detection: an injected crash/hang/drop must surface as a typed
// CommError on every survivor within the deadline — never a deadlock.
#include <gtest/gtest.h>

#include <chrono>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "common/error.hpp"
#include "core/dp_engine.hpp"
#include "fault/injector.hpp"
#include "model/quad_model.hpp"
#include "obs/trace.hpp"

namespace zero::fault {
namespace {

using comm::Communicator;
using comm::RankContext;
using comm::World;

template <typename E>
bool ErrorIs(const std::exception_ptr& e) {
  if (!e) return false;
  try {
    std::rethrow_exception(e);
  } catch (const E&) {
    return true;
  } catch (...) {
    return false;
  }
}

// A crashed rank's unwind must wake peers blocked in a collective.
TEST(DetectionTest, CrashDuringCollectiveUnblocksSurvivors) {
  const int nd = 3;
  FaultInjector injector(FaultPlan::Parse("crash@1:step#1"), nd);
  World world(nd);
  world.SetCommDeadline(std::chrono::milliseconds(100));
  world.SetFaultHooks(&injector);

  const World::RunReport report = world.TryRun([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    comm.FaultPoint("step");  // rank 1 dies here
    std::vector<float> data(64, 1.0f);
    comm.AllReduce(std::span<float>(data));
  });

  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ErrorIs<InjectedFaultError>(report.errors[1]));
  for (int r : {0, 2}) {
    ASSERT_TRUE(report.errors[static_cast<std::size_t>(r)] != nullptr)
        << "rank " << r << " should have unwound";
    EXPECT_TRUE(comm::IsSecondaryFault(report.errors[static_cast<std::size_t>(r)]))
        << "rank " << r;
  }
  EXPECT_TRUE(ErrorIs<InjectedFaultError>(report.RootCause()));
  // Everyone unwound, so everyone is recorded dead — but the ledger
  // keeps the root cause on rank 1.
  EXPECT_TRUE(world.health().IsDead(1));
  EXPECT_NE(world.health().DeathReason(1).find("injected crash"),
            std::string::npos);
}

// A hang produces no exception on the hung rank until peers detect the
// missing heartbeat; every rank must still come back within the deadline.
TEST(DetectionTest, HangIsDetectedByHeartbeatTimeout) {
  const int nd = 3;
  // 10s hang cap >> test runtime: release comes from the abort cascade.
  FaultInjector injector(FaultPlan::Parse("hang@1:step#1=10s"), nd);
  World world(nd);
  world.SetCommDeadline(std::chrono::milliseconds(50));
  world.SetFaultHooks(&injector);

  const std::uint64_t t0 = obs::TraceNowNs();
  const World::RunReport report = world.TryRun([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    comm.FaultPoint("step");  // rank 1 freezes here
    // Ring exchange: rank 2 waits on rank 1 and must detect the silence.
    std::vector<float> data(16, 1.0f);
    comm.AllReduce(std::span<float>(data));
  });
  const double elapsed_ms =
      static_cast<double>(obs::TraceNowNs() - t0) / 1e6;

  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(world.health().IsDead(1));
  // Detection must happen via heartbeats, far sooner than the 10s hang
  // cap (bound is loose for sanitizer builds).
  EXPECT_LT(elapsed_ms, 5000.0);
  // The hung rank unwinds with the injected fault once released.
  EXPECT_TRUE(ErrorIs<InjectedFaultError>(report.errors[1]));
}

// A dropped message with the peer still alive is a CommTimeoutError
// (lost message), not a false death declaration.
TEST(DetectionTest, DroppedMessageSurfacesAsTimeoutNotDeath) {
  const int nd = 2;
  FaultInjector injector(FaultPlan::Parse("drop@1#1"), nd);
  World world(nd);
  const std::chrono::milliseconds deadline(30);
  world.SetCommDeadline(deadline);
  world.SetFaultHooks(&injector);

  const World::RunReport report = world.TryRun([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<std::byte> payload(8);
    if (ctx.rank == 1) {
      comm.Send(0, std::span<const std::byte>(payload), 1);  // dropped
      // Stay alive (heartbeating) until the receiver gives up, so the
      // timeout is attributed to the message, not to us.
      const std::uint64_t start = obs::TraceNowNs();
      while (!ctx.world->health().AbortRequested() &&
             obs::TraceNowNs() - start < 5ull * 1000 * 1000 * 1000) {
        ctx.world->health().Beat(ctx.rank, obs::TraceNowNs());
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    } else {
      std::vector<std::byte> got = comm.RecvBytes(1, 1);
      (void)got;
    }
  });

  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ErrorIs<CommTimeoutError>(report.errors[0]));
  EXPECT_FALSE(world.health().IsDead(1));
}

// A rank that dies outside any mailbox wait must still break peers out
// of a barrier.
TEST(DetectionTest, BarrierAbortsWhenPartyDies) {
  const int nd = 2;
  World world(nd);
  world.SetCommDeadline(std::chrono::milliseconds(100));

  const World::RunReport report = world.TryRun([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    if (ctx.rank == 1) {
      throw InjectedFaultError("simulated rank loss before the barrier");
    }
    comm.Barrier();
  });

  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ErrorIs<InjectedFaultError>(report.errors[1]));
  EXPECT_TRUE(ErrorIs<StepAbortedError>(report.errors[0]));
}

// Slow-rank injection is non-fatal: the straggler finishes the step.
TEST(DetectionTest, SlowRankIsOnlyAStraggler) {
  const int nd = 2;
  FaultInjector injector(FaultPlan::Parse("slow@0:step=5ms"), nd);
  World world(nd);
  world.SetCommDeadline(std::chrono::milliseconds(200));
  world.SetFaultHooks(&injector);

  const World::RunReport report = world.TryRun([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    comm.FaultPoint("step");
    std::vector<float> data(32, 1.0f);
    comm.AllReduce(std::span<float>(data));
    EXPECT_FLOAT_EQ(data[0], 2.0f);
  });
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(injector.InjectedCount(FaultKind::kSlow), 1u);
}

// With no deadline configured, a crash death still propagates through
// the abort cascade (only silent hangs need heartbeats).
TEST(DetectionTest, CrashPropagatesWithoutDeadline) {
  const int nd = 2;
  FaultInjector injector(FaultPlan::Parse("crash@0:collective#1"), nd);
  World world(nd);
  world.SetFaultHooks(&injector);

  const World::RunReport report = world.TryRun([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<float> data(32, 1.0f);
    comm.AllReduce(std::span<float>(data));
  });
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ErrorIs<InjectedFaultError>(report.errors[0]));
  ASSERT_TRUE(report.errors[1] != nullptr);
  EXPECT_TRUE(comm::IsSecondaryFault(report.errors[1]));
}

// A crash while stage-3 prefetched gathers are in flight: the engine's
// unwind must cancel the nonblocking collective machines and drain
// their pending CommRequests — this test completing (instead of
// deadlocking or crashing in a landing-buffer destructor) is the
// regression check.
TEST(DetectionTest, AbortWithPrefetchedGathersUnwindsCleanly) {
  const int nd = 3;
  // Step 0 records the schedule; step 2 replays with lookahead-2
  // gathers in flight when rank 1 dies at the step fault point.
  FaultInjector injector(FaultPlan::Parse("crash@1:step#2"), nd);
  World world(nd);
  world.SetCommDeadline(std::chrono::milliseconds(200));
  world.SetFaultHooks(&injector);

  const World::RunReport report = world.TryRun([&](RankContext& ctx) {
    Communicator dp = Communicator::WholeWorld(ctx);
    model::QuadModel m(131, 5);
    core::EngineConfig cfg;
    cfg.stage = model::ZeroStage::kOsGP;
    cfg.fp16 = true;
    cfg.prefetch_lookahead = 2;
    core::ZeroDpEngine engine(cfg, m, dp, nullptr, 11);
    for (int s = 0; s < 4; ++s) {
      model::Batch b;
      b.rows = 1;
      b.cols = 4;
      for (int i = 0; i < 4; ++i) {
        b.inputs.push_back(ctx.rank * 31 + s * 7 + i);
        b.targets.push_back(0);
      }
      (void)engine.TrainStep(b);
    }
  });

  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(ErrorIs<InjectedFaultError>(report.errors[1]));
  for (int r : {0, 2}) {
    ASSERT_TRUE(report.errors[static_cast<std::size_t>(r)] != nullptr)
        << "rank " << r << " should have unwound";
    EXPECT_TRUE(
        comm::IsSecondaryFault(report.errors[static_cast<std::size_t>(r)]))
        << "rank " << r;
  }
  EXPECT_TRUE(ErrorIs<InjectedFaultError>(report.RootCause()));
}

}  // namespace
}  // namespace zero::fault
