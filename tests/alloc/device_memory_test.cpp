#include "alloc/device_memory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace zero::alloc {
namespace {

TEST(DeviceMemoryTest, AllocateAndFree) {
  DeviceMemory dev(1 << 20, "t");
  {
    Allocation a = dev.Allocate(1000);
    EXPECT_GE(a.size(), 1000u);
    EXPECT_EQ(a.size() % DeviceMemory::kAlignment, 0u);
    EXPECT_EQ(dev.Stats().in_use, a.size());
  }
  EXPECT_EQ(dev.Stats().in_use, 0u);
  EXPECT_EQ(dev.Stats().largest_free_block, dev.capacity());
}

TEST(DeviceMemoryTest, DataIsWritable) {
  DeviceMemory dev(1 << 16, "t");
  Allocation a = dev.Allocate(256);
  std::memset(a.data(), 0xAB, 256);
  EXPECT_EQ(static_cast<unsigned char>(a.data()[255]), 0xABu);
}

TEST(DeviceMemoryTest, OomThrowsWithDiagnostics) {
  DeviceMemory dev(4096, "small");
  try {
    (void)dev.Allocate(8192);
    FAIL() << "expected DeviceOomError";
  } catch (const DeviceOomError& e) {
    EXPECT_EQ(e.requested(), 8192u);
    EXPECT_EQ(e.free_total(), 4096u);
    EXPECT_FALSE(e.due_to_fragmentation());
    EXPECT_NE(std::string(e.what()).find("small"), std::string::npos);
  }
  EXPECT_EQ(dev.Stats().failed_allocs, 1u);
}

TEST(DeviceMemoryTest, FragmentationOomDespiteEnoughTotalFree) {
  // Checkerboard: allocate 8 blocks, free every other one. Total free is
  // half the device but no contiguous block fits a half-device request —
  // the Sec 3.2 pathology.
  DeviceMemory dev(8 * 1024, "frag", FitPolicy::kFirstFit);
  std::vector<Allocation> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(dev.Allocate(1024));
  for (int i = 0; i < 8; i += 2) blocks[i].Release();
  EXPECT_EQ(dev.Stats().free_total, 4 * 1024u);
  try {
    (void)dev.Allocate(2048);
    FAIL() << "expected fragmentation OOM";
  } catch (const DeviceOomError& e) {
    EXPECT_TRUE(e.due_to_fragmentation());
    EXPECT_EQ(e.largest_free_block(), 1024u);
  }
}

TEST(DeviceMemoryTest, CoalescesNeighborsOnFree) {
  DeviceMemory dev(4 * 1024, "t");
  Allocation a = dev.Allocate(1024);
  Allocation b = dev.Allocate(1024);
  Allocation c = dev.Allocate(1024);
  // Tail hole (1K) is separated from a+b by the live block c.
  b.Release();
  a.Release();  // must merge with b's hole into one 2K block
  EXPECT_EQ(dev.Stats().largest_free_block, 2 * 1024u);
  c.Release();  // merges both sides: the whole device is one block again
  EXPECT_EQ(dev.Stats().largest_free_block, 4 * 1024u);
}

TEST(DeviceMemoryTest, PeakTracksHighWater) {
  DeviceMemory dev(1 << 16, "t");
  {
    Allocation a = dev.Allocate(4096);
    Allocation b = dev.Allocate(8192);
  }
  EXPECT_EQ(dev.Stats().peak_in_use, 4096u + 8192u);
  EXPECT_EQ(dev.Stats().in_use, 0u);
  dev.ResetPeak();
  EXPECT_EQ(dev.Stats().peak_in_use, 0u);
}

TEST(DeviceMemoryTest, BestFitPrefersSnuggestBlock) {
  DeviceMemory dev(16 * 1024, "t", FitPolicy::kBestFit);
  // Guards keep the two holes from coalescing when a and b are freed.
  Allocation a = dev.Allocate(2048);
  Allocation guard1 = dev.Allocate(256);
  Allocation b = dev.Allocate(512);
  Allocation guard2 = dev.Allocate(256);
  const std::size_t off_b = b.offset();
  a.Release();
  b.Release();
  // Best fit lands the 512 request in the 512 hole, not the 2048 one
  // (first-fit would pick offset 0).
  Allocation d = dev.Allocate(512);
  EXPECT_EQ(d.offset(), off_b);
}

TEST(DeviceMemoryTest, CanAllocateProbeDoesNotAllocate) {
  DeviceMemory dev(4096, "t");
  EXPECT_TRUE(dev.CanAllocate(4096));
  EXPECT_FALSE(dev.CanAllocate(8192));
  EXPECT_EQ(dev.Stats().in_use, 0u);
  EXPECT_EQ(dev.Stats().failed_allocs, 0u);
}

TEST(DeviceMemoryTest, MoveTransfersOwnership) {
  DeviceMemory dev(1 << 16, "t");
  Allocation a = dev.Allocate(1024);
  Allocation b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move): probing
  EXPECT_TRUE(b.valid());
  EXPECT_EQ(dev.Stats().in_use, b.size());
  b.Release();
  EXPECT_EQ(dev.Stats().in_use, 0u);
}

TEST(DeviceMemoryTest, ZeroByteRequestStillAligned) {
  DeviceMemory dev(4096, "t");
  Allocation a = dev.Allocate(0);
  EXPECT_EQ(a.size(), DeviceMemory::kAlignment);
}

TEST(DeviceMemoryTest, ExternalFragmentationMetric) {
  DeviceMemory dev(8 * 1024, "t", FitPolicy::kFirstFit);
  std::vector<Allocation> blocks;
  for (int i = 0; i < 8; ++i) blocks.push_back(dev.Allocate(1024));
  for (int i = 0; i < 8; i += 2) blocks[i].Release();
  const DeviceStats s = dev.Stats();
  EXPECT_NEAR(s.ExternalFragmentation(), 0.75, 1e-9);
}

}  // namespace
}  // namespace zero::alloc
