#include "alloc/arena.hpp"

#include <gtest/gtest.h>

namespace zero::alloc {
namespace {

TEST(ArenaTest, BumpAllocatesContiguously) {
  DeviceMemory dev(1 << 20, "t");
  Arena arena(dev, 64 * 1024, "ckpt");
  std::byte* a = arena.Allocate(1000);
  std::byte* b = arena.Allocate(1000);
  EXPECT_EQ(b - a, static_cast<std::ptrdiff_t>(DeviceMemory::AlignUp(1000)));
}

TEST(ArenaTest, ResetRecyclesSpace) {
  DeviceMemory dev(1 << 20, "t");
  Arena arena(dev, 8 * 1024, "ckpt");
  std::byte* first = arena.Allocate(4 * 1024);
  arena.Reset();
  std::byte* again = arena.Allocate(4 * 1024);
  EXPECT_EQ(first, again);
  EXPECT_EQ(arena.peak_used(), 4 * 1024u);
}

TEST(ArenaTest, ExhaustionThrowsWithArenaName) {
  DeviceMemory dev(1 << 20, "t");
  Arena arena(dev, 4 * 1024, "ckpt");
  (void)arena.Allocate(3 * 1024);
  try {
    (void)arena.Allocate(2 * 1024);
    FAIL() << "expected arena OOM";
  } catch (const DeviceOomError& e) {
    EXPECT_NE(std::string(e.what()).find("ckpt"), std::string::npos);
  }
}

TEST(ArenaTest, HoldsOneContiguousDeviceBlock) {
  DeviceMemory dev(1 << 20, "t");
  const std::size_t before = dev.Stats().in_use;
  Arena arena(dev, 32 * 1024, "a");
  EXPECT_EQ(dev.Stats().in_use - before, 32 * 1024u);
  EXPECT_EQ(dev.Stats().num_allocations, 1u);
  // Arena-internal churn causes no device-allocator traffic at all —
  // that is the entire point of MD.
  for (int step = 0; step < 10; ++step) {
    for (int i = 0; i < 8; ++i) (void)arena.Allocate(1024);
    arena.Reset();
  }
  EXPECT_EQ(dev.Stats().total_allocs, 1u);
}

TEST(ArenaTest, DefragScenarioArenaPreventsFragmentationOom) {
  // Interleave long-lived checkpoints with short-lived activations. With
  // checkpoints in the general allocator the big allocation at the end
  // fails from fragmentation; with checkpoints in an arena it succeeds —
  // the MD mechanism of Sec 6.3 in miniature.
  constexpr std::size_t kCap = 64 * 1024;
  constexpr std::size_t kCkpt = 8 * 1024;
  constexpr std::size_t kFinal = 24 * 1024;

  // Baseline: checkpoints interleaved in the general allocator. The
  // short-lived activations live until the next layer's forward has
  // allocated (as real activations do), so each freed activation leaves
  // a hole fenced by checkpoints on both sides.
  {
    DeviceMemory dev(kCap, "no-md", FitPolicy::kFirstFit);
    std::vector<Allocation> checkpoints;
    std::vector<Allocation> activations;
    for (int l = 0; l < 3; ++l) {
      activations.push_back(dev.Allocate(8 * 1024));  // short-lived
      checkpoints.push_back(dev.Allocate(kCkpt));     // long-lived
    }
    activations.clear();  // all freed; holes are pinned apart
    // 64K - 24K of checkpoints = 40K free, but split into 8K holes plus
    // the 16K tail: no contiguous 24K exists.
    EXPECT_GE(dev.Stats().free_total, kFinal);
    EXPECT_THROW((void)dev.Allocate(kFinal), DeviceOomError);
  }

  // MD: checkpoints go to a pre-allocated arena, so freed activations
  // coalesce into one contiguous region.
  {
    DeviceMemory dev(kCap, "md", FitPolicy::kFirstFit);
    Arena arena(dev, 3 * kCkpt, "ckpt");
    std::vector<Allocation> activations;
    for (int l = 0; l < 3; ++l) {
      activations.push_back(dev.Allocate(8 * 1024));
      (void)arena.Allocate(kCkpt);
    }
    activations.clear();
    Allocation final_block = dev.Allocate(kFinal);  // fits: no holes
    EXPECT_TRUE(final_block.valid());
  }
}

}  // namespace
}  // namespace zero::alloc
