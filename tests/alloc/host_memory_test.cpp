#include "alloc/host_memory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/error.hpp"

namespace zero::alloc {
namespace {

TEST(HostMemoryTest, OffloadRestoreRoundTrip) {
  HostMemory host;
  std::vector<std::byte> src(1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i & 0xFF);
  }
  const std::size_t h = host.Offload(src.data(), src.size());
  EXPECT_EQ(host.SizeOfHandle(h), 1024u);
  std::vector<std::byte> dst(1024);
  host.Restore(h, dst.data());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(HostMemoryTest, TracksTransferVolumeBothWays) {
  HostMemory host;
  std::vector<std::byte> buf(4096);
  const std::size_t h1 = host.Offload(buf.data(), buf.size());
  const std::size_t h2 = host.Offload(buf.data(), buf.size());
  EXPECT_EQ(host.Stats().bytes_to_host, 8192u);
  EXPECT_EQ(host.Stats().in_use, 8192u);
  EXPECT_EQ(host.Stats().peak_in_use, 8192u);
  host.Restore(h1, buf.data());
  host.Restore(h2, buf.data());
  EXPECT_EQ(host.Stats().bytes_from_host, 8192u);
  EXPECT_EQ(host.Stats().in_use, 0u);
  EXPECT_EQ(host.Stats().peak_in_use, 8192u);
}

TEST(HostMemoryTest, RestoreConsumesHandle) {
  HostMemory host;
  std::vector<std::byte> buf(64);
  const std::size_t h = host.Offload(buf.data(), buf.size());
  host.Restore(h, buf.data());
  EXPECT_THROW(host.Restore(h, buf.data()), Error);
}

}  // namespace
}  // namespace zero::alloc
