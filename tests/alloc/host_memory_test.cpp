#include "alloc/host_memory.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace zero::alloc {
namespace {

TEST(HostMemoryTest, OffloadRestoreRoundTrip) {
  HostMemory host;
  std::vector<std::byte> src(1024);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i & 0xFF);
  }
  const std::size_t h = host.Offload(src.data(), src.size());
  EXPECT_EQ(host.SizeOfHandle(h), 1024u);
  std::vector<std::byte> dst(1024);
  host.Restore(h, dst.data());
  EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
}

TEST(HostMemoryTest, TracksTransferVolumeBothWays) {
  HostMemory host;
  std::vector<std::byte> buf(4096);
  const std::size_t h1 = host.Offload(buf.data(), buf.size());
  const std::size_t h2 = host.Offload(buf.data(), buf.size());
  EXPECT_EQ(host.Stats().bytes_to_host, 8192u);
  EXPECT_EQ(host.Stats().in_use, 8192u);
  EXPECT_EQ(host.Stats().peak_in_use, 8192u);
  host.Restore(h1, buf.data());
  host.Restore(h2, buf.data());
  EXPECT_EQ(host.Stats().bytes_from_host, 8192u);
  EXPECT_EQ(host.Stats().in_use, 0u);
  EXPECT_EQ(host.Stats().peak_in_use, 8192u);
}

TEST(HostMemoryTest, RestoreConsumesHandle) {
  HostMemory host;
  std::vector<std::byte> buf(64);
  const std::size_t h = host.Offload(buf.data(), buf.size());
  host.Restore(h, buf.data());
  EXPECT_THROW(host.Restore(h, buf.data()), Error);
}

TEST(HostMemoryTest, SizeOfUnknownHandleThrows) {
  HostMemory host;
  EXPECT_THROW((void)host.SizeOfHandle(42), Error);
  std::vector<std::byte> buf(64);
  const std::size_t h = host.Offload(buf.data(), buf.size());
  host.Restore(h, buf.data());
  // Consumed handles are unknown again.
  EXPECT_THROW((void)host.SizeOfHandle(h), Error);
}

TEST(HostMemoryTest, ResetPeakRebasesToCurrentOccupancy) {
  HostMemory host;
  std::vector<std::byte> buf(4096);
  const std::size_t h1 = host.Offload(buf.data(), buf.size());
  const std::size_t h2 = host.Offload(buf.data(), buf.size());
  host.Restore(h2, buf.data());
  EXPECT_EQ(host.Stats().peak_in_use, 8192u);
  // Peak rebases to what is still live, not to zero.
  host.ResetPeak();
  EXPECT_EQ(host.Stats().peak_in_use, 4096u);
  EXPECT_EQ(host.Stats().in_use, 4096u);
  host.Restore(h1, buf.data());
  host.ResetPeak();
  EXPECT_EQ(host.Stats().peak_in_use, 0u);
  // Transfer ledgers are cumulative and unaffected by peak resets.
  EXPECT_EQ(host.Stats().bytes_to_host, 8192u);
  EXPECT_EQ(host.Stats().bytes_from_host, 8192u);
}

TEST(HostMemoryTest, RegionsAreZeroedPersistentAndCounted) {
  HostMemory host;
  const std::size_t rg = host.CreateRegion(512);
  EXPECT_EQ(host.Stats().in_use, 512u);
  // Region creation moves no data across the link.
  EXPECT_EQ(host.Stats().bytes_to_host, 0u);
  const std::span<std::byte> bytes = host.RegionBytes(rg);
  ASSERT_EQ(bytes.size(), 512u);
  for (std::byte b : bytes) EXPECT_EQ(b, std::byte{0});
  bytes[0] = std::byte{0x7f};
  // The region stays addressable (unlike Offload/Restore handles).
  EXPECT_EQ(host.RegionBytes(rg)[0], std::byte{0x7f});

  // In-place traffic is reported through the Note hooks.
  host.NoteToHost(100);
  host.NoteFromHost(60);
  EXPECT_EQ(host.Stats().bytes_to_host, 100u);
  EXPECT_EQ(host.Stats().bytes_from_host, 60u);

  host.ReleaseRegion(rg);
  EXPECT_EQ(host.Stats().in_use, 0u);
  EXPECT_EQ(host.Stats().peak_in_use, 512u);
  EXPECT_THROW((void)host.RegionBytes(rg), Error);
  EXPECT_THROW(host.ReleaseRegion(rg), Error);
}

TEST(HostMemoryTest, RegionAndOffloadHandlesDoNotCollide) {
  HostMemory host;
  std::vector<std::byte> buf(32);
  const std::size_t h = host.Offload(buf.data(), buf.size());
  const std::size_t rg = host.CreateRegion(32);
  EXPECT_NE(h, rg);
  // An Offload handle is not a region and vice versa.
  EXPECT_THROW((void)host.RegionBytes(h), Error);
  EXPECT_THROW(host.Restore(rg, buf.data()), Error);
  host.Restore(h, buf.data());
  host.ReleaseRegion(rg);
}

}  // namespace
}  // namespace zero::alloc
