#include "alloc/caching_allocator.hpp"

#include <gtest/gtest.h>

namespace zero::alloc {
namespace {

TEST(CachingAllocatorTest, ReusesFreedBlocks) {
  DeviceMemory dev(1 << 20, "t");
  CachingAllocator cache(dev);
  std::byte* first;
  {
    CachedBlock b = cache.Malloc(4096);
    first = b.data();
  }
  // Freed block is parked, not returned to the device.
  EXPECT_EQ(dev.Stats().in_use, DeviceMemory::AlignUp(4096));
  CachedBlock b2 = cache.Malloc(4096);
  EXPECT_EQ(b2.data(), first);
  EXPECT_EQ(cache.Stats().cache_hits, 1u);
}

TEST(CachingAllocatorTest, PeakCachedIsMonotoneHighWater) {
  DeviceMemory dev(1 << 20, "t");
  CachingAllocator cache(dev);
  {
    CachedBlock a = cache.Malloc(1024);
    CachedBlock b = cache.Malloc(2048);
  }
  {
    CachedBlock c = cache.Malloc(1024);  // reuse
  }
  const CacheStats s = cache.Stats();
  EXPECT_EQ(s.peak_cached, DeviceMemory::AlignUp(1024) +
                               DeviceMemory::AlignUp(2048));
  EXPECT_EQ(s.cached_bytes, s.peak_cached);  // nothing returned yet
}

TEST(CachingAllocatorTest, EmptyCacheReturnsParkedBlocks) {
  DeviceMemory dev(1 << 20, "t");
  CachingAllocator cache(dev);
  { CachedBlock a = cache.Malloc(4096); }
  EXPECT_GT(dev.Stats().in_use, 0u);
  cache.EmptyCache();
  EXPECT_EQ(dev.Stats().in_use, 0u);
  EXPECT_EQ(cache.Stats().cached_bytes, 0u);
}

TEST(CachingAllocatorTest, OomFlushesCacheBeforeFailing) {
  DeviceMemory dev(8 * 1024, "t");
  CachingAllocator cache(dev);
  { CachedBlock a = cache.Malloc(6 * 1024); }  // parked: 6K of 8K held
  // 4K doesn't fit beside the parked 6K; the implicit empty_cache retry
  // must succeed.
  CachedBlock b = cache.Malloc(4 * 1024);
  EXPECT_EQ(b.size(), 4 * 1024u);
}

TEST(CachingAllocatorTest, GenuineOomStillThrows) {
  DeviceMemory dev(4 * 1024, "t");
  CachingAllocator cache(dev);
  EXPECT_THROW((void)cache.Malloc(64 * 1024), DeviceOomError);
}

TEST(CachingAllocatorTest, NoOversizedReuse) {
  DeviceMemory dev(1 << 20, "t");
  CachingAllocator cache(dev);
  { CachedBlock big = cache.Malloc(100 * 1024); }
  // A tiny request must not be served from the parked 100K block (waste
  // bound is 25%).
  CachedBlock small = cache.Malloc(256);
  EXPECT_LE(small.size(), 512u);
  EXPECT_EQ(cache.Stats().cache_hits, 0u);
}

TEST(CachingAllocatorTest, LiveBytesTracksHandedOutMemory) {
  DeviceMemory dev(1 << 20, "t");
  CachingAllocator cache(dev);
  CachedBlock a = cache.Malloc(1024);
  EXPECT_EQ(cache.Stats().live_bytes, DeviceMemory::AlignUp(1024));
  a.Release();
  EXPECT_EQ(cache.Stats().live_bytes, 0u);
}

}  // namespace
}  // namespace zero::alloc
