// Storage tiers and the simulated transfer link (alloc/tier.hpp): the
// abstraction the streaming optimizer offload (core/offload_engine)
// builds on. Bytes land at submit; the channel models only time.
#include "alloc/tier.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "common/error.hpp"

namespace zero::alloc {
namespace {

TEST(TransferChannelTest, InstantLinkCompletesAtSubmit) {
  TransferChannel ch(0.0);
  TransferRequest req = ch.Submit(TransferDirection::kToTier, 1024);
  EXPECT_TRUE(req.done());
  req.Wait();  // no-op
  EXPECT_EQ(ch.stats().bytes_to_tier, 1024u);
  EXPECT_EQ(ch.stats().active_ns, 0u);
  EXPECT_EQ(ch.stats().exposed_ns, 0u);
  EXPECT_DOUBLE_EQ(ch.stats().hidden_fraction(), 1.0);
}

TEST(TransferChannelTest, DirectionLedgersAreSeparate) {
  TransferChannel ch(0.0);
  (void)ch.Submit(TransferDirection::kToTier, 100);
  (void)ch.Submit(TransferDirection::kToDevice, 7);
  EXPECT_EQ(ch.stats().bytes_to_tier, 100u);
  EXPECT_EQ(ch.stats().bytes_to_device, 7u);
  EXPECT_EQ(ch.stats().total_bytes(), 107u);
}

TEST(TransferChannelTest, WaitChargesExposedLinkTime) {
  // 1 GB/s link, 2 MB transfer -> 2 ms of simulated link time. Waiting
  // immediately exposes (almost) all of it.
  TransferChannel ch(1e9);
  TransferRequest req = ch.Submit(TransferDirection::kToTier, 2'000'000);
  EXPECT_EQ(ch.stats().active_ns, 2'000'000u);
  req.Wait();
  EXPECT_TRUE(req.done());
  EXPECT_GT(ch.stats().exposed_ns, 0u);
  EXPECT_LE(ch.stats().exposed_ns, ch.stats().active_ns);
  EXPECT_LT(ch.stats().hidden_fraction(), 1.0);
}

TEST(TransferChannelTest, LinkTimeElapsedWhileComputingIsHidden) {
  TransferChannel ch(1e9);
  TransferRequest req = ch.Submit(TransferDirection::kToDevice, 1'000'000);
  // "Compute" for longer than the 1 ms of link time, then wait: the
  // transfer already delivered, so nothing is exposed.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(req.Test());
  req.Wait();
  EXPECT_EQ(ch.stats().exposed_ns, 0u);
  EXPECT_DOUBLE_EQ(ch.stats().hidden_fraction(), 1.0);
}

TEST(TransferChannelTest, TransfersQueueFifoBehindEachOther) {
  TransferChannel ch(1e9);
  (void)ch.Submit(TransferDirection::kToTier, 1'000'000);
  TransferRequest second = ch.Submit(TransferDirection::kToTier, 1'000'000);
  // The second transfer serializes behind the first: 2 ms total active.
  EXPECT_EQ(ch.stats().active_ns, 2'000'000u);
  second.Wait();
  EXPECT_TRUE(second.done());
}

TEST(DeviceTierTest, HeapBackedRegionsAreAddressableAndLinkless) {
  DeviceTier tier(nullptr);
  EXPECT_EQ(tier.kind(), TierKind::kDevice);
  EXPECT_EQ(tier.channel(), nullptr);
  const std::size_t rg = tier.CreateRegion(64);
  const std::span<std::byte> bytes = tier.ResidentBytes(rg);
  ASSERT_EQ(bytes.size(), 64u);
  for (std::byte b : bytes) EXPECT_EQ(b, std::byte{0});
  EXPECT_TRUE(tier.SubmitToTier(128).done());
  EXPECT_TRUE(tier.SubmitToDevice(128).done());
  tier.ReleaseRegion(rg);
  EXPECT_THROW((void)tier.ResidentBytes(rg), Error);
}

TEST(HostTierTest, RegionsLiveInThePoolAndTrafficIsLedgered) {
  HostMemory pool("alloc.host");
  auto tier = MakeStorageTier(TierKind::kHost, &pool, nullptr, 0.0);
  EXPECT_EQ(tier->kind(), TierKind::kHost);
  ASSERT_NE(tier->channel(), nullptr);

  const std::size_t rg = tier->CreateRegion(256);
  EXPECT_EQ(pool.Stats().in_use, 256u);
  const std::span<std::byte> resident = tier->ResidentBytes(rg);
  ASSERT_EQ(resident.size(), 256u);
  for (std::byte b : resident) EXPECT_EQ(b, std::byte{0});

  std::vector<std::byte> src(128, std::byte{0x5a});
  tier->StoreAsync(rg, 64, src).Wait();
  EXPECT_EQ(resident[64], std::byte{0x5a});
  EXPECT_EQ(pool.Stats().bytes_to_host, 128u);

  std::vector<std::byte> dst(128);
  tier->FetchAsync(rg, 64, dst).Wait();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), 128), 0);
  EXPECT_EQ(pool.Stats().bytes_from_host, 128u);

  // Wire-format traffic that bypasses the regions still hits the
  // pool's transfer ledger and the channel byte counts.
  (void)tier->SubmitToTier(32);
  (void)tier->SubmitToDevice(16);
  EXPECT_EQ(pool.Stats().bytes_to_host, 128u + 32u);
  EXPECT_EQ(pool.Stats().bytes_from_host, 128u + 16u);
  EXPECT_EQ(tier->channel()->stats().bytes_to_tier, 128u + 32u);
  EXPECT_EQ(tier->channel()->stats().bytes_to_device, 128u + 16u);

  tier->ReleaseRegion(rg);
  EXPECT_EQ(pool.Stats().in_use, 0u);
}

TEST(HostTierTest, DestructorReleasesOutstandingRegions) {
  HostMemory pool("alloc.host");
  {
    HostTier tier(&pool, 0.0);
    (void)tier.CreateRegion(100);
    (void)tier.CreateRegion(28);
    EXPECT_EQ(pool.Stats().in_use, 128u);
  }
  EXPECT_EQ(pool.Stats().in_use, 0u);
  EXPECT_EQ(pool.Stats().peak_in_use, 128u);
}

TEST(NvmeTierTest, NotHostAddressableButRoundTripsThroughStaging) {
  auto tier = MakeStorageTier(TierKind::kNvme, nullptr, nullptr, 0.0);
  EXPECT_EQ(tier->kind(), TierKind::kNvme);
  const std::size_t rg = tier->CreateRegion(96);
  // The contract the offload engine's staging path keys off:
  EXPECT_TRUE(tier->ResidentBytes(rg).empty());

  std::vector<std::byte> src(96);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i);
  }
  tier->StoreAsync(rg, 0, src).Wait();
  std::vector<std::byte> dst(96, std::byte{0xff});
  tier->FetchAsync(rg, 0, dst).Wait();
  EXPECT_EQ(std::memcmp(dst.data(), src.data(), src.size()), 0);

  // Fresh regions read back zeroed.
  const std::size_t rg2 = tier->CreateRegion(16);
  std::vector<std::byte> zeros(16, std::byte{0xff});
  tier->FetchAsync(rg2, 0, zeros).Wait();
  for (std::byte b : zeros) EXPECT_EQ(b, std::byte{0});

  tier->ReleaseRegion(rg);
  tier->ReleaseRegion(rg2);
  EXPECT_THROW((void)tier->FetchAsync(rg, 0, dst), Error);
}

TEST(MakeStorageTierTest, HostTierRequiresAPool) {
  EXPECT_THROW((void)MakeStorageTier(TierKind::kHost, nullptr, nullptr, 0.0),
               Error);
}

TEST(TierKindNameTest, NamesMatchTheEnvGrammar) {
  EXPECT_STREQ(TierKindName(TierKind::kDevice), "device");
  EXPECT_STREQ(TierKindName(TierKind::kHost), "host");
  EXPECT_STREQ(TierKindName(TierKind::kNvme), "nvme");
}

}  // namespace
}  // namespace zero::alloc
