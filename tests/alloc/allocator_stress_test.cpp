// Randomized stress/property tests for the device allocator stack:
// thousands of interleaved allocations and frees with invariant checks —
// no overlap, exact byte conservation, full coalescing at quiescence.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <vector>

#include "alloc/caching_allocator.hpp"
#include "common/rng.hpp"

namespace zero::alloc {
namespace {

class AllocatorStressTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AllocatorStressTest, RandomChurnPreservesInvariants) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  DeviceMemory dev(1 << 22, "stress",
                   seed % 2 == 0 ? FitPolicy::kBestFit
                                 : FitPolicy::kFirstFit);
  std::vector<Allocation> live;
  std::size_t live_bytes = 0;

  for (int op = 0; op < 4000; ++op) {
    const bool do_alloc = live.empty() || rng.NextDouble() < 0.55;
    if (do_alloc) {
      const std::size_t size = 1 + rng.NextBelow(16 * 1024);
      if (!dev.CanAllocate(size)) {
        // Pressure relief: drop half the live set.
        for (std::size_t i = 0; i < live.size(); i += 2) {
          live_bytes -= live[i].size();
          live[i].Release();
        }
        std::erase_if(live, [](const Allocation& a) { return !a.valid(); });
        continue;
      }
      Allocation a = dev.Allocate(size);
      // Invariant: no overlap with any live allocation.
      for (const Allocation& other : live) {
        const bool disjoint = a.offset() + a.size() <= other.offset() ||
                              other.offset() + other.size() <= a.offset();
        ASSERT_TRUE(disjoint) << "overlapping allocations at op " << op;
      }
      live_bytes += a.size();
      live.push_back(std::move(a));
    } else {
      const std::size_t victim = rng.NextBelow(live.size());
      live_bytes -= live[victim].size();
      live[victim].Release();
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    // Invariant: exact byte conservation.
    const DeviceStats s = dev.Stats();
    ASSERT_EQ(s.in_use, live_bytes) << "op " << op;
    ASSERT_EQ(s.in_use + s.free_total, s.capacity) << "op " << op;
    ASSERT_EQ(s.num_allocations, live.size()) << "op " << op;
  }

  // Quiescence: everything freed coalesces back to one block.
  live.clear();
  const DeviceStats s = dev.Stats();
  EXPECT_EQ(s.in_use, 0u);
  EXPECT_EQ(s.largest_free_block, s.capacity);
  EXPECT_EQ(s.total_allocs, s.total_frees);
}

TEST_P(AllocatorStressTest, CachingLayerChurnIsConsistent) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed ^ 0xABCD);
  DeviceMemory dev(1 << 22, "cache-stress");
  CachingAllocator cache(dev);
  std::vector<CachedBlock> live;
  for (int op = 0; op < 2000; ++op) {
    if (live.empty() || rng.NextDouble() < 0.6) {
      const std::size_t size = 1 + rng.NextBelow(8 * 1024);
      live.push_back(cache.Malloc(size));
      // Touch the memory: catches handed-out-twice bugs via the
      // disjointness of writes (asserted indirectly by content checks).
      std::memset(live.back().data(), static_cast<int>(op & 0xFF),
                  live.back().size());
    } else {
      const std::size_t victim = rng.NextBelow(live.size());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(victim));
    }
    const CacheStats s = cache.Stats();
    std::size_t expected_live = 0;
    for (const CachedBlock& b : live) expected_live += b.size();
    ASSERT_EQ(s.live_bytes, expected_live) << "op " << op;
    ASSERT_GE(s.cached_bytes, s.live_bytes) << "op " << op;
    ASSERT_LE(s.cached_bytes, dev.Stats().in_use) << "op " << op;
  }
  live.clear();
  EXPECT_EQ(cache.Stats().live_bytes, 0u);
  cache.EmptyCache();
  EXPECT_EQ(dev.Stats().in_use, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AllocatorStressTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace zero::alloc
