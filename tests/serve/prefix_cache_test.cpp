// Copy-on-write prefix KV cache: refcount lifecycle, adoption and
// publication, CoW forks at full and partially-filled blocks, and
// index eviction honoring live readers — plus scheduler-level checks
// that sharing changes only the work done, never the tokens produced.
#include "serve/kv_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <vector>

#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "serve/traffic_gen.hpp"

namespace zero::serve {
namespace {

KvGeometry SmallGeom() {
  KvGeometry g;
  g.layers = 2;
  g.row_floats = 4;
  g.block_tokens = 4;
  return g;
}

std::vector<std::int32_t> Tokens(std::int64_t n, std::int32_t base = 100) {
  std::vector<std::int32_t> t(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    t[static_cast<std::size_t>(i)] = base + static_cast<std::int32_t>(i);
  }
  return t;
}

TEST(PrefixIndex, PublishTakesRefsAndSurvivesDonorFree) {
  KvBlockPool pool(SmallGeom(), 8, nullptr, false);
  SlotKvCache kv(&pool, true);
  const std::int32_t a = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(a, 8));
  const auto prompt = Tokens(8);
  kv.PublishPrefix(a, prompt);
  EXPECT_EQ(kv.index_blocks(), 2);  // two full blocks, no tail
  float* b0 = kv.block_at(a, 0);
  float* b1 = kv.block_at(a, 1);
  EXPECT_EQ(pool.RefCount(b0), 2);  // slot + index
  EXPECT_EQ(pool.RefCount(b1), 2);

  kv.FreeSlot(a);
  EXPECT_EQ(pool.used(), 2);  // the index keeps the blocks alive
  EXPECT_EQ(pool.RefCount(b0), 1);

  EXPECT_TRUE(kv.TryEvictIndexBlock());
  EXPECT_TRUE(kv.TryEvictIndexBlock());
  EXPECT_FALSE(kv.TryEvictIndexBlock());
  EXPECT_EQ(pool.used(), 0);
  EXPECT_EQ(kv.index_blocks(), 0);
}

TEST(PrefixIndex, AdoptionSharesPublishedBlocksByPointer) {
  const KvGeometry g = SmallGeom();
  KvBlockPool pool(g, 8, nullptr, false);
  SlotKvCache kv(&pool, true);
  const std::int32_t a = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(a, 8));
  // Mark the donor's cached rows so shared reads are observable.
  kv.KRow(a, 1, 3)[2] = 1234.5f;
  const auto prompt = Tokens(8);
  kv.PublishPrefix(a, prompt);
  float* b0 = kv.block_at(a, 0);
  float* b1 = kv.block_at(a, 1);

  // A fresh request whose stream extends the published prompt adopts
  // both full blocks — prefill restarts at position 8.
  const std::int32_t b = kv.AllocSlot();
  auto stream = prompt;
  stream.push_back(9);
  stream.push_back(10);
  EXPECT_EQ(kv.AdoptPrefix(b, stream), 8);
  EXPECT_EQ(kv.slot_blocks(b), 2);
  EXPECT_EQ(kv.block_at(b, 0), b0);
  EXPECT_EQ(kv.block_at(b, 1), b1);
  EXPECT_EQ(pool.RefCount(b0), 3);  // donor + index + adopter
  EXPECT_EQ(kv.KRow(b, 1, 3)[2], 1234.5f);
  EXPECT_EQ(pool.used(), 2);  // adoption acquired nothing

  kv.FreeSlot(a);
  EXPECT_EQ(pool.RefCount(b0), 2);
  EXPECT_EQ(kv.KRow(b, 1, 3)[2], 1234.5f);  // reader unaffected
}

TEST(PrefixIndex, AdoptionLeavesAtLeastOneTokenToPrefill) {
  KvBlockPool pool(SmallGeom(), 8, nullptr, false);
  SlotKvCache kv(&pool, true);
  const std::int32_t a = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(a, 4));
  const auto prompt = Tokens(4);
  kv.PublishPrefix(a, prompt);

  // Identical stream: adopting the whole block would leave nothing to
  // feed the model, so nothing is adopted.
  const std::int32_t b = kv.AllocSlot();
  EXPECT_EQ(kv.AdoptPrefix(b, prompt), 0);
  EXPECT_EQ(kv.slot_blocks(b), 0);

  // One extra token makes the full block adoptable.
  auto longer = prompt;
  longer.push_back(77);
  const std::int32_t c = kv.AllocSlot();
  EXPECT_EQ(kv.AdoptPrefix(c, longer), 4);
}

TEST(PrefixIndex, MismatchedTokensAreNotAdopted) {
  KvBlockPool pool(SmallGeom(), 8, nullptr, false);
  SlotKvCache kv(&pool, true);
  const std::int32_t a = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(a, 8));
  kv.PublishPrefix(a, Tokens(8));

  // Diverges inside the first block: no positions are shared.
  auto other = Tokens(8, 500);
  const std::int32_t b = kv.AllocSlot();
  EXPECT_EQ(kv.AdoptPrefix(b, other), 0);

  // Diverges in the second block: only the first block is shared.
  auto half = Tokens(8);
  half[5] = 999;
  const std::int32_t c = kv.AllocSlot();
  EXPECT_EQ(kv.AdoptPrefix(c, half), 4);
  EXPECT_EQ(kv.block_at(c, 0), kv.block_at(a, 0));
}

TEST(PrefixIndex, DonorForksItsOwnPublishedTailOnNextAppend) {
  const KvGeometry g = SmallGeom();
  KvBlockPool pool(g, 8, nullptr, false);
  SlotKvCache kv(&pool, true);
  const std::int32_t a = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(a, 6));  // 1 full block + 2-token tail
  kv.KRow(a, 0, 4)[0] = 42.0f;  // marker inside the tail block
  const auto prompt = Tokens(6);
  kv.PublishPrefix(a, prompt);
  EXPECT_EQ(kv.index_blocks(), 2);  // full block + partial tail
  float* tail = kv.block_at(a, 1);
  EXPECT_EQ(pool.RefCount(tail), 2);  // donor + tail index

  // The donor keeps decoding into position 6, which lands in the shared
  // tail block — EnsureAppendable must fork it first.
  ASSERT_TRUE(kv.EnsureAppendable(a, 6, 1));
  float* forked = kv.block_at(a, 1);
  EXPECT_NE(forked, tail);
  EXPECT_EQ(kv.KRow(a, 0, 4)[0], 42.0f);  // contents copied on fork
  EXPECT_EQ(pool.RefCount(tail), 1);      // index keeps the original
  EXPECT_EQ(pool.RefCount(forked), 1);
}

TEST(PrefixIndex, AdopterSharesTailByLcpAndForksOnWrite) {
  const KvGeometry g = SmallGeom();
  KvBlockPool pool(g, 8, nullptr, false);
  SlotKvCache kv(&pool, true);
  const std::int32_t a = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(a, 6));
  kv.KRow(a, 1, 5)[1] = 7.0f;
  const auto prompt = Tokens(6);  // tokens 100..105
  kv.PublishPrefix(a, prompt);
  float* tail = kv.block_at(a, 1);
  kv.FreeSlot(a);

  // Full 6-token match (plus new tokens): the adopter takes the full
  // block and the whole published tail.
  const std::int32_t b = kv.AllocSlot();
  auto stream = prompt;
  stream.push_back(7);
  stream.push_back(8);
  EXPECT_EQ(kv.AdoptPrefix(b, stream), 6);
  EXPECT_EQ(kv.block_at(b, 1), tail);
  EXPECT_EQ(kv.KRow(b, 1, 5)[1], 7.0f);

  // Appending position 6 writes inside the shared tail: CoW fork at a
  // partially-filled block. The index copy stays intact for others.
  ASSERT_TRUE(kv.EnsureAppendable(b, 6, 1));
  EXPECT_NE(kv.block_at(b, 1), tail);
  EXPECT_EQ(kv.KRow(b, 1, 5)[1], 7.0f);
  EXPECT_EQ(pool.RefCount(tail), 1);  // back to index-only

  // Partial tail match: stream diverges at position 5, so only the
  // longest common run (position 4) of the tail is adopted.
  const std::int32_t c = kv.AllocSlot();
  auto partial = Tokens(8);
  partial[5] = 999;
  EXPECT_EQ(kv.AdoptPrefix(c, partial), 5);
  EXPECT_EQ(kv.block_at(c, 1), tail);
  // Prefill resumes at position 5, inside the shared tail → fork.
  ASSERT_TRUE(kv.EnsureAppendable(c, 5, 2));
  EXPECT_NE(kv.block_at(c, 1), tail);
  EXPECT_EQ(kv.KRow(c, 0, 4)[0], kv.KRow(b, 0, 4)[0]);
}

TEST(PrefixIndex, EvictionSkipsBlocksWithLiveReaders) {
  KvBlockPool pool(SmallGeom(), 4, nullptr, false);
  SlotKvCache kv(&pool, true);
  const std::int32_t a = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(a, 8));
  const auto prompt = Tokens(8);
  kv.PublishPrefix(a, prompt);
  float* b0 = kv.block_at(a, 0);
  kv.FreeSlot(a);
  EXPECT_EQ(pool.used(), 2);  // index-held

  // Adopter shares only the first block (streams diverge after it).
  const std::int32_t b = kv.AllocSlot();
  std::vector<std::int32_t> stream(prompt.begin(), prompt.begin() + 4);
  stream.insert(stream.end(), {7, 8});
  EXPECT_EQ(kv.AdoptPrefix(b, stream), 4);
  EXPECT_EQ(pool.RefCount(b0), 2);

  // A big reservation needs 3 of the 4 blocks: the pool is dry, and the
  // oldest index block (b0) has a live reader — eviction must skip it
  // and drop the second published block instead.
  const std::int32_t c = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(c, 12));
  EXPECT_EQ(kv.index_blocks(), 1);
  EXPECT_EQ(kv.block_at(b, 0), b0);      // reader untouched
  EXPECT_EQ(pool.RefCount(b0), 2);       // adopter + index

  // Nothing evictable remains: every index block has live readers.
  const std::int32_t d = kv.AllocSlot();
  EXPECT_FALSE(kv.EnsureCapacity(d, 4));
  EXPECT_FALSE(kv.TryEvictIndexBlock());
}

// --- scheduler-level: sharing changes work, never results ---

model::GptConfig MiniConfig() {
  model::GptConfig c;
  c.vocab = 64;
  c.seq = 16;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  return c;
}

std::vector<float> MiniWeights(const model::GptConfig& cfg) {
  model::GptModel m(cfg, {});
  std::vector<float> full(
      static_cast<std::size_t>(m.layout().total_numel()), 0.0f);
  m.InitParameters(full, 0xABBA);
  return full;
}

ServeSummary RunShared(const std::vector<float>& full, bool prefix_cache,
                       std::span<const ServeRequest> traffic) {
  InferenceOptions io;
  io.model = MiniConfig();
  io.kv_block_tokens = 4;
  io.kv_max_blocks = 64;
  io.record_metrics = false;
  io.prefix_cache = prefix_cache;
  InferenceEngine eng(io, {});
  eng.LoadFullWeights(full);

  ServeOptions so;
  so.scheduler.max_running = 4;
  so.scheduler.max_step_tokens = 16;
  so.scheduler.max_seq = io.model.seq;
  so.scheduler.record_metrics = false;
  so.admission.record_metrics = false;
  return ServeLoop(eng, traffic, so);
}

TEST(PrefixCacheServe, SharingKeepsOutputsAndSavesPrefill) {
  const auto full = MiniWeights(MiniConfig());

  TrafficConfig tc;
  tc.qps = 2000.0;
  tc.duration_s = 0.02;
  tc.tenants = 2;
  tc.prompt_min = 2;
  tc.prompt_max = 4;
  tc.out_min = 1;
  tc.out_max = 4;
  tc.vocab = 64;
  tc.seed = 97;
  tc.prefix_len = 6;  // shared per-tenant system prompt
  const auto traffic = GenerateOpenLoopTraffic(tc);
  ASSERT_GT(traffic.size(), 10u);

  const ServeSummary off = RunShared(full, false, traffic);
  const ServeSummary on = RunShared(full, true, traffic);

  // Identical results: same completions, same tokens, same timings.
  ASSERT_EQ(on.outcomes.size(), off.outcomes.size());
  std::map<std::uint64_t, const RequestOutcome*> by_id;
  for (const RequestOutcome& o : off.outcomes) by_id[o.id] = &o;
  for (const RequestOutcome& o : on.outcomes) {
    const RequestOutcome* ref = by_id.at(o.id);
    EXPECT_EQ(o.completed, ref->completed);
    EXPECT_EQ(o.output, ref->output) << "request " << o.id;
  }
  EXPECT_EQ(on.completed, off.completed);
  EXPECT_EQ(on.decode_tokens, off.decode_tokens);

  // Less prefill compute, accounted as prefix hits.
  EXPECT_LT(on.prefill_tokens, off.prefill_tokens);
  EXPECT_GT(on.prefix_hits, 0);
  EXPECT_GT(on.prefix_hit_tokens, 0);
  EXPECT_EQ(off.prefix_hits, 0);
  EXPECT_EQ(off.prefix_hit_tokens, 0);
  EXPECT_EQ(on.prefill_tokens + on.prefix_hit_tokens, off.prefill_tokens);
}

TEST(PrefixCacheServe, SharingReplaysBitIdentically) {
  const auto full = MiniWeights(MiniConfig());

  TrafficConfig tc;
  tc.qps = 3000.0;
  tc.duration_s = 0.02;
  tc.tenants = 2;
  tc.prompt_min = 2;
  tc.prompt_max = 4;
  tc.out_min = 1;
  tc.out_max = 4;
  tc.vocab = 64;
  tc.seed = 11;
  tc.prefix_len = 6;
  const auto traffic = GenerateOpenLoopTraffic(tc);

  const ServeSummary a = RunShared(full, true, traffic);
  const ServeSummary b = RunShared(full, true, traffic);
  ASSERT_EQ(a.outcomes.size(), b.outcomes.size());
  for (std::size_t i = 0; i < a.outcomes.size(); ++i) {
    EXPECT_EQ(a.outcomes[i].id, b.outcomes[i].id);
    EXPECT_EQ(a.outcomes[i].output, b.outcomes[i].output);
    EXPECT_EQ(a.outcomes[i].done_s, b.outcomes[i].done_s);  // bitwise
  }
  EXPECT_EQ(a.prefill_tokens, b.prefill_tokens);
  EXPECT_EQ(a.prefix_hit_tokens, b.prefix_hit_tokens);
  EXPECT_EQ(a.steps, b.steps);
}

}  // namespace
}  // namespace zero::serve
