#include "serve/kv_cache.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "alloc/caching_allocator.hpp"
#include "alloc/device_memory.hpp"
#include "obs/metrics.hpp"

namespace zero::serve {
namespace {

KvGeometry SmallGeom() {
  KvGeometry g;
  g.layers = 2;
  g.row_floats = 4;
  g.block_tokens = 4;
  return g;
}

TEST(KvBlockPool, AcquireReleaseReuse) {
  KvBlockPool pool(SmallGeom(), 3, nullptr, false);
  float* a = pool.Acquire();
  float* b = pool.Acquire();
  float* c = pool.Acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.Acquire(), nullptr);  // capacity reached
  EXPECT_EQ(pool.used(), 3);
  EXPECT_EQ(pool.peak_used(), 3);

  pool.Release(b);
  EXPECT_EQ(pool.used(), 2);
  EXPECT_EQ(pool.Acquire(), b);  // freelist reuse, block-granular
  EXPECT_EQ(pool.peak_used(), 3);
}

TEST(KvBlockPool, PublishesKvGauges) {
  KvBlockPool pool(SmallGeom(), 4, nullptr, true);
  float* a = pool.Acquire();
  float* b = pool.Acquire();
  (void)b;
  auto& m = obs::Metrics();
  EXPECT_EQ(m.gauge("alloc.kv.blocks_total").value(), 4.0);
  EXPECT_EQ(m.gauge("alloc.kv.blocks_used").value(), 2.0);
  EXPECT_EQ(m.gauge("alloc.kv.blocks_peak").value(), 2.0);
  // 2 blocks hold 8 token slots; 6 cached tokens -> 25% fragmentation.
  pool.SetUsedTokens(6);
  EXPECT_NEAR(m.gauge("alloc.kv.fragmentation").value(), 0.25, 1e-12);
  pool.Release(a);
  EXPECT_EQ(m.gauge("alloc.kv.blocks_used").value(), 1.0);
}

TEST(KvBlockPool, DeviceBackedStopsAtOomInsteadOfThrowing) {
  const KvGeometry g = SmallGeom();
  // Capacity for exactly two blocks (DeviceMemory rounds capacity up to
  // its 256-byte alignment, so any slack would admit a third block).
  alloc::DeviceMemory device(2 * g.block_bytes(), "kv-test");
  alloc::CachingAllocator cache(device);
  KvBlockPool pool(g, 100, &cache, false);
  EXPECT_NE(pool.Acquire(), nullptr);
  EXPECT_NE(pool.Acquire(), nullptr);
  EXPECT_EQ(pool.Acquire(), nullptr);  // device OOM surfaces as pressure
  EXPECT_EQ(pool.used(), 2);
}

TEST(SlotKvCache, RowAddressingAcrossBlocks) {
  const KvGeometry g = SmallGeom();
  KvBlockPool pool(g, 8, nullptr, false);
  SlotKvCache kv(&pool);
  const std::int32_t slot = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(slot, 6));  // 2 blocks of 4 tokens
  EXPECT_EQ(kv.slot_blocks(slot), 2);
  EXPECT_EQ(pool.used(), 2);

  // Distinct rows; K and V never alias; values round-trip.
  for (std::int64_t layer = 0; layer < g.layers; ++layer) {
    for (std::int64_t pos = 0; pos < 6; ++pos) {
      float* k = kv.KRow(slot, layer, pos);
      float* v = kv.VRow(slot, layer, pos);
      ASSERT_NE(k, v);
      for (std::int64_t c = 0; c < g.row_floats; ++c) {
        k[c] = static_cast<float>(1000 * layer + 10 * pos + c);
        v[c] = -k[c];
      }
    }
  }
  EXPECT_EQ(kv.KRow(slot, 1, 5)[3], 1053.0f);
  EXPECT_EQ(kv.VRow(slot, 1, 5)[3], -1053.0f);

  // Growing within the reserved blocks needs no new acquisition.
  ASSERT_TRUE(kv.EnsureCapacity(slot, 8));
  EXPECT_EQ(kv.slot_blocks(slot), 2);
  ASSERT_TRUE(kv.EnsureCapacity(slot, 9));
  EXPECT_EQ(kv.slot_blocks(slot), 3);
}

TEST(SlotKvCache, FreeSlotReturnsBlocksImmediately) {
  KvBlockPool pool(SmallGeom(), 2, nullptr, false);
  SlotKvCache kv(&pool);
  const std::int32_t a = kv.AllocSlot();
  ASSERT_TRUE(kv.EnsureCapacity(a, 8));
  EXPECT_EQ(pool.used(), 2);

  const std::int32_t b = kv.AllocSlot();
  EXPECT_FALSE(kv.EnsureCapacity(b, 1));  // pool exhausted

  kv.FreeSlot(a);
  EXPECT_EQ(pool.used(), 0);
  EXPECT_TRUE(kv.EnsureCapacity(b, 8));  // freed blocks available at once
  kv.FreeSlot(b);
  EXPECT_EQ(pool.used(), 0);
}

TEST(SlotKvCache, SlotIdsAreRecycled) {
  KvBlockPool pool(SmallGeom(), 4, nullptr, false);
  SlotKvCache kv(&pool);
  const std::int32_t a = kv.AllocSlot();
  kv.FreeSlot(a);
  EXPECT_EQ(kv.AllocSlot(), a);
}

}  // namespace
}  // namespace zero::serve
