// Scheduler-in-isolation coverage: plans and commits are driven directly
// with synthetic logits (no model), so these tests pin down admission
// order, per-tenant fairness, the eviction/readmission round-trip and
// starvation-freedom independent of the engine.
#include "serve/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "serve/traffic_gen.hpp"

namespace zero::serve {
namespace {

constexpr std::int64_t kVocab = 16;

ServeRequest Req(std::uint64_t id, std::int32_t tenant, std::size_t prompt,
                 std::int32_t max_new) {
  ServeRequest r;
  r.id = id;
  r.tenant = tenant;
  r.prompt.assign(prompt, 1);
  r.max_new_tokens = max_new;
  return r;
}

struct Harness {
  KvBlockPool pool;
  SlotKvCache kv;
  AdmissionController admission;
  ContinuousBatchScheduler scheduler;

  Harness(SchedulerConfig sc, std::int64_t blocks, std::int64_t block_tokens)
      : pool(KvGeometry{1, 2, block_tokens}, blocks, nullptr, false),
        kv(&pool),
        admission([] {
          AdmissionConfig a;
          a.record_metrics = false;
          a.max_queue_requests = 1 << 20;
          return a;
        }()),
        scheduler(
            [&sc] {
              sc.record_metrics = false;
              return sc;
            }(),
            &kv, &admission) {}

  // Executes one step with synthetic logits (argmax -> token 0).
  StepPlan StepOnce(std::vector<RequestOutcome>& done, double now) {
    StepPlan plan = scheduler.PlanStep();
    if (!plan.empty()) {
      std::vector<float> logits(plan.groups() * kVocab, 0.0f);
      scheduler.CommitStep(plan, logits.data(), kVocab, now, done);
    }
    return plan;
  }

  std::vector<RequestOutcome> RunToCompletion(std::int64_t max_steps) {
    std::vector<RequestOutcome> done;
    std::int64_t steps = 0;
    while (!scheduler.Idle()) {
      StepOnce(done, static_cast<double>(steps));
      ++steps;
      EXPECT_LT(steps, max_steps) << "scheduler failed to drain";
      if (steps >= max_steps) break;
    }
    return done;
  }
};

SchedulerConfig Config(std::int64_t max_running, std::int64_t budget,
                       std::int64_t max_seq = 64) {
  SchedulerConfig c;
  c.max_running = max_running;
  c.max_step_tokens = budget;
  c.max_seq = max_seq;
  return c;
}

TEST(Scheduler, PacksPrefillAndDecodeIntoOneStep) {
  Harness h(Config(4, 32), 64, 4);
  ASSERT_EQ(h.admission.Offer(Req(0, 0, 5, 3), 0.0), RejectReason::kNone);

  std::vector<RequestOutcome> done;
  // Step 1: the whole 5-token prompt prefills in one group and samples.
  StepPlan p1 = h.StepOnce(done, 0.0);
  ASSERT_EQ(p1.groups(), 1u);
  EXPECT_EQ(p1.group_chunk[0], 5);
  EXPECT_TRUE(p1.group_samples[0]);
  EXPECT_EQ(p1.tokens.size(), 5u);
  EXPECT_EQ(p1.tokens[0].pos, 0);
  EXPECT_EQ(p1.tokens[4].pos, 4);

  // A second request arrives: its prefill packs into the same step as
  // the first request's decode token — continuous batching.
  ASSERT_EQ(h.admission.Offer(Req(1, 0, 4, 2), 0.0), RejectReason::kNone);
  StepPlan p2 = h.StepOnce(done, 1.0);
  ASSERT_EQ(p2.groups(), 2u);
  EXPECT_EQ(p2.group_request[0], 0u);  // older sequence planned first
  EXPECT_EQ(p2.group_chunk[0], 1);     // decode
  EXPECT_EQ(p2.group_request[1], 1u);
  EXPECT_EQ(p2.group_chunk[1], 4);     // prefill
  EXPECT_EQ(p2.tokens.size(), 5u);
  EXPECT_EQ(p2.tokens[0].pos, 5);  // request 0's first generated token

  std::vector<RequestOutcome> rest = h.RunToCompletion(100);
  done.insert(done.end(), rest.begin(), rest.end());
  ASSERT_EQ(done.size(), 2u);
  EXPECT_TRUE(done[0].completed);
  EXPECT_TRUE(done[1].completed);
  EXPECT_EQ(done[0].output.size(), 3u);
  EXPECT_EQ(done[1].output.size(), 2u);
}

TEST(Scheduler, TokenBudgetChunksLongPrefill) {
  Harness h(Config(4, 8), 64, 4);
  ASSERT_EQ(h.admission.Offer(Req(0, 0, 20, 1), 0.0), RejectReason::kNone);
  std::vector<RequestOutcome> done;
  StepPlan p1 = h.StepOnce(done, 0.0);
  ASSERT_EQ(p1.groups(), 1u);
  EXPECT_EQ(p1.group_chunk[0], 8);       // budget-bounded chunk
  EXPECT_FALSE(p1.group_samples[0]);     // mid-prompt: no sampling
  StepPlan p2 = h.StepOnce(done, 1.0);
  EXPECT_EQ(p2.group_chunk[0], 8);
  StepPlan p3 = h.StepOnce(done, 2.0);
  EXPECT_EQ(p3.group_chunk[0], 4);       // prompt tail
  EXPECT_TRUE(p3.group_samples[0]);      // samples at the stream end
  ASSERT_EQ(done.size(), 1u);            // max_new = 1: done at first token
  EXPECT_TRUE(done[0].completed);
}

TEST(Scheduler, RoundRobinFairnessUnderSkewedLoad) {
  Harness h(Config(2, 16), 64, 4);
  // Tenant 0 floods; tenant 1 sends two requests.
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_EQ(h.admission.Offer(Req(i, 0, 4, 2), 0.0), RejectReason::kNone);
  }
  ASSERT_EQ(h.admission.Offer(Req(100, 1, 4, 2), 0.0), RejectReason::kNone);
  ASSERT_EQ(h.admission.Offer(Req(101, 1, 4, 2), 0.0), RejectReason::kNone);

  std::vector<RequestOutcome> done = h.RunToCompletion(200);
  ASSERT_EQ(done.size(), 12u);
  auto finish_pos = [&](std::uint64_t id) {
    for (std::size_t i = 0; i < done.size(); ++i) {
      if (done[i].id == id) return i;
    }
    return done.size();
  };
  // The sparse tenant's requests finish inside the first third of the
  // flood, not after it.
  EXPECT_LT(finish_pos(100), 4u);
  EXPECT_LT(finish_pos(101), 5u);
}

TEST(Scheduler, EvictionReadmissionRoundTrip) {
  // Pool of 3 two-token blocks; both requests eventually need 3 blocks
  // (2 prompt + 4 generated = 6 tokens). When the older sequence's
  // growth exhausts the pool, the younger one is preempted, readmitted
  // after the older finishes, and still completes with full output.
  Harness h(Config(2, 32), 3, 2);
  ASSERT_EQ(h.admission.Offer(Req(0, 0, 2, 4), 0.0), RejectReason::kNone);
  ASSERT_EQ(h.admission.Offer(Req(1, 0, 2, 4), 0.0), RejectReason::kNone);

  std::vector<RequestOutcome> done = h.RunToCompletion(200);
  ASSERT_EQ(done.size(), 2u);
  auto by_id = [&](std::uint64_t id) -> const RequestOutcome& {
    return done[done[0].id == id ? 0 : 1];
  };
  EXPECT_TRUE(by_id(0).completed);
  EXPECT_TRUE(by_id(1).completed);
  EXPECT_EQ(by_id(0).output.size(), 4u);
  EXPECT_EQ(by_id(1).output.size(), 4u);
  EXPECT_EQ(by_id(0).evictions, 0);     // the older sequence never loses
  EXPECT_GE(by_id(1).evictions, 1);     // the younger one round-trips
  EXPECT_EQ(h.pool.used(), 0);          // every block returned
}

TEST(Scheduler, SeededSoakNoRequestStarves) {
  TrafficConfig tc;
  tc.qps = 4000.0;
  tc.duration_s = 0.05;
  tc.tenants = 3;
  tc.prompt_min = 2;
  tc.prompt_max = 10;
  tc.out_min = 1;
  tc.out_max = 6;
  tc.vocab = kVocab;
  tc.seed = ServeSeedFromEnv(99);
  const auto traffic = GenerateOpenLoopTraffic(tc);
  ASSERT_GT(traffic.size(), 100u);

  auto run = [&] {
    Harness h(Config(6, 24), 16, 4);  // tight pool: evictions do happen
    for (const auto& r : traffic) {
      EXPECT_EQ(h.admission.Offer(r, r.arrival_s), RejectReason::kNone);
    }
    return h.RunToCompletion(100000);
  };
  const auto a = run();
  ASSERT_EQ(a.size(), traffic.size());  // nobody starved or got dropped
  for (const auto& o : a) {
    EXPECT_TRUE(o.completed);
    EXPECT_FALSE(o.output.empty());
  }
  // Same seed, same decisions: the soak replays bit-identically.
  const auto b = run();
  ASSERT_EQ(b.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].output, b[i].output);
    EXPECT_EQ(a[i].evictions, b[i].evictions);
  }
}

}  // namespace
}  // namespace zero::serve
