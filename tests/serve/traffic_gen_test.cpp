#include "serve/traffic_gen.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace zero::serve {
namespace {

TrafficConfig BaseConfig() {
  TrafficConfig c;
  c.qps = 2000.0;
  c.duration_s = 0.5;
  c.tenants = 3;
  c.prompt_min = 2;
  c.prompt_max = 6;
  c.out_min = 1;
  c.out_max = 4;
  c.vocab = 48;
  c.seed = 7;
  return c;
}

TEST(TrafficGen, SeededRunsReplayBitIdentically) {
  const TrafficConfig c = BaseConfig();
  const auto a = GenerateOpenLoopTraffic(c);
  const auto b = GenerateOpenLoopTraffic(c);
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GT(a.size(), 500u);  // thousands-of-QPS scale
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].tenant, b[i].tenant);
    EXPECT_EQ(a[i].arrival_s, b[i].arrival_s);  // bitwise: same doubles
    EXPECT_EQ(a[i].prompt, b[i].prompt);
    EXPECT_EQ(a[i].max_new_tokens, b[i].max_new_tokens);
  }
}

TEST(TrafficGen, DifferentSeedsDiffer) {
  TrafficConfig c = BaseConfig();
  const auto a = GenerateOpenLoopTraffic(c);
  c.seed = 8;
  const auto b = GenerateOpenLoopTraffic(c);
  ASSERT_FALSE(a.empty());
  ASSERT_FALSE(b.empty());
  EXPECT_NE(a[0].arrival_s, b[0].arrival_s);
}

TEST(TrafficGen, ArrivalsSortedAndBounded) {
  const TrafficConfig c = BaseConfig();
  const auto reqs = GenerateOpenLoopTraffic(c);
  double last = 0.0;
  for (const auto& r : reqs) {
    EXPECT_GE(r.arrival_s, last);
    EXPECT_LT(r.arrival_s, c.duration_s);
    last = r.arrival_s;
    EXPECT_GE(static_cast<std::int32_t>(r.prompt.size()), c.prompt_min);
    EXPECT_LE(static_cast<std::int32_t>(r.prompt.size()), c.prompt_max);
    EXPECT_GE(r.max_new_tokens, c.out_min);
    EXPECT_LE(r.max_new_tokens, c.out_max);
    EXPECT_GE(r.tenant, 0);
    EXPECT_LT(r.tenant, c.tenants);
    for (auto t : r.prompt) {
      EXPECT_GE(t, 0);
      EXPECT_LT(t, static_cast<std::int32_t>(c.vocab));
    }
  }
}

TEST(TrafficGen, TenantWeightsSkewTheMix) {
  TrafficConfig c = BaseConfig();
  c.tenants = 2;
  c.tenant_weights = {9.0, 1.0};
  const auto reqs = GenerateOpenLoopTraffic(c);
  std::size_t tenant0 = 0;
  for (const auto& r : reqs) tenant0 += r.tenant == 0 ? 1 : 0;
  // ~90% of a 1000-request draw; loose bound avoids seed sensitivity.
  EXPECT_GT(tenant0 * 10, reqs.size() * 8);
}

TEST(TrafficGen, PrefixModePrependsWithoutDisturbingTheTrace) {
  TrafficConfig c = BaseConfig();
  const auto plain = GenerateOpenLoopTraffic(c);
  c.prefix_len = 8;
  const auto shared = GenerateOpenLoopTraffic(c);

  // Same arrivals, tenants, output budgets and random tails: the prefix
  // draws come from their own streams, so everything else replays
  // bit-identically.
  ASSERT_EQ(shared.size(), plain.size());
  for (std::size_t i = 0; i < plain.size(); ++i) {
    EXPECT_EQ(shared[i].arrival_s, plain[i].arrival_s);
    EXPECT_EQ(shared[i].tenant, plain[i].tenant);
    EXPECT_EQ(shared[i].max_new_tokens, plain[i].max_new_tokens);
    ASSERT_EQ(shared[i].prompt.size(), plain[i].prompt.size() + 8u);
    for (std::size_t k = 0; k < plain[i].prompt.size(); ++k) {
      EXPECT_EQ(shared[i].prompt[k + 8], plain[i].prompt[k]);
    }
  }
}

TEST(TrafficGen, PrefixIsSharedPerTenantAndDiffersAcrossTenants) {
  TrafficConfig c = BaseConfig();
  c.prefix_len = 6;
  const auto reqs = GenerateOpenLoopTraffic(c);

  std::vector<std::vector<std::int32_t>> seen(
      static_cast<std::size_t>(c.tenants));
  for (const auto& r : reqs) {
    ASSERT_GE(r.prompt.size(), 6u);
    const std::vector<std::int32_t> pre(r.prompt.begin(),
                                        r.prompt.begin() + 6);
    auto& want = seen[static_cast<std::size_t>(r.tenant)];
    if (want.empty()) {
      want = pre;
    } else {
      EXPECT_EQ(pre, want) << "tenant " << r.tenant
                           << " prefix drifted at request " << r.id;
    }
  }
  // Distinct tenants draw from distinct streams; identical 6-token
  // prefixes would be a one-in-48^6 accident.
  for (std::int32_t t = 1; t < c.tenants; ++t) {
    if (!seen[0].empty() && !seen[static_cast<std::size_t>(t)].empty()) {
      EXPECT_NE(seen[0], seen[static_cast<std::size_t>(t)]);
    }
  }
}

TEST(TrafficGen, ServeSeedEnvKnobWins) {
  unsetenv("ZERO_SERVE_SEED");
  EXPECT_EQ(ServeSeedFromEnv(5), 5u);
  setenv("ZERO_SERVE_SEED", "1234", 1);
  EXPECT_EQ(ServeSeedFromEnv(5), 1234u);
  setenv("ZERO_SERVE_SEED", "not-a-number", 1);
  EXPECT_EQ(ServeSeedFromEnv(5), 5u);
  unsetenv("ZERO_SERVE_SEED");
}

}  // namespace
}  // namespace zero::serve
