// Reduced-precision serving weights behind the dispatched GEMM backend:
// the fp32 backend must stay memcmp-bit-exact with the trainer's eval
// forward (same envelope engine_decode_test pins), while fp16 and int8
// must greedy-decode the identical token sequence with a bounded
// max-logit deviation from fp32 — at mp=1 and MP-sharded mp=2.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "common/error.hpp"
#include "model/flat_model.hpp"

namespace zero::serve {
namespace {

model::GptConfig TestConfig() {
  model::GptConfig c;
  c.vocab = 64;
  c.seq = 16;
  // hidden = 32 keeps every projection's n-dimension a multiple of the
  // GEMM panel width at mp=1, so the fp16 panel pre-pack adds no
  // padding and the weight_bytes ratio below stays a clean ~0.5x.
  c.hidden = 32;
  c.layers = 2;
  c.heads = 2;
  return c;
}

std::vector<float> FullWeights(const model::GptConfig& cfg,
                               std::uint64_t seed) {
  model::GptModel m(cfg, {});
  std::vector<float> full(
      static_cast<std::size_t>(m.layout().total_numel()), 0.0f);
  m.InitParameters(full, seed);
  return full;
}

InferenceOptions TestOptions(const std::string& weights) {
  InferenceOptions o;
  o.model = TestConfig();
  o.kv_block_tokens = 4;
  o.kv_max_blocks = 64;
  o.record_metrics = false;
  o.weights = weights;
  return o;
}

const std::vector<std::int32_t> kPrompt = {5, 17, 3, 42, 8, 1, 33, 20};

// Greedy rollout returning the logits row at every sampled position.
std::vector<std::vector<float>> DecodeLogits(
    InferenceEngine& eng, const std::vector<std::int32_t>& prompt,
    int steps) {
  const std::int64_t v = eng.options().model.vocab;
  const std::int32_t slot = eng.kv().AllocSlot();
  EXPECT_TRUE(eng.kv().EnsureCapacity(
      slot, static_cast<std::int64_t>(prompt.size()) + steps));

  std::vector<std::vector<float>> rows;
  std::vector<model::DecodeToken> toks;
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    toks.push_back({prompt[i], slot, static_cast<std::int64_t>(i)});
  }
  std::vector<float> logits(static_cast<std::size_t>(v));
  std::int64_t pos = static_cast<std::int64_t>(prompt.size());
  for (int s = 0; s < steps; ++s) {
    EXPECT_EQ(eng.Decode(toks, logits), 1);
    rows.push_back(logits);
    std::int32_t best = 0;
    for (std::int64_t t = 1; t < v; ++t) {
      if (logits[static_cast<std::size_t>(t)] >
          logits[static_cast<std::size_t>(best)]) {
        best = static_cast<std::int32_t>(t);
      }
    }
    toks.assign(1, {best, slot, pos});
    ++pos;
  }
  eng.kv().FreeSlot(slot);
  return rows;
}

std::int32_t Argmax(const std::vector<float>& row) {
  std::int32_t best = 0;
  for (std::size_t t = 1; t < row.size(); ++t) {
    if (row[t] > row[static_cast<std::size_t>(best)]) {
      best = static_cast<std::int32_t>(t);
    }
  }
  return best;
}

// Greedy tokens must match exactly; logits may deviate up to `bound`.
void ExpectGreedyEquivalent(const std::vector<std::vector<float>>& ref,
                            const std::vector<std::vector<float>>& got,
                            double bound) {
  ASSERT_EQ(ref.size(), got.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < ref.size(); ++i) {
    ASSERT_EQ(ref[i].size(), got[i].size());
    EXPECT_EQ(Argmax(ref[i]), Argmax(got[i]))
        << "greedy token diverges at sampled position " << i;
    for (std::size_t t = 0; t < ref[i].size(); ++t) {
      max_err = std::max(
          max_err, static_cast<double>(std::fabs(ref[i][t] - got[i][t])));
    }
  }
  EXPECT_LE(max_err, bound);
}

TEST(WeightsPrecision, Fp32BackendStaysMemcmpBitExact) {
  const model::GptConfig cfg = TestConfig();
  const std::vector<float> full = FullWeights(cfg, 0x715EC0);

  InferenceEngine ref(TestOptions("fp32"), {});
  ref.LoadFullWeights(full);
  // A second fp32 engine built from the same floats: packing is a
  // passthrough, so the rollouts must be identical bitwise.
  InferenceEngine dup(TestOptions("fp32"), {});
  dup.LoadFullWeights(full);
  const auto a = DecodeLogits(ref, kPrompt, 6);
  const auto b = DecodeLogits(dup, kPrompt, 6);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          a[i].size() * sizeof(float)),
              0);
  }
  EXPECT_EQ(ref.weights().backend().name(), "fp32");
}

TEST(WeightsPrecision, Fp16GreedyEquivalentWithBoundedLogitError) {
  const std::vector<float> full = FullWeights(TestConfig(), 0x715EC0);
  InferenceEngine e32(TestOptions("fp32"), {});
  e32.LoadFullWeights(full);
  InferenceEngine e16(TestOptions("fp16"), {});
  e16.LoadFullWeights(full);
  ExpectGreedyEquivalent(DecodeLogits(e32, kPrompt, 8),
                         DecodeLogits(e16, kPrompt, 8), 0.05);
  // Half the weight storage (vector entries stay fp32).
  EXPECT_LT(e16.weights().weight_bytes(),
            static_cast<std::size_t>(
                0.6 * static_cast<double>(e32.weights().weight_bytes())));
}

TEST(WeightsPrecision, Int8GreedyEquivalentWithBoundedLogitError) {
  const std::vector<float> full = FullWeights(TestConfig(), 0x715EC0);
  InferenceEngine e32(TestOptions("fp32"), {});
  e32.LoadFullWeights(full);
  InferenceEngine e8(TestOptions("int8"), {});
  e8.LoadFullWeights(full);
  ExpectGreedyEquivalent(DecodeLogits(e32, kPrompt, 8),
                         DecodeLogits(e8, kPrompt, 8), 0.5);
  EXPECT_LT(e8.weights().weight_bytes(),
            static_cast<std::size_t>(
                0.4 * static_cast<double>(e32.weights().weight_bytes())));
}

TEST(WeightsPrecision, UnknownBackendNameFailsAtLoad) {
  const std::vector<float> full = FullWeights(TestConfig(), 1);
  InferenceEngine eng(TestOptions("fp12"), {});
  EXPECT_THROW(eng.LoadFullWeights(full), Error);
}

TEST(WeightsPrecision, MpShardedReducedPrecisionGreedyEquivalent) {
  const model::GptConfig cfg = TestConfig();
  const std::vector<float> full = FullWeights(cfg, 0xFEED5);

  comm::World world(2);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator mp = comm::Communicator::WholeWorld(ctx);
    model::GptSession session;
    session.mp = &mp;
    // Each precision's MP engine all-reduces replicated logits, so both
    // ranks see identical rows; compare fp16/int8 against fp32 within
    // the rank.
    InferenceEngine e32(TestOptions("fp32"), session);
    e32.LoadFullWeights(full);
    const auto ref = DecodeLogits(e32, kPrompt, 6);

    InferenceEngine e16(TestOptions("fp16"), session);
    e16.LoadFullWeights(full);
    ExpectGreedyEquivalent(ref, DecodeLogits(e16, kPrompt, 6), 0.05);

    InferenceEngine e8(TestOptions("int8"), session);
    e8.LoadFullWeights(full);
    ExpectGreedyEquivalent(ref, DecodeLogits(e8, kPrompt, 6), 0.5);
  });
}

}  // namespace
}  // namespace zero::serve
