// Serving regression tests: trainer checkpoints (v1 and v2 headers) load
// into the InferenceEngine, and incremental greedy decode produces
// logits bit-exact with the trainer's eval forward on the same weights —
// at mp=1 and MP-sharded mp=2 (each degree against its own eval forward;
// different degrees split reductions differently and are not comparable
// bitwise). The config keeps every GEMM inside the small-kernel regime
// for both the [bs,*] eval shapes and the [n_tokens,*] decode shapes
// (see DESIGN.md §16), so "bit-exact" here is memcmp, not a tolerance.
#include "serve/engine.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "core/state_checkpoint.hpp"
#include "core/trainer.hpp"
#include "model/flat_model.hpp"
#include "serve/server.hpp"
#include "serve/traffic_gen.hpp"

namespace zero::serve {
namespace {

model::GptConfig TestConfig() {
  model::GptConfig c;
  c.vocab = 64;
  c.seq = 16;
  c.hidden = 16;
  c.layers = 2;
  c.heads = 2;
  return c;
}

std::vector<float> FullWeights(const model::GptConfig& cfg,
                               std::uint64_t seed) {
  model::GptModel m(cfg, {});
  std::vector<float> full(
      static_cast<std::size_t>(m.layout().total_numel()), 0.0f);
  m.InitParameters(full, seed);
  return full;
}

core::TrainingState StateFromWeights(std::vector<float> full) {
  core::TrainingState s;
  s.total_numel = static_cast<std::int64_t>(full.size());
  s.step_count = 3;
  s.loss_scale = 1024.0f;
  s.momentum.assign(full.size(), 0.0f);
  s.variance.assign(full.size(), 0.0f);
  s.master = std::move(full);
  return s;
}

InferenceOptions TestOptions() {
  InferenceOptions o;
  o.model = TestConfig();
  o.kv_block_tokens = 4;
  o.kv_max_blocks = 64;
  o.record_metrics = false;
  return o;
}

const std::vector<std::int32_t> kPrompt = {5, 17, 3, 42, 8, 1, 33, 20};

// Greedy-decodes `steps` tokens after `prompt`, returning the logits row
// of every sampled position (prompt end + each generated token).
std::vector<std::vector<float>> DecodeLogits(
    InferenceEngine& eng, const std::vector<std::int32_t>& prompt,
    int steps) {
  const std::int64_t v = eng.options().model.vocab;
  const std::int32_t slot = eng.kv().AllocSlot();
  EXPECT_TRUE(eng.kv().EnsureCapacity(
      slot, static_cast<std::int64_t>(prompt.size()) + steps));

  std::vector<std::vector<float>> rows;
  std::vector<model::DecodeToken> toks;
  for (std::size_t i = 0; i < prompt.size(); ++i) {
    toks.push_back({prompt[i], slot, static_cast<std::int64_t>(i)});
  }
  std::vector<float> logits(static_cast<std::size_t>(v));
  std::int64_t pos = static_cast<std::int64_t>(prompt.size());
  for (int s = 0; s < steps; ++s) {
    EXPECT_EQ(eng.Decode(toks, logits), 1);
    rows.push_back(logits);
    std::int32_t best = 0;
    for (std::int64_t t = 1; t < v; ++t) {
      if (logits[static_cast<std::size_t>(t)] >
          logits[static_cast<std::size_t>(best)]) {
        best = static_cast<std::int32_t>(t);
      }
    }
    toks.assign(1, {best, slot, pos});
    ++pos;
  }
  eng.kv().FreeSlot(slot);
  return rows;
}

// Eval-forward reference for the same greedy rollout: logits row t of a
// full forward depends only on tokens 0..t, so padding the tail with
// zeros and reading row (prefix-1) gives the trainer-side answer.
std::vector<std::vector<float>> EvalLogits(
    const model::GptConfig& cfg, std::span<const float> full,
    const std::vector<std::int32_t>& prompt, int steps,
    model::GptSession session = {}) {
  model::GptModel ref(cfg, session);
  std::vector<float> local(
      static_cast<std::size_t>(ref.layout().total_numel()));
  ref.ImportFullParams(full, local);
  model::DirectParamProvider prov(ref.layout(), local);
  std::vector<std::int32_t> ids(static_cast<std::size_t>(cfg.seq), 0);
  std::copy(prompt.begin(), prompt.end(), ids.begin());
  std::size_t filled = prompt.size();

  std::vector<std::vector<float>> rows;
  std::vector<float> logits(
      static_cast<std::size_t>(cfg.seq * cfg.vocab));
  for (int s = 0; s < steps; ++s) {
    model::Batch batch;
    batch.rows = 1;
    batch.cols = cfg.seq;
    batch.inputs = ids;
    ref.EvalForwardLogits(batch, prov, logits);
    const float* row = logits.data() + (filled - 1) * cfg.vocab;
    rows.emplace_back(row, row + cfg.vocab);
    std::int32_t best = 0;
    for (std::int64_t t = 1; t < cfg.vocab; ++t) {
      if (row[t] > row[best]) best = static_cast<std::int32_t>(t);
    }
    if (filled < ids.size()) ids[filled] = best;
    ++filled;
  }
  return rows;
}

void ExpectBitExact(const std::vector<std::vector<float>>& a,
                    const std::vector<std::vector<float>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    EXPECT_EQ(std::memcmp(a[i].data(), b[i].data(),
                          a[i].size() * sizeof(float)),
              0)
        << "logits diverge at sampled position " << i;
  }
}

TEST(EngineDecode, V2CheckpointGreedyDecodeBitExactVsEvalForward) {
  const model::GptConfig cfg = TestConfig();
  const std::vector<float> full = FullWeights(cfg, 0xC0FFEE);
  const std::string path = "/tmp/zero_serve_ckpt_v2.bin";
  StateFromWeights(full).SaveToFile(path);

  InferenceEngine eng(TestOptions(), {});
  eng.LoadCheckpointFile(path);
  // 8 sampled positions: prompt end + 7 generated continuations.
  ExpectBitExact(DecodeLogits(eng, kPrompt, 8),
                 EvalLogits(cfg, full, kPrompt, 8));
  std::remove(path.c_str());
}

TEST(EngineDecode, V1HeaderCheckpointLoads) {
  const model::GptConfig cfg = TestConfig();
  const std::vector<float> full = FullWeights(cfg, 0xBEEF);
  std::vector<std::byte> bytes = StateFromWeights(full).Serialize();
  // Rewrite as a v1 checkpoint: version u32 at offset 8 becomes 1 and
  // the header shrinks from 64 to 40 bytes (the scaler fields go away).
  const std::uint32_t v1 = 1;
  std::memcpy(bytes.data() + 8, &v1, sizeof(v1));
  bytes.erase(bytes.begin() + 40, bytes.begin() + 64);
  const std::string path = "/tmp/zero_serve_ckpt_v1.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  }

  InferenceEngine eng(TestOptions(), {});
  eng.LoadCheckpointFile(path);
  ExpectBitExact(DecodeLogits(eng, kPrompt, 4),
                 EvalLogits(cfg, full, kPrompt, 4));
  std::remove(path.c_str());
}

TEST(EngineDecode, TrainerWrittenCheckpointServesBitExact) {
  core::TrainOptions opt;
  opt.model = TestConfig();
  opt.engine.stage = model::ZeroStage::kOsG;
  opt.engine.checkpoint_every_n_steps = 2;
  opt.engine.checkpoint_path = "/tmp/zero_serve_trained.bin";
  opt.cluster.dp_degree = 2;
  opt.cluster.mp_degree = 1;
  opt.batch_per_rank = 2;
  opt.steps = 2;
  const core::TrainResult result = core::TrainGpt(opt);
  ASSERT_FALSE(result.oom);
  ASSERT_FALSE(result.failed);

  const core::TrainingState state =
      core::TrainingState::LoadFromFile(opt.engine.checkpoint_path);
  InferenceEngine eng(TestOptions(), {});
  eng.LoadState(state);
  ExpectBitExact(DecodeLogits(eng, kPrompt, 4),
                 EvalLogits(TestConfig(), state.master, kPrompt, 4));
  std::remove(opt.engine.checkpoint_path.c_str());
}

TEST(EngineDecode, MpShardedDecodeBitExactVsMpEvalForward) {
  const model::GptConfig cfg = TestConfig();
  const std::vector<float> full = FullWeights(cfg, 0xFACADE);
  const std::string path = "/tmp/zero_serve_ckpt_mp.bin";
  StateFromWeights(full).SaveToFile(path);

  comm::World world(2);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator mp = comm::Communicator::WholeWorld(ctx);
    model::GptSession session;
    session.mp = &mp;
    InferenceEngine eng(TestOptions(), session);
    eng.LoadCheckpointFile(path);
    // Every rank's MP-sharded decode must reproduce the MP-sharded eval
    // forward bitwise (greedy sampling reads replicated, all-reduced
    // logits, so the ranks roll out the same tokens in lockstep).
    ExpectBitExact(DecodeLogits(eng, kPrompt, 6),
                   EvalLogits(cfg, full, kPrompt, 6, session));
  });
  std::remove(path.c_str());
}

TEST(EngineDecode, ContinuousBatchingMatchesIsolatedDecode) {
  const model::GptConfig cfg = TestConfig();
  const std::vector<float> full = FullWeights(cfg, 0xD15EA5E);

  InferenceOptions opts = TestOptions();
  opts.kv_max_blocks = 6;  // tight pool: forces eviction round-trips
  InferenceEngine eng(opts, {});
  eng.LoadFullWeights(full);

  TrafficConfig tc;
  tc.qps = 2000.0;
  tc.duration_s = 0.01;
  tc.tenants = 2;
  tc.prompt_min = 2;
  tc.prompt_max = 6;
  tc.out_min = 1;
  tc.out_max = 4;
  tc.vocab = cfg.vocab;
  tc.seed = 31;
  const auto traffic = GenerateOpenLoopTraffic(tc);
  ASSERT_GT(traffic.size(), 8u);

  ServeOptions so;
  so.scheduler.max_running = 4;
  so.scheduler.max_step_tokens = 16;
  so.scheduler.max_seq = cfg.seq;
  so.scheduler.record_metrics = false;
  so.admission.record_metrics = false;
  const ServeSummary sum = ServeLoop(eng, traffic, so);
  EXPECT_EQ(sum.completed, static_cast<std::int64_t>(traffic.size()));

  // Every batched, possibly-evicted result equals an isolated greedy
  // decode of the same prompt on a fresh engine.
  InferenceEngine solo(TestOptions(), {});
  solo.LoadFullWeights(full);
  for (const RequestOutcome& o : sum.outcomes) {
    ASSERT_TRUE(o.completed);
    const ServeRequest& r = traffic[o.id];
    const auto rows =
        DecodeLogits(solo, r.prompt, static_cast<int>(o.output.size()));
    for (std::size_t s = 0; s < o.output.size(); ++s) {
      std::int32_t best = 0;
      for (std::int64_t t = 1; t < cfg.vocab; ++t) {
        if (rows[s][static_cast<std::size_t>(t)] >
            rows[s][static_cast<std::size_t>(best)]) {
          best = static_cast<std::int32_t>(t);
        }
      }
      EXPECT_EQ(o.output[s], best)
          << "request " << o.id << " diverged at token " << s;
    }
  }
}

}  // namespace
}  // namespace zero::serve
