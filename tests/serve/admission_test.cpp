#include "serve/admission.hpp"

#include <gtest/gtest.h>

namespace zero::serve {
namespace {

ServeRequest Req(std::uint64_t id, std::int32_t tenant, std::size_t prompt,
                 std::int32_t max_new, double arrival) {
  ServeRequest r;
  r.id = id;
  r.tenant = tenant;
  r.prompt.assign(prompt, 1);
  r.max_new_tokens = max_new;
  r.arrival_s = arrival;
  return r;
}

AdmissionConfig Open() {
  AdmissionConfig c;
  c.record_metrics = false;
  return c;
}

TEST(Admission, FifoWithinOneTenant) {
  AdmissionController adm(Open());
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(adm.Offer(Req(i, 0, 4, 2, 0.0), 0.0), RejectReason::kNone);
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    auto r = adm.Next();
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->id, i);
  }
  EXPECT_FALSE(adm.Next().has_value());
}

TEST(Admission, RoundRobinAcrossTenantsUnderSkew) {
  AdmissionController adm(Open());
  // Tenant 0 floods with 10 requests; tenant 1 has 2.
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(adm.Offer(Req(i, 0, 4, 2, 0.0), 0.0), RejectReason::kNone);
  }
  EXPECT_EQ(adm.Offer(Req(100, 1, 4, 2, 0.0), 0.0), RejectReason::kNone);
  EXPECT_EQ(adm.Offer(Req(101, 1, 4, 2, 0.0), 0.0), RejectReason::kNone);

  // The sparse tenant is served every other dequeue, not after the flood.
  std::vector<std::uint64_t> order;
  for (int i = 0; i < 4; ++i) order.push_back(adm.Next()->id);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 100u);
  EXPECT_EQ(order[2], 1u);
  EXPECT_EQ(order[3], 101u);
}

TEST(Admission, QueueDepthBackpressure) {
  AdmissionConfig c = Open();
  c.max_queue_requests = 3;
  AdmissionController adm(c);
  for (std::uint64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(adm.Offer(Req(i, 0, 4, 2, 0.0), 0.0), RejectReason::kNone);
  }
  EXPECT_EQ(adm.Offer(Req(3, 0, 4, 2, 0.0), 0.0), RejectReason::kQueueFull);
  // Draining one makes room again.
  (void)adm.Next();
  EXPECT_EQ(adm.Offer(Req(4, 0, 4, 2, 0.0), 0.0), RejectReason::kNone);
}

TEST(Admission, BoundedLatencyRejection) {
  AdmissionConfig c = Open();
  c.max_expected_wait_s = 0.1;
  c.est_tokens_per_s = 100.0;  // 10 queued tokens = the whole budget
  AdmissionController adm(c);
  EXPECT_EQ(adm.Offer(Req(0, 0, 6, 4, 0.0), 0.0), RejectReason::kNone);
  // 10 queued + 10 more = 0.2s expected wait > 0.1s bound.
  EXPECT_EQ(adm.Offer(Req(1, 0, 6, 4, 0.0), 0.0),
            RejectReason::kLatencyBound);
  (void)adm.Next();
  EXPECT_EQ(adm.Offer(Req(2, 0, 6, 4, 0.0), 0.0), RejectReason::kNone);
}

TEST(Admission, TokenBucketThrottlesPerTenant) {
  AdmissionConfig c = Open();
  c.tenants = {TenantPolicy{100.0, 20.0},   // tenant 0: 100 tok/s, burst 20
               TenantPolicy{1e12, 1e12}};   // tenant 1: unlimited
  AdmissionController adm(c);
  // Two 10-token requests drain tenant 0's burst; the third throttles.
  EXPECT_EQ(adm.Offer(Req(0, 0, 6, 4, 0.0), 0.0), RejectReason::kNone);
  EXPECT_EQ(adm.Offer(Req(1, 0, 6, 4, 0.0), 0.0), RejectReason::kNone);
  EXPECT_EQ(adm.Offer(Req(2, 0, 6, 4, 0.0), 0.0), RejectReason::kThrottled);
  // Tenant 1 is unaffected by tenant 0's throttle.
  EXPECT_EQ(adm.Offer(Req(3, 1, 6, 4, 0.0), 0.0), RejectReason::kNone);
  // After 0.1s tenant 0 has refilled 10 tokens — exactly one request.
  EXPECT_EQ(adm.Offer(Req(4, 0, 6, 4, 0.1), 0.1), RejectReason::kNone);
  EXPECT_EQ(adm.Offer(Req(5, 0, 6, 4, 0.1), 0.1), RejectReason::kThrottled);
}

}  // namespace
}  // namespace zero::serve
