// End-to-end invariance: the same model, seed, and data must produce
// (near-)identical training trajectories no matter which ZeRO stage,
// MP layout, or ZeRO-R combination executes it — the paper's central
// "ZeRO changes where state lives, not what is computed" property, at
// the ZeroTrainer level.
#include <gtest/gtest.h>

#include <cmath>

#include "core/trainer.hpp"

namespace zero::core {
namespace {

TrainOptions BaseOptions() {
  TrainOptions opt;
  opt.model.vocab = 24;
  opt.model.seq = 8;
  opt.model.hidden = 16;
  opt.model.heads = 4;
  opt.model.layers = 2;
  opt.engine.loss_scale = 128.0f;
  opt.engine.adam.lr = 1e-3f;
  opt.cluster.dp_degree = 2;
  opt.cluster.mp_degree = 1;
  opt.batch_per_rank = 2;
  opt.steps = 4;
  opt.seed = 1234;
  return opt;
}

std::vector<float> LossesFor(TrainOptions opt) {
  const TrainResult result = TrainGpt(opt);
  EXPECT_FALSE(result.oom) << result.oom_message;
  return result.losses;
}

struct ConfigCase {
  const char* name;
  model::ZeroStage stage;
  int mp;
  bool ckpt, pa, cpu, md;
};

class CrossConfigTest : public ::testing::TestWithParam<ConfigCase> {};

TEST_P(CrossConfigTest, TrajectoryMatchesDdpBaseline) {
  const ConfigCase& c = GetParam();

  TrainOptions baseline = BaseOptions();
  baseline.engine.stage = model::ZeroStage::kNone;
  const std::vector<float> expected = LossesFor(baseline);

  TrainOptions opt = BaseOptions();
  opt.engine.stage = c.stage;
  opt.cluster.mp_degree = c.mp;
  opt.zero_r.activation_checkpointing = c.ckpt;
  opt.zero_r.partition_activations = c.pa;
  opt.zero_r.cpu_offload = c.cpu;
  opt.zero_r.defrag_arena = c.md;
  opt.zero_r.arena_bytes = 1ull << 20;
  const std::vector<float> actual = LossesFor(opt);

  ASSERT_EQ(actual.size(), expected.size());
  for (std::size_t s = 0; s < expected.size(); ++s) {
    // fp16 rounding and MP reduction reordering allow small drift; the
    // trajectories must stay within a few fp16 ulps of the loss scale.
    EXPECT_NEAR(actual[s], expected[s], 0.02f)
        << c.name << " step " << s;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLayouts, CrossConfigTest,
    ::testing::Values(
        ConfigCase{"stage1", model::ZeroStage::kOs, 1, false, false, false,
                   false},
        ConfigCase{"stage2", model::ZeroStage::kOsG, 1, false, false, false,
                   false},
        ConfigCase{"stage3", model::ZeroStage::kOsGP, 1, false, false, false,
                   false},
        ConfigCase{"stage2+ckpt", model::ZeroStage::kOsG, 1, true, false,
                   false, false},
        ConfigCase{"stage2+ckpt+md", model::ZeroStage::kOsG, 1, true, false,
                   false, true},
        ConfigCase{"stage2+mp2", model::ZeroStage::kOsG, 2, false, false,
                   false, false},
        ConfigCase{"stage2+mp2+pa", model::ZeroStage::kOsG, 2, true, true,
                   false, false},
        ConfigCase{"stage2+mp2+pacpu", model::ZeroStage::kOsG, 2, true, true,
                   true, false},
        ConfigCase{"stage3+mp2+pa", model::ZeroStage::kOsGP, 2, true, true,
                   false, false},
        ConfigCase{"stage1+mp4", model::ZeroStage::kOs, 4, true, true, false,
                   false}),
    [](const ::testing::TestParamInfo<ConfigCase>& info) {
      std::string name = info.param.name;
      for (char& ch : name) {
        if (ch == '+') ch = '_';
      }
      return name;
    });

TEST(CrossConfigMemoryTest, StageMemoryOrderingHoldsOnRealAllocators) {
  // Peak cached device memory must decrease monotonically with the
  // stage (activations held equal), on genuine allocator measurements.
  TrainOptions opt = BaseOptions();
  opt.cluster.dp_degree = 4;
  opt.batch_per_rank = 1;
  std::size_t peak[4];
  std::size_t states[4];
  int i = 0;
  for (model::ZeroStage stage :
       {model::ZeroStage::kNone, model::ZeroStage::kOs,
        model::ZeroStage::kOsG, model::ZeroStage::kOsGP}) {
    opt.engine.stage = stage;
    const TrainResult result = TrainGpt(opt);
    ASSERT_FALSE(result.oom);
    peak[i] = result.MaxPeakCached();
    states[i] = result.ranks[0].model_states.total();
    ++i;
  }
  EXPECT_GT(states[0], states[1]);
  EXPECT_GT(states[1], states[2]);
  EXPECT_GT(states[2], states[3]);
  EXPECT_GT(peak[0], peak[3]);
}

TEST(CrossConfigCommTest, Stage3CostsMoreDpTrafficThanStage2) {
  TrainOptions opt = BaseOptions();
  opt.engine.stage = model::ZeroStage::kOsG;
  const TrainResult s2 = TrainGpt(opt);
  opt.engine.stage = model::ZeroStage::kOsGP;
  const TrainResult s3 = TrainGpt(opt);
  ASSERT_FALSE(s2.oom);
  ASSERT_FALSE(s3.oom);
  // Sec 7: 3 Psi vs 2 Psi — stage 3 moves ~1.5x the bytes.
  const double ratio = static_cast<double>(s3.TotalDpBytesSent()) /
                       static_cast<double>(s2.TotalDpBytesSent());
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 1.7);
}

TEST(CrossConfigCommTest, MpTrafficScalesWithRecompute) {
  // Activation checkpointing adds the two recompute all-reduces per
  // block (Sec 8): MP volume grows by ~50% (4 -> 6 all-reduces).
  TrainOptions opt = BaseOptions();
  opt.cluster.mp_degree = 2;
  opt.engine.stage = model::ZeroStage::kOsG;
  opt.zero_r.activation_checkpointing = false;
  const TrainResult plain = TrainGpt(opt);
  opt.zero_r.activation_checkpointing = true;
  const TrainResult ckpt = TrainGpt(opt);
  ASSERT_FALSE(plain.oom);
  ASSERT_FALSE(ckpt.oom);
  const double ratio = static_cast<double>(ckpt.TotalMpBytesSent()) /
                       static_cast<double>(plain.TotalMpBytesSent());
  EXPECT_GT(ratio, 1.3);
  EXPECT_LT(ratio, 1.7);
}

TEST(CrossConfigTestExtra, AccumulationViaTrainerMatchesBiggerBatch) {
  // 2 micro-batches of 2 sequences with accumulation ~= a single batch
  // of 4 sequences (not bitwise in fp16, but the same trajectory class).
  TrainOptions big = BaseOptions();
  big.batch_per_rank = 4;
  big.steps = 2;
  const std::vector<float> big_losses = LossesFor(big);

  TrainOptions accum = BaseOptions();
  accum.batch_per_rank = 2;
  accum.steps = 4;  // 2 updates worth of micro-steps
  accum.engine.accumulation_steps = 2;
  const TrainResult result = TrainGpt(accum);
  ASSERT_FALSE(result.oom);

  // Both runs end with 2 optimizer updates; their final losses are in
  // the same neighbourhood (the corpora stream differently, so compare
  // only coarse agreement).
  EXPECT_NEAR(result.losses.back(), big_losses.back(), 0.2f);
}

}  // namespace
}  // namespace zero::core
