// Property tests for the packed GEMM: the micro-kernel path must agree
// with a naive triple loop for every transpose case, ragged shape, and
// alpha/beta combination, and must propagate NaN/Inf exactly (the fp16
// loss scaler detects overflow by seeing the NaNs come out).
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensor/kernels.hpp"

namespace zero::tensor {
namespace {

// Reference: direct evaluation of C = alpha * op(A) op(B) + beta * C.
void NaiveGemm(bool ta, bool tb, std::int64_t m, std::int64_t n,
               std::int64_t k, float alpha, const std::vector<float>& a,
               const std::vector<float>& b, float beta,
               std::vector<float>& c) {
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const float av = ta ? a[static_cast<std::size_t>(kk * m + i)]
                            : a[static_cast<std::size_t>(i * k + kk)];
        const float bv = tb ? b[static_cast<std::size_t>(j * k + kk)]
                            : b[static_cast<std::size_t>(kk * n + j)];
        acc += av * bv;
      }
      float& cv = c[static_cast<std::size_t>(i * n + j)];
      cv = alpha * acc + beta * cv;
    }
  }
}

std::vector<float> RandomVec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.NextGaussian();
  return v;
}

struct Shape {
  std::int64_t m, n, k;
};

TEST(GemmPropertyTest, MatchesNaiveAcrossShapesAndTransposes) {
  // Shapes straddle the small-GEMM fallback threshold and exercise
  // ragged micro-tile edges (m % 4, n % 32, k % 128 all nonzero).
  const Shape shapes[] = {
      {1, 1, 1},    {3, 5, 7},     {4, 32, 16},  {5, 33, 17},
      {17, 9, 40},  {31, 70, 19},  {64, 64, 64}, {65, 130, 129},
      {128, 33, 257},
  };
  const float alphas[] = {1.0f, 0.5f};
  const float betas[] = {0.0f, 1.0f, -0.25f};
  Rng rng(1234);
  for (const Shape& s : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        for (float alpha : alphas) {
          for (float beta : betas) {
            auto a = RandomVec(static_cast<std::size_t>(s.m * s.k), rng);
            auto b = RandomVec(static_cast<std::size_t>(s.k * s.n), rng);
            auto c0 = RandomVec(static_cast<std::size_t>(s.m * s.n), rng);
            std::vector<float> want = c0;
            NaiveGemm(ta, tb, s.m, s.n, s.k, alpha, a, b, beta, want);
            std::vector<float> got = c0;
            Gemm(ta, tb, s.m, s.n, s.k, alpha, a.data(), b.data(), beta,
                 got.data());
            // The packed kernel reassociates the k loop across kc
            // panels, so allow relative rounding slack.
            for (std::size_t i = 0; i < want.size(); ++i) {
              const float tol =
                  1e-4f * (1.0f + std::fabs(want[i])) *
                  std::sqrt(static_cast<float>(s.k));
              ASSERT_NEAR(want[i], got[i], tol)
                  << "m=" << s.m << " n=" << s.n << " k=" << s.k
                  << " ta=" << ta << " tb=" << tb << " alpha=" << alpha
                  << " beta=" << beta << " i=" << i;
            }
          }
        }
      }
    }
  }
}

// Regression for the seed kernel's `if (aik == 0.0f) continue;` skip:
// a zero in A times an Inf in B must produce NaN in C, not silently
// drop the term. Checked on both the small fallback and the packed
// path, for every transpose case.
TEST(GemmPropertyTest, ZeroTimesInfProducesNan) {
  const float inf = std::numeric_limits<float>::infinity();
  const Shape shapes[] = {{4, 5, 6}, {48, 96, 160}};  // small / packed
  for (const Shape& s : shapes) {
    for (bool ta : {false, true}) {
      for (bool tb : {false, true}) {
        // A all zeros, B all Inf: every dot product is a sum of 0*Inf.
        std::vector<float> a(static_cast<std::size_t>(s.m * s.k), 0.0f);
        std::vector<float> b(static_cast<std::size_t>(s.k * s.n), inf);
        std::vector<float> c(static_cast<std::size_t>(s.m * s.n), 0.0f);
        Gemm(ta, tb, s.m, s.n, s.k, 1.0f, a.data(), b.data(), 0.0f,
             c.data());
        for (float v : c) {
          ASSERT_TRUE(std::isnan(v))
              << "m=" << s.m << " ta=" << ta << " tb=" << tb;
        }
      }
    }
  }
}

// A single Inf in B must poison exactly the output column(s) that read
// it (through NaN where multiplied by 0, or Inf otherwise) and leave
// the rest finite.
TEST(GemmPropertyTest, SingleInfPoisonsOnlyItsColumn) {
  const std::int64_t m = 40, n = 64, k = 130;  // packed path
  Rng rng(99);
  auto a = RandomVec(static_cast<std::size_t>(m * k), rng);
  auto b = RandomVec(static_cast<std::size_t>(k * n), rng);
  const std::int64_t bad_col = 37;
  b[static_cast<std::size_t>(5 * n + bad_col)] =
      std::numeric_limits<float>::infinity();
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      const float v = c[static_cast<std::size_t>(i * n + j)];
      if (j == bad_col) {
        EXPECT_FALSE(std::isfinite(v)) << "row " << i;
      } else {
        EXPECT_TRUE(std::isfinite(v)) << "row " << i << " col " << j;
      }
    }
  }
}

}  // namespace
}  // namespace zero::tensor
