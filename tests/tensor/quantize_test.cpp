// Blockwise int8 quantizer (ZeRO++ qwZ/qgZ wire format): round-trip
// error bounds, edge-case policy (NaN/Inf poison blocks, absmax == 0),
// and bit-equality between the vectorized and scalar reference paths.
#include "tensor/quantize.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include "common/half.hpp"
#include "tensor/kernels.hpp"

namespace zero::tensor {
namespace {

std::vector<std::byte> Wire(std::int64_t n, std::int64_t block) {
  return std::vector<std::byte>(QuantWireBytes(n, block));
}

TEST(QuantizeTest, WireBytesLayout) {
  // 2 bytes of fp16 scale per block + 1 byte per element.
  EXPECT_EQ(QuantBlocks(0, 64), 0);
  EXPECT_EQ(QuantBlocks(1, 64), 1);
  EXPECT_EQ(QuantBlocks(64, 64), 1);
  EXPECT_EQ(QuantBlocks(65, 64), 2);
  EXPECT_EQ(QuantWireBytes(0, 64), 0u);
  EXPECT_EQ(QuantWireBytes(130, 64), 2u * 3u + 130u);
}

TEST(QuantizeTest, RoundTripErrorBound) {
  // |x - dq(q(x))| <= scale/2 + |x|*eps_fp16-ish slack per element, with
  // scale = fp16(absmax/127). Use the loose but sufficient bound
  // scale * 0.51 (0.5 for rounding + fp16 scale representation slack).
  std::mt19937 rng(7);
  for (const std::int64_t block : {1L, 3L, 64L, 256L}) {
    for (const std::int64_t n : {1L, 5L, 64L, 257L, 1000L}) {
      std::uniform_real_distribution<float> dist(-3.0f, 3.0f);
      std::vector<float> x(static_cast<std::size_t>(n));
      for (float& v : x) v = dist(rng);
      auto wire = Wire(n, block);
      QuantizeF32(x.data(), n, block, wire.data());
      std::vector<float> y(static_cast<std::size_t>(n), -1.0f);
      DequantizeF32(wire.data(), n, block, y.data());
      const std::int64_t blocks = QuantBlocks(n, block);
      for (std::int64_t b = 0; b < blocks; ++b) {
        const std::int64_t off = b * block;
        const std::int64_t len = std::min(block, n - off);
        float amax = 0.0f;
        for (std::int64_t i = 0; i < len; ++i) {
          amax = std::max(amax, std::fabs(x[static_cast<std::size_t>(off + i)]));
        }
        const float scale = Half(amax / 127.0f).ToFloat();
        for (std::int64_t i = 0; i < len; ++i) {
          const auto k = static_cast<std::size_t>(off + i);
          EXPECT_NEAR(y[k], x[k], scale * 0.51f + 1e-7f)
              << "block=" << block << " n=" << n << " i=" << k;
        }
      }
    }
  }
}

TEST(QuantizeTest, ExhaustiveHalfRoundTripBound) {
  // Every finite fp16 magnitude round-trips within half a code step of
  // its block scale, exhaustively over the positive half-line.
  const std::int64_t block = 64;
  std::vector<Half> x;
  for (std::uint32_t bits = 0; bits < 0x7C00u; ++bits) {
    x.push_back(Half::FromBits(static_cast<std::uint16_t>(bits)));
  }
  const auto n = static_cast<std::int64_t>(x.size());
  auto wire = Wire(n, block);
  QuantizeHalf(x.data(), n, block, wire.data());
  std::vector<Half> y(x.size());
  DequantizeHalf(wire.data(), n, block, y.data());
  for (std::int64_t b = 0; b < QuantBlocks(n, block); ++b) {
    const std::int64_t off = b * block;
    const std::int64_t len = std::min(block, n - off);
    float amax = 0.0f;
    for (std::int64_t i = 0; i < len; ++i) {
      amax = std::max(amax,
                      std::fabs(x[static_cast<std::size_t>(off + i)].ToFloat()));
    }
    const float scale = Half(amax / 127.0f).ToFloat();
    for (std::int64_t i = 0; i < len; ++i) {
      const auto k = static_cast<std::size_t>(off + i);
      // fp16 narrowing on the way out adds at most half an fp16 ulp, and
      // blocks whose amax/127 underflows the fp16 scale snap to exact 0
      // (error up to the subnormal range, < 6.2e-5 — the policy above).
      const float tol =
          scale * 0.51f + std::fabs(x[k].ToFloat()) * 1e-3f + 6.2e-5f;
      EXPECT_NEAR(y[k].ToFloat(), x[k].ToFloat(), tol) << "bits index " << k;
    }
  }
}

TEST(QuantizeTest, ZeroAndTinyBlocks) {
  // absmax == 0 encodes scale 0 / codes 0 and round-trips to exact 0;
  // subnormal-tiny values whose amax/127 underflows fp16 also land in
  // the zero class (the values are below fp16 resolution anyway).
  const std::int64_t n = 128;
  std::vector<float> x(static_cast<std::size_t>(n), 0.0f);
  x[70] = 1e-9f;  // amax/127 ~ 8e-12 underflows fp16 -> zero scale
  auto wire = Wire(n, 64);
  QuantizeF32(x.data(), n, 64, wire.data());
  std::vector<float> y(static_cast<std::size_t>(n), 42.0f);
  DequantizeF32(wire.data(), n, 64, y.data());
  for (float v : y) EXPECT_EQ(v, 0.0f);
}

TEST(QuantizeTest, NonFinitePoisonsWholeBlockOnly) {
  // A NaN (or Inf) anywhere in a block turns the whole block non-finite
  // after dequantize — overflow detection must survive the wire — while
  // neighbouring blocks stay exact.
  const std::int64_t n = 192;  // 3 blocks of 64
  std::vector<float> x(static_cast<std::size_t>(n), 1.0f);
  x[70] = std::numeric_limits<float>::quiet_NaN();
  x[130] = -std::numeric_limits<float>::infinity();
  auto wire = Wire(n, 64);
  QuantizeF32(x.data(), n, 64, wire.data());
  std::vector<float> y(static_cast<std::size_t>(n));
  DequantizeF32(wire.data(), n, 64, y.data());
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(std::isfinite(y[static_cast<std::size_t>(i)]));
  }
  for (std::int64_t i = 64; i < 128; ++i) {
    EXPECT_TRUE(std::isnan(y[static_cast<std::size_t>(i)])) << i;
  }
  for (std::int64_t i = 128; i < 192; ++i) {
    EXPECT_TRUE(std::isinf(y[static_cast<std::size_t>(i)])) << i;
  }
}

TEST(QuantizeTest, HalfPayloadPoisonAndSaturation) {
  // fp16 payloads: Inf/NaN inputs poison their block; max-magnitude
  // finite fp16 values saturate to the +-127 codes and round-trip.
  const std::int64_t n = 128;
  std::vector<Half> x(static_cast<std::size_t>(n), Half(0.5f));
  x[3] = Half::FromBits(0x7C00);   // +Inf in block 0
  x[64] = Half(65504.0f);          // fp16 max in block 1
  x[65] = Half(-65504.0f);
  auto wire = Wire(n, 64);
  QuantizeHalf(x.data(), n, 64, wire.data());
  std::vector<Half> y(static_cast<std::size_t>(n));
  DequantizeHalf(wire.data(), n, 64, y.data());
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_FALSE(std::isfinite(y[static_cast<std::size_t>(i)].ToFloat())) << i;
  }
  EXPECT_NEAR(y[64].ToFloat(), 65504.0f, 65504.0f * 0.01f);
  EXPECT_NEAR(y[65].ToFloat(), -65504.0f, 65504.0f * 0.01f);
}

TEST(QuantizeTest, VectorizedMatchesScalarBitExactly) {
  // The AVX-512 and scalar paths must produce byte-identical wire and
  // bit-identical dequantized floats: SPMD ranks on heterogeneous
  // hardware must agree on the lossy values.
  std::mt19937 rng(123);
  std::uniform_real_distribution<float> dist(-10.0f, 10.0f);
  for (const std::int64_t n : {1L, 16L, 17L, 63L, 64L, 65L, 1000L, 4096L}) {
    std::vector<float> x(static_cast<std::size_t>(n));
    for (float& v : x) v = dist(rng);
    // Sprinkle in edge values.
    if (n >= 16) {
      x[1] = 0.0f;
      x[2] = std::numeric_limits<float>::quiet_NaN();
      x[15] = std::numeric_limits<float>::infinity();
    }
    for (const std::int64_t block : {1L, 7L, 64L, 512L}) {
      auto wire_v = Wire(n, block);
      auto wire_s = Wire(n, block);
      QuantizeF32(x.data(), n, block, wire_v.data());
      QuantizeF32Scalar(x.data(), n, block, wire_s.data());
      ASSERT_EQ(std::memcmp(wire_v.data(), wire_s.data(), wire_v.size()), 0)
          << "wire differs n=" << n << " block=" << block;
      std::vector<float> dq_v(static_cast<std::size_t>(n));
      std::vector<float> dq_s(static_cast<std::size_t>(n));
      DequantizeF32(wire_v.data(), n, block, dq_v.data());
      DequantizeF32Scalar(wire_s.data(), n, block, dq_s.data());
      ASSERT_EQ(std::memcmp(dq_v.data(), dq_s.data(),
                            dq_v.size() * sizeof(float)),
                0)
          << "dequant differs n=" << n << " block=" << block;
      std::vector<float> acc_v(static_cast<std::size_t>(n), 0.25f);
      std::vector<float> acc_s(static_cast<std::size_t>(n), 0.25f);
      DequantizeAddF32(wire_v.data(), n, block, acc_v.data());
      DequantizeAddF32Scalar(wire_s.data(), n, block, acc_s.data());
      ASSERT_EQ(std::memcmp(acc_v.data(), acc_s.data(),
                            acc_v.size() * sizeof(float)),
                0)
          << "dequant-add differs n=" << n << " block=" << block;
    }
  }
}

TEST(QuantizeTest, DequantizeAddAccumulates) {
  const std::int64_t n = 100;
  std::vector<float> x(static_cast<std::size_t>(n), 2.0f);
  auto wire = Wire(n, 64);
  QuantizeF32(x.data(), n, 64, wire.data());
  std::vector<float> acc(static_cast<std::size_t>(n), 1.0f);
  DequantizeAddF32(wire.data(), n, 64, acc.data());
  DequantizeAddF32(wire.data(), n, 64, acc.data());
  for (float v : acc) EXPECT_NEAR(v, 5.0f, 0.05f);
}

}  // namespace
}  // namespace zero::tensor
