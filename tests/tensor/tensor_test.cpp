#include "tensor/tensor.hpp"

#include <gtest/gtest.h>

namespace zero::tensor {
namespace {

TEST(TensorTest, HeapTensorBasics) {
  Tensor t = Tensor::Heap({2, 3}, DType::kF32);
  EXPECT_EQ(t.numel(), 6);
  EXPECT_EQ(t.nbytes(), 24u);
  t.FillConstant(2.5f);
  for (float v : t.f32()) EXPECT_EQ(v, 2.5f);
}

TEST(TensorTest, DeviceTensorConsumesDeviceMemory) {
  alloc::DeviceMemory dev(1 << 20, "t");
  alloc::CachingAllocator cache(dev);
  {
    Tensor t = Tensor::Device(cache, {100}, DType::kF16);
    EXPECT_EQ(t.nbytes(), 200u);
    EXPECT_GE(dev.Stats().in_use, 200u);
    t.FillConstant(1.0f);
    EXPECT_EQ(t.f16()[0].ToFloat(), 1.0f);
  }
  // Released to the cache, still held from the device.
  EXPECT_EQ(cache.Stats().live_bytes, 0u);
}

TEST(TensorTest, ArenaTensor) {
  alloc::DeviceMemory dev(1 << 20, "t");
  alloc::Arena arena(dev, 4096, "a");
  Tensor t = Tensor::InArena(arena, {10}, DType::kF32);
  t.FillConstant(3.0f);
  EXPECT_EQ(t.f32()[9], 3.0f);
  EXPECT_GE(arena.used(), 40u);
}

TEST(TensorTest, DtypeConversionCopy) {
  Tensor a = Tensor::Heap({4}, DType::kF32);
  a.f32()[0] = 1.5f;
  a.f32()[1] = -2.25f;
  a.f32()[2] = 0.0f;
  a.f32()[3] = 100.0f;
  Tensor b = Tensor::Heap({4}, DType::kF16);
  b.CopyFrom(a);
  Tensor c = Tensor::Heap({4}, DType::kF32);
  c.CopyFrom(b);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(c.f32()[i], a.f32()[i]);  // all exactly representable
  }
}

TEST(TensorTest, WrongDtypeAccessThrows) {
  Tensor t = Tensor::Heap({2}, DType::kF16);
  EXPECT_THROW((void)t.f32(), Error);
}

TEST(TensorTest, CopyFromRejectsSizeMismatch) {
  Tensor a = Tensor::Heap({2}, DType::kF32);
  Tensor b = Tensor::Heap({3}, DType::kF32);
  EXPECT_THROW(b.CopyFrom(a), Error);
}

TEST(TensorTest, ReleaseStorageFreesEarly) {
  alloc::DeviceMemory dev(1 << 20, "t");
  alloc::CachingAllocator cache(dev);
  Tensor t = Tensor::Device(cache, {1000}, DType::kF32);
  EXPECT_TRUE(t.has_storage());
  t.ReleaseStorage();
  EXPECT_FALSE(t.has_storage());
  EXPECT_EQ(cache.Stats().live_bytes, 0u);
  EXPECT_THROW((void)t.raw(), Error);
}

TEST(TensorTest, GaussianFillIsDeterministic) {
  Rng r1(5);
  Rng r2(5);
  Tensor a = Tensor::Heap({64}, DType::kF32);
  Tensor b = Tensor::Heap({64}, DType::kF32);
  a.FillGaussian(r1, 0.1f);
  b.FillGaussian(r2, 0.1f);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(a.f32()[i], b.f32()[i]);
}

TEST(TensorTest, AtAndSetWorkAcrossDtypes) {
  Tensor t = Tensor::Heap({3}, DType::kF16);
  t.Set(1, 2.5f);
  EXPECT_EQ(t.At(1), 2.5f);
  EXPECT_THROW((void)t.At(3), Error);
}

}  // namespace
}  // namespace zero::tensor
