// The kernels' determinism contract: bitwise-identical results at any
// intra-op worker count. Chunk boundaries depend only on the problem
// shape, each output element is produced by one chunk, and reduction
// partials combine in chunk-index order — so 1 worker, N workers, and
// the serial fallback must agree exactly, which is what keeps the ZeRO
// stage-equivalence tests exact when the pool is enabled.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "optim/adam.hpp"
#include "tensor/kernels.hpp"
#include "tensor/parallel_for.hpp"

namespace zero::tensor {
namespace {

std::vector<float> RandomVec(std::size_t n, Rng& rng) {
  std::vector<float> v(n);
  for (auto& x : v) x = rng.NextGaussian();
  return v;
}

// Runs `fn` (which must write its float results through the returned
// vector) at each worker count and asserts all outputs are bitwise
// identical to the serial run.
template <typename Fn>
void ExpectBitwiseStable(const Fn& fn) {
  std::vector<float> want;
  {
    IntraOpWorkersGuard guard(1);
    want = fn();
  }
  for (int workers : {2, 3, 4}) {
    IntraOpWorkersGuard guard(workers);
    const std::vector<float> got = fn();
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      ASSERT_EQ(want[i], got[i]) << "workers=" << workers << " i=" << i;
    }
  }
}

TEST(DeterminismTest, GemmBitwiseAcrossWorkerCounts) {
  Rng rng(7);
  const std::int64_t m = 70, n = 90, k = 150;  // packed path
  const auto a = RandomVec(static_cast<std::size_t>(m * k), rng);
  const auto b = RandomVec(static_cast<std::size_t>(k * n), rng);
  const auto c0 = RandomVec(static_cast<std::size_t>(m * n), rng);
  for (bool ta : {false, true}) {
    for (bool tb : {false, true}) {
      ExpectBitwiseStable([&] {
        std::vector<float> c = c0;
        Gemm(ta, tb, m, n, k, 0.7f, a.data(), b.data(), 0.3f, c.data());
        return c;
      });
    }
  }
}

TEST(DeterminismTest, LayerNormForwardBackwardBitwise) {
  Rng rng(11);
  const std::int64_t rows = 333, cols = 65;
  const auto x = RandomVec(static_cast<std::size_t>(rows * cols), rng);
  const auto gamma = RandomVec(static_cast<std::size_t>(cols), rng);
  const auto beta = RandomVec(static_cast<std::size_t>(cols), rng);
  const auto dy = RandomVec(static_cast<std::size_t>(rows * cols), rng);
  ExpectBitwiseStable([&] {
    std::vector<float> y(static_cast<std::size_t>(rows * cols));
    std::vector<float> mean(static_cast<std::size_t>(rows));
    std::vector<float> rstd(static_cast<std::size_t>(rows));
    std::vector<float> dx(y.size());
    std::vector<float> dgamma(static_cast<std::size_t>(cols), 0.5f);
    std::vector<float> dbeta(static_cast<std::size_t>(cols), -0.5f);
    LayerNormForward(x.data(), gamma.data(), beta.data(), y.data(),
                     mean.data(), rstd.data(), rows, cols, 1e-5f);
    LayerNormBackward(x.data(), gamma.data(), mean.data(), rstd.data(),
                      dy.data(), dx.data(), dgamma.data(), dbeta.data(),
                      rows, cols);
    std::vector<float> out;
    for (auto& v : {y, dx, dgamma, dbeta}) {
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  });
}

TEST(DeterminismTest, FusedBiasActivationBitwise) {
  Rng rng(13);
  const std::int64_t rows = 257, cols = 48;
  const auto x = RandomVec(static_cast<std::size_t>(rows * cols), rng);
  const auto bias = RandomVec(static_cast<std::size_t>(cols), rng);
  const auto dy = RandomVec(static_cast<std::size_t>(rows * cols), rng);
  ExpectBitwiseStable([&] {
    std::vector<float> z(x.size()), y(x.size()), dx(x.size());
    std::vector<float> dbias(static_cast<std::size_t>(cols), 0.0f);
    BiasGeluForward(x.data(), bias.data(), z.data(), y.data(), rows, cols);
    BiasGeluBackward(z.data(), dy.data(), dx.data(), dbias.data(), rows,
                     cols);
    std::vector<float> out;
    for (auto& v : {z, y, dx, dbias}) {
      out.insert(out.end(), v.begin(), v.end());
    }
    return out;
  });
}

TEST(DeterminismTest, ReductionsBitwise) {
  Rng rng(17);
  const std::int64_t n = 100000;  // several kRedChunk chunks
  const auto a = RandomVec(static_cast<std::size_t>(n), rng);
  const auto b = RandomVec(static_cast<std::size_t>(n), rng);
  std::vector<Half> h(static_cast<std::size_t>(n));
  FloatToHalf(a.data(), h.data(), h.size());
  ExpectBitwiseStable([&] {
    return std::vector<float>{SquaredNorm(a.data(), n),
                              SquaredNormF16(h.data(), n),
                              Dot(a.data(), b.data(), n)};
  });
}

TEST(DeterminismTest, CrossEntropyBitwise) {
  Rng rng(19);
  const std::int64_t rows = 100, vocab = 73;
  const auto logits = RandomVec(static_cast<std::size_t>(rows * vocab), rng);
  std::vector<std::int32_t> targets(static_cast<std::size_t>(rows));
  for (std::size_t i = 0; i < targets.size(); ++i) {
    targets[i] = static_cast<std::int32_t>(
        rng.NextBelow(static_cast<std::uint64_t>(vocab)));
  }
  ExpectBitwiseStable([&] {
    std::vector<float> dlogits(logits.size());
    const float loss = CrossEntropyLoss(logits.data(), targets.data(), rows,
                                        vocab, dlogits.data());
    std::vector<float> out{loss};
    out.insert(out.end(), dlogits.begin(), dlogits.end());
    return out;
  });
}

TEST(DeterminismTest, AdamUpdateBitwise) {
  Rng rng(23);
  const std::int64_t n = 20000;  // several kAdamChunk chunks
  const auto master0 = RandomVec(static_cast<std::size_t>(n), rng);
  const auto grad = RandomVec(static_cast<std::size_t>(n), rng);
  optim::AdamConfig cfg;
  cfg.weight_decay = 0.01f;
  ExpectBitwiseStable([&] {
    std::vector<float> master = master0;
    std::vector<float> m(static_cast<std::size_t>(n), 0.0f);
    std::vector<float> v(static_cast<std::size_t>(n), 0.0f);
    for (std::int64_t t = 1; t <= 3; ++t) {
      optim::AdamUpdate(cfg, t, master, grad, m, v);
    }
    std::vector<float> out;
    for (auto& s : {master, m, v}) out.insert(out.end(), s.begin(), s.end());
    return out;
  });
}

TEST(DeterminismTest, CastRoundTripBitwise) {
  Rng rng(29);
  const std::int64_t n = 50000;
  const auto src = RandomVec(static_cast<std::size_t>(n), rng);
  ExpectBitwiseStable([&] {
    std::vector<Half> h(static_cast<std::size_t>(n));
    std::vector<float> back(static_cast<std::size_t>(n));
    CastFloatToHalf(src.data(), h.data(), n);
    CastHalfToFloat(h.data(), back.data(), n);
    return back;
  });
}

}  // namespace
}  // namespace zero::tensor
