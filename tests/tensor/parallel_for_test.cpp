#include "tensor/parallel_for.hpp"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace zero::tensor {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int workers : {1, 2, 4}) {
    IntraOpWorkersGuard guard(workers);
    for (std::int64_t grain : {1, 3, 7, 100}) {
      std::vector<std::atomic<int>> hits(103);
      ParallelFor(0, 103, grain, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i) {
          hits[static_cast<std::size_t>(i)].fetch_add(1);
        }
      });
      for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
    }
  }
}

TEST(ParallelForTest, ChunkBoundariesDependOnlyOnShape) {
  // The (b, e) ranges handed to fn are part of the numeric contract:
  // they must be identical at every worker count.
  auto collect = [](int workers) {
    IntraOpWorkersGuard guard(workers);
    std::mutex mu;
    std::set<std::pair<std::int64_t, std::int64_t>> chunks;
    ParallelFor(5, 250, 17, [&](std::int64_t b, std::int64_t e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.emplace(b, e);
    });
    return chunks;
  };
  const auto serial = collect(1);
  EXPECT_EQ(serial, collect(2));
  EXPECT_EQ(serial, collect(4));
  // Sanity: chunks start at `begin` and step by grain.
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial.begin()->first, 5);
  EXPECT_EQ(std::prev(serial.end())->second, 250);
}

TEST(ParallelForTest, EmptyAndSingleChunkRanges) {
  IntraOpWorkersGuard guard(4);
  int calls = 0;
  ParallelFor(10, 10, 1, [&](std::int64_t, std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  ParallelFor(0, 5, 100, [&](std::int64_t b, std::int64_t e) {
    ++calls;
    EXPECT_EQ(b, 0);
    EXPECT_EQ(e, 5);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelForTest, ExceptionPropagatesToCaller) {
  for (int workers : {1, 4}) {
    IntraOpWorkersGuard guard(workers);
    EXPECT_THROW(
        ParallelFor(0, 100, 10,
                    [&](std::int64_t b, std::int64_t) {
                      if (b == 50) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // The pool must still be usable after an exception.
    std::atomic<int> n{0};
    ParallelFor(0, 100, 10,
                [&](std::int64_t, std::int64_t) { n.fetch_add(1); });
    EXPECT_EQ(n.load(), 10);
  }
}

TEST(ParallelForTest, NestedCallsRunSerially) {
  IntraOpWorkersGuard guard(4);
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(0, 8, 1, [&](std::int64_t ob, std::int64_t oe) {
    for (std::int64_t o = ob; o < oe; ++o) {
      // Inner call must degrade to serial on this thread instead of
      // deadlocking on or oversubscribing the pool.
      ParallelFor(0, 8, 1, [&](std::int64_t ib, std::int64_t ie) {
        for (std::int64_t i = ib; i < ie; ++i) {
          hits[static_cast<std::size_t>(o * 8 + i)].fetch_add(1);
        }
      });
    }
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ParallelForTest, WorkerBudgetClampAndReset) {
  const int prev = IntraOpWorkers();
  SetIntraOpWorkers(1 << 20);
  EXPECT_LE(IntraOpWorkers(), HardwareConcurrency() * 4);
  SetIntraOpWorkers(0);  // back to the env default
  EXPECT_GE(IntraOpWorkers(), 1);
  SetIntraOpWorkers(prev);
}

}  // namespace
}  // namespace zero::tensor
