#include "tensor/kernels.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "common/rng.hpp"

namespace zero::tensor {
namespace {

std::vector<float> RandVec(std::size_t n, std::uint64_t seed,
                           float scale = 1.0f) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (float& x : v) x = rng.NextGaussian() * scale;
  return v;
}

// Central-difference check: for scalar L = sum(w .* f(x)), compare
// analytic dL/dx against finite differences.
void CheckGradient(const std::function<float(const std::vector<float>&)>& f,
                   const std::vector<float>& x,
                   const std::vector<float>& analytic_dx, float tol) {
  ASSERT_EQ(x.size(), analytic_dx.size());
  const float eps = 1e-3f;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<float> xp = x;
    std::vector<float> xm = x;
    xp[i] += eps;
    xm[i] -= eps;
    const float numeric = (f(xp) - f(xm)) / (2 * eps);
    EXPECT_NEAR(analytic_dx[i], numeric,
                tol * std::max(1.0f, std::abs(numeric)))
        << "index " << i;
  }
}

TEST(GemmTest, AllTransposeCombinationsAgainstNaive) {
  const std::int64_t m = 5, n = 4, k = 3;
  auto a_mn = RandVec(static_cast<std::size_t>(m * k), 1);
  auto b_kn = RandVec(static_cast<std::size_t>(k * n), 2);

  // Reference NN.
  std::vector<float> ref(static_cast<std::size_t>(m * n), 0.0f);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t kk = 0; kk < k; ++kk)
        ref[static_cast<std::size_t>(i * n + j)] +=
            a_mn[static_cast<std::size_t>(i * k + kk)] *
            b_kn[static_cast<std::size_t>(kk * n + j)];

  // NN
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
  Gemm(false, false, m, n, k, 1.0f, a_mn.data(), b_kn.data(), 0.0f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-5f);

  // NT: B stored as [n, k].
  std::vector<float> b_nk(static_cast<std::size_t>(n * k));
  for (std::int64_t kk = 0; kk < k; ++kk)
    for (std::int64_t j = 0; j < n; ++j)
      b_nk[static_cast<std::size_t>(j * k + kk)] =
          b_kn[static_cast<std::size_t>(kk * n + j)];
  std::fill(c.begin(), c.end(), 0.0f);
  Gemm(false, true, m, n, k, 1.0f, a_mn.data(), b_nk.data(), 0.0f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-5f);

  // TN: A stored as [k, m].
  std::vector<float> a_km(static_cast<std::size_t>(k * m));
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t kk = 0; kk < k; ++kk)
      a_km[static_cast<std::size_t>(kk * m + i)] =
          a_mn[static_cast<std::size_t>(i * k + kk)];
  std::fill(c.begin(), c.end(), 0.0f);
  Gemm(true, false, m, n, k, 1.0f, a_km.data(), b_kn.data(), 0.0f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-5f);

  // TT
  std::fill(c.begin(), c.end(), 0.0f);
  Gemm(true, true, m, n, k, 1.0f, a_km.data(), b_nk.data(), 0.0f, c.data());
  for (std::size_t i = 0; i < c.size(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-5f);
}

TEST(GemmTest, AlphaBetaSemantics) {
  const std::int64_t m = 2, n = 2, k = 2;
  std::vector<float> a{1, 2, 3, 4};
  std::vector<float> b{1, 0, 0, 1};  // identity
  std::vector<float> c{10, 10, 10, 10};
  Gemm(false, false, m, n, k, 2.0f, a.data(), b.data(), 1.0f, c.data());
  EXPECT_EQ(c[0], 12.0f);  // 10 + 2*1
  EXPECT_EQ(c[3], 18.0f);  // 10 + 2*4
  Gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  EXPECT_EQ(c[0], 1.0f);  // beta=0 overwrites
}

TEST(GeluTest, ForwardKnownValues) {
  std::vector<float> x{0.0f, 1.0f, -1.0f, 3.0f};
  std::vector<float> y(4);
  GeluForward(x.data(), y.data(), 4);
  EXPECT_NEAR(y[0], 0.0f, 1e-6f);
  EXPECT_NEAR(y[1], 0.8412f, 1e-3f);
  EXPECT_NEAR(y[2], -0.1588f, 1e-3f);
  EXPECT_NEAR(y[3], 2.9964f, 1e-3f);
}

TEST(GeluTest, BackwardMatchesFiniteDifference) {
  auto x = RandVec(8, 3);
  auto w = RandVec(8, 4);
  std::vector<float> dx(8);
  GeluBackward(x.data(), w.data(), dx.data(), 8);
  CheckGradient(
      [&](const std::vector<float>& xv) {
        std::vector<float> y(8);
        GeluForward(xv.data(), y.data(), 8);
        float loss = 0;
        for (int i = 0; i < 8; ++i) loss += w[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
        return loss;
      },
      x, dx, 2e-2f);
}

TEST(LayerNormTest, ForwardNormalizesRows) {
  const std::int64_t rows = 3, cols = 16;
  auto x = RandVec(static_cast<std::size_t>(rows * cols), 5, 2.0f);
  std::vector<float> gamma(static_cast<std::size_t>(cols), 1.0f);
  std::vector<float> beta(static_cast<std::size_t>(cols), 0.0f);
  std::vector<float> y(x.size()), mean(3), rstd(3);
  LayerNormForward(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                   rstd.data(), rows, cols, 1e-5f);
  for (std::int64_t r = 0; r < rows; ++r) {
    float mu = 0, var = 0;
    for (std::int64_t c = 0; c < cols; ++c) mu += y[static_cast<std::size_t>(r * cols + c)];
    mu /= cols;
    for (std::int64_t c = 0; c < cols; ++c) {
      const float d = y[static_cast<std::size_t>(r * cols + c)] - mu;
      var += d * d;
    }
    var /= cols;
    EXPECT_NEAR(mu, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
  }
}

TEST(LayerNormTest, BackwardMatchesFiniteDifference) {
  const std::int64_t rows = 2, cols = 6;
  const std::size_t n = static_cast<std::size_t>(rows * cols);
  auto x = RandVec(n, 6);
  auto gamma = RandVec(static_cast<std::size_t>(cols), 7, 0.5f);
  for (float& g : gamma) g += 1.0f;
  auto beta = RandVec(static_cast<std::size_t>(cols), 8, 0.1f);
  auto w = RandVec(n, 9);

  auto loss_fn = [&](const std::vector<float>& xv, const std::vector<float>& gv,
                     const std::vector<float>& bv) {
    std::vector<float> y(n), mean(2), rstd(2);
    LayerNormForward(xv.data(), gv.data(), bv.data(), y.data(), mean.data(),
                     rstd.data(), rows, cols, 1e-5f);
    float loss = 0;
    for (std::size_t i = 0; i < n; ++i) loss += w[i] * y[i];
    return loss;
  };

  std::vector<float> y(n), mean(2), rstd(2);
  LayerNormForward(x.data(), gamma.data(), beta.data(), y.data(), mean.data(),
                   rstd.data(), rows, cols, 1e-5f);
  std::vector<float> dx(n), dgamma(static_cast<std::size_t>(cols), 0.0f),
      dbeta(static_cast<std::size_t>(cols), 0.0f);
  LayerNormBackward(x.data(), gamma.data(), mean.data(), rstd.data(), w.data(),
                    dx.data(), dgamma.data(), dbeta.data(), rows, cols);

  CheckGradient([&](const std::vector<float>& xv) { return loss_fn(xv, gamma, beta); },
                x, dx, 2e-2f);
  CheckGradient([&](const std::vector<float>& gv) { return loss_fn(x, gv, beta); },
                gamma, dgamma, 2e-2f);
  CheckGradient([&](const std::vector<float>& bv) { return loss_fn(x, gamma, bv); },
                beta, dbeta, 2e-2f);
}

TEST(SoftmaxTest, RowsSumToOne) {
  auto x = RandVec(24, 10, 3.0f);
  SoftmaxRows(x.data(), 4, 6);
  for (int r = 0; r < 4; ++r) {
    float sum = 0;
    for (int c = 0; c < 6; ++c) sum += x[static_cast<std::size_t>(r * 6 + c)];
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(SoftmaxTest, StableUnderLargeInputs) {
  std::vector<float> x{1000.0f, 1001.0f, 999.0f};
  SoftmaxRows(x.data(), 1, 3);
  EXPECT_FALSE(std::isnan(x[0]));
  EXPECT_GT(x[1], x[0]);
  EXPECT_GT(x[0], x[2]);
}

TEST(SoftmaxTest, BackwardMatchesFiniteDifference) {
  auto x = RandVec(6, 11);
  auto w = RandVec(6, 12);
  std::vector<float> y = x;
  SoftmaxRows(y.data(), 1, 6);
  std::vector<float> dx(6);
  SoftmaxBackwardRows(y.data(), w.data(), dx.data(), 1, 6);
  CheckGradient(
      [&](const std::vector<float>& xv) {
        std::vector<float> yv = xv;
        SoftmaxRows(yv.data(), 1, 6);
        float loss = 0;
        for (int i = 0; i < 6; ++i) loss += w[static_cast<std::size_t>(i)] * yv[static_cast<std::size_t>(i)];
        return loss;
      },
      x, dx, 2e-2f);
}

TEST(CausalMaskTest, UpperTriangleIsZeroAfterSoftmax) {
  const std::int64_t s = 4;
  auto scores = RandVec(static_cast<std::size_t>(2 * s * s), 13);
  CausalMaskedSoftmax(scores.data(), 2, s, s);
  for (int b = 0; b < 2; ++b) {
    for (std::int64_t i = 0; i < s; ++i) {
      float sum = 0;
      for (std::int64_t j = 0; j < s; ++j) {
        const float v = scores[static_cast<std::size_t>((b * s + i) * s + j)];
        if (j > i) {
          EXPECT_EQ(v, 0.0f) << "masked position leaked";
        }
        sum += v;
      }
      EXPECT_NEAR(sum, 1.0f, 1e-5f);
    }
  }
}

TEST(CrossEntropyTest, UniformLogitsGiveLogVocab) {
  const std::int64_t rows = 2, vocab = 8;
  std::vector<float> logits(static_cast<std::size_t>(rows * vocab), 0.0f);
  std::vector<std::int32_t> targets{3, 5};
  const float loss =
      CrossEntropyLoss(logits.data(), targets.data(), rows, vocab, nullptr);
  EXPECT_NEAR(loss, std::log(8.0f), 1e-5f);
}

TEST(CrossEntropyTest, GradientMatchesFiniteDifference) {
  const std::int64_t rows = 2, vocab = 5;
  auto logits = RandVec(static_cast<std::size_t>(rows * vocab), 14);
  std::vector<std::int32_t> targets{1, 4};
  std::vector<float> dlogits(logits.size());
  CrossEntropyLoss(logits.data(), targets.data(), rows, vocab,
                   dlogits.data());
  CheckGradient(
      [&](const std::vector<float>& lv) {
        return CrossEntropyLoss(lv.data(), targets.data(), rows, vocab,
                                nullptr);
      },
      logits, dlogits, 2e-2f);
}

TEST(CrossEntropyTest, PerfectPredictionNearZeroLoss) {
  std::vector<float> logits{20.0f, 0.0f, 0.0f};
  std::vector<std::int32_t> targets{0};
  EXPECT_NEAR(CrossEntropyLoss(logits.data(), targets.data(), 1, 3, nullptr),
              0.0f, 1e-4f);
}

TEST(EmbeddingTest, GatherScatterAreAdjoint) {
  const std::int64_t vocab = 6, dim = 3, n = 4;
  auto table = RandVec(static_cast<std::size_t>(vocab * dim), 15);
  std::vector<std::int32_t> ids{2, 0, 2, 5};
  std::vector<float> out(static_cast<std::size_t>(n * dim));
  EmbeddingGather(table.data(), ids.data(), out.data(), n, dim);
  EXPECT_EQ(out[0], table[static_cast<std::size_t>(2 * dim)]);
  // Scatter-add of ones counts occurrences.
  std::vector<float> dtable(table.size(), 0.0f);
  std::vector<float> dout(out.size(), 1.0f);
  EmbeddingScatterAdd(dtable.data(), ids.data(), dout.data(), n, dim);
  EXPECT_EQ(dtable[static_cast<std::size_t>(2 * dim)], 2.0f);  // id 2 twice
  EXPECT_EQ(dtable[static_cast<std::size_t>(0 * dim)], 1.0f);
  EXPECT_EQ(dtable[static_cast<std::size_t>(1 * dim)], 0.0f);
}

TEST(BlasLikeTest, AxpyScaleNormDot) {
  std::vector<float> x{1, 2, 3};
  std::vector<float> y{10, 20, 30};
  Axpy(2.0f, x.data(), y.data(), 3);
  EXPECT_EQ(y[2], 36.0f);
  Scale(y.data(), 0.5f, 3);
  EXPECT_EQ(y[0], 6.0f);
  EXPECT_NEAR(SquaredNorm(x.data(), 3), 14.0f, 1e-6f);
  EXPECT_NEAR(Dot(x.data(), x.data(), 3), 14.0f, 1e-6f);
}

TEST(BiasTest, AddAndGradAreAdjoint) {
  const std::int64_t rows = 3, cols = 4;
  auto x = RandVec(static_cast<std::size_t>(rows * cols), 16);
  std::vector<float> bias{1, 2, 3, 4};
  auto x2 = x;
  AddBiasRows(x2.data(), bias.data(), rows, cols);
  EXPECT_NEAR(x2[5], x[5] + 2.0f, 1e-6f);
  std::vector<float> dbias(4, 0.0f);
  std::vector<float> dy(static_cast<std::size_t>(rows * cols), 1.0f);
  BiasGradFromRows(dy.data(), dbias.data(), rows, cols);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(dbias[static_cast<std::size_t>(c)], 3.0f);
}

}  // namespace
}  // namespace zero::tensor
