// GEMM backend registry + mixed-precision weight-GEMM equivalence.
//
// The contract under test (kernels.hpp): GemmHalfWeightT /
// GemmQuantWeightT produce bitwise the result of decoding W to fp32 and
// calling Gemm(false, true, ...) — same dispatch threshold, same
// kernels, same summation order — on both sides of the small-GEMM /
// packed-GEMM split. The registry is the Dali-style name dispatch the
// serving engine selects a precision through.
#include "tensor/gemm_backend.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "tensor/kernels.hpp"
#include "tensor/quantize.hpp"

namespace zero::tensor {
namespace {

std::vector<float> RandVec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (auto& x : v) x = rng.NextGaussian();
  return v;
}

std::vector<std::byte> PackWith(const GemmBackend& b,
                                const std::vector<float>& w) {
  std::vector<std::byte> packed(
      b.PackedBytes(static_cast<std::int64_t>(w.size())));
  b.Pack(w.data(), static_cast<std::int64_t>(w.size()), packed.data());
  return packed;
}

TEST(GemmBackendRegistry, BuiltinsAreRegistered) {
  const auto names = GemmBackendNames();
  auto has = [&](const char* n) {
    for (const auto& s : names) {
      if (s == n) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("fp32"));
  EXPECT_TRUE(has("fp16"));
  EXPECT_TRUE(has("int8"));
  EXPECT_EQ(GemmBackendByName("fp32").precision(), WeightPrecision::kF32);
  EXPECT_EQ(GemmBackendByName("fp16").precision(), WeightPrecision::kF16);
  EXPECT_EQ(GemmBackendByName("int8").precision(), WeightPrecision::kInt8);
}

TEST(GemmBackendRegistry, UnknownNameThrowsListingRegistered) {
  try {
    (void)GemmBackendByName("no-such-backend");
    FAIL() << "expected ZeroError";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("fp32"), std::string::npos);
  }
}

// A throwaway backend that forwards to fp32 but reports a marker
// precision, so re-registration under the same name is observable.
class ShadowBackend : public GemmBackend {
 public:
  explicit ShadowBackend(WeightPrecision marker) : marker_(marker) {}
  [[nodiscard]] std::string_view name() const override {
    return "test-shadow";
  }
  [[nodiscard]] WeightPrecision precision() const override { return marker_; }
  [[nodiscard]] std::size_t PackedBytes(std::int64_t n) const override {
    return GemmBackendByName("fp32").PackedBytes(n);
  }
  void Pack(const float* src, std::int64_t n, std::byte* dst) const override {
    GemmBackendByName("fp32").Pack(src, n, dst);
  }
  void Decode(const std::byte* packed, std::int64_t off, std::int64_t count,
              float* dst) const override {
    GemmBackendByName("fp32").Decode(packed, off, count, dst);
  }
  void GemmWeightT(std::int64_t m, std::int64_t n, std::int64_t k,
                   float alpha, const float* a, const std::byte* packed,
                   std::int64_t off, float beta, float* c) const override {
    GemmBackendByName("fp32").GemmWeightT(m, n, k, alpha, a, packed, off,
                                          beta, c);
  }

 private:
  WeightPrecision marker_;
};

TEST(GemmBackendRegistry, ReRegistrationLatestWins) {
  RegisterGemmBackend(std::make_unique<ShadowBackend>(WeightPrecision::kF32));
  EXPECT_EQ(GemmBackendByName("test-shadow").precision(),
            WeightPrecision::kF32);
  RegisterGemmBackend(std::make_unique<ShadowBackend>(WeightPrecision::kF16));
  EXPECT_EQ(GemmBackendByName("test-shadow").precision(),
            WeightPrecision::kF16);
}

TEST(GemmBackendPack, Fp32RoundTripsExactly) {
  const auto& b = GemmBackendByName("fp32");
  const auto w = RandVec(129, 1);
  const auto packed = PackWith(b, w);
  ASSERT_EQ(packed.size(), w.size() * sizeof(float));
  std::vector<float> out(5);
  b.Decode(packed.data(), 7, 5, out.data());
  EXPECT_EQ(std::memcmp(out.data(), w.data() + 7, 5 * sizeof(float)), 0);
}

TEST(GemmBackendPack, Fp16DecodeMatchesHalfRoundTrip) {
  const auto& b = GemmBackendByName("fp16");
  const auto w = RandVec(100, 2);
  const auto packed = PackWith(b, w);
  ASSERT_EQ(packed.size(), w.size() * sizeof(Half));

  std::vector<Half> half(w.size());
  FloatToHalf(w.data(), half.data(), w.size());
  std::vector<float> want(w.size());
  HalfToFloat(half.data(), want.data(), w.size());

  std::vector<float> got(w.size());
  b.Decode(packed.data(), 0, static_cast<std::int64_t>(w.size()),
           got.data());
  EXPECT_EQ(std::memcmp(got.data(), want.data(), w.size() * sizeof(float)),
            0);
  // Mid-range decode indexes absolutely.
  std::vector<float> mid(10);
  b.Decode(packed.data(), 33, 10, mid.data());
  EXPECT_EQ(std::memcmp(mid.data(), want.data() + 33, 10 * sizeof(float)),
            0);
}

TEST(GemmBackendPack, Int8DecodeMatchesQuantizeWire) {
  const auto& b = GemmBackendByName("int8");
  const std::int64_t n = 200;  // not a multiple of the 64-elem block
  const auto w = RandVec(static_cast<std::size_t>(n), 3);
  const auto packed = PackWith(b, w);

  std::vector<std::byte> wire(QuantWireBytes(n, 64));
  QuantizeF32(w.data(), n, 64, wire.data());
  std::vector<float> want(static_cast<std::size_t>(n));
  DequantizeF32(wire.data(), n, 64, want.data());

  std::vector<float> got(static_cast<std::size_t>(n));
  b.Decode(packed.data(), 0, n, got.data());
  EXPECT_EQ(std::memcmp(got.data(), want.data(),
                        static_cast<std::size_t>(n) * sizeof(float)),
            0);
  // Offsets inside the tensor decode the same elements.
  std::vector<float> mid(70);
  b.Decode(packed.data(), 65, 70, mid.data());
  EXPECT_EQ(std::memcmp(mid.data(), want.data() + 65, 70 * sizeof(float)),
            0);
}

// Both sides of the kSmallGemmFlops dispatch: (2,8,8) stays on the
// small kernel, (8,96,64) crosses into the packed path.
struct GemmShape {
  std::int64_t m, n, k;
};
const GemmShape kShapes[] = {{2, 8, 8}, {8, 96, 64}};

TEST(MixedPrecisionGemm, HalfWeightBitwiseEqualsDecodedGemm) {
  for (const GemmShape& s : kShapes) {
    const auto a = RandVec(static_cast<std::size_t>(s.m * s.k), 10);
    const auto wf = RandVec(static_cast<std::size_t>(s.n * s.k), 11);
    std::vector<Half> wh(wf.size());
    FloatToHalf(wf.data(), wh.data(), wf.size());
    std::vector<float> wd(wf.size());
    HalfToFloat(wh.data(), wd.data(), wh.size());

    auto c0 = RandVec(static_cast<std::size_t>(s.m * s.n), 12);
    auto c1 = c0;
    Gemm(false, true, s.m, s.n, s.k, 1.25f, a.data(), wd.data(), 0.5f,
         c0.data());
    GemmHalfWeightT(s.m, s.n, s.k, 1.25f, a.data(), wh.data(), 0.5f,
                    c1.data());
    EXPECT_EQ(std::memcmp(c0.data(), c1.data(), c0.size() * sizeof(float)),
              0)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(MixedPrecisionGemm, QuantWeightBitwiseEqualsDequantizedGemm) {
  const std::int64_t qblock = 64;
  for (const GemmShape& s : kShapes) {
    const std::int64_t nelem = s.n * s.k;
    const auto a = RandVec(static_cast<std::size_t>(s.m * s.k), 20);
    const auto wf = RandVec(static_cast<std::size_t>(nelem), 21);

    std::vector<std::byte> wire(QuantWireBytes(nelem, qblock));
    QuantizeF32(wf.data(), nelem, qblock, wire.data());
    std::vector<float> wd(static_cast<std::size_t>(nelem));
    DequantizeF32(wire.data(), nelem, qblock, wd.data());

    // Split the wire into the kernel's operands: int8 codes plus
    // pre-decoded fp32 scales.
    const std::int64_t blocks = QuantBlocks(nelem, qblock);
    const auto* scales_h = reinterpret_cast<const Half*>(wire.data());
    std::vector<float> scales(static_cast<std::size_t>(blocks));
    HalfToFloat(scales_h, scales.data(), scales.size());
    const auto* codes =
        reinterpret_cast<const std::int8_t*>(wire.data() + 2 * blocks);

    auto c0 = RandVec(static_cast<std::size_t>(s.m * s.n), 22);
    auto c1 = c0;
    Gemm(false, true, s.m, s.n, s.k, 1.0f, a.data(), wd.data(), 1.0f,
         c0.data());
    GemmQuantWeightT(s.m, s.n, s.k, 1.0f, a.data(), codes, scales.data(),
                     qblock, 1.0f, c1.data());
    EXPECT_EQ(std::memcmp(c0.data(), c1.data(), c0.size() * sizeof(float)),
              0)
        << "shape " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(MixedPrecisionGemm, BackendGemmMatchesKernelEntryPoints) {
  const GemmShape s{4, 32, 16};
  const auto a = RandVec(static_cast<std::size_t>(s.m * s.k), 30);
  const auto wf = RandVec(static_cast<std::size_t>(s.n * s.k), 31);

  // fp32 backend is a passthrough to Gemm — memcmp-bit-exact.
  {
    const auto& b = GemmBackendByName("fp32");
    const auto packed = PackWith(b, wf);
    auto c0 = RandVec(static_cast<std::size_t>(s.m * s.n), 32);
    auto c1 = c0;
    Gemm(false, true, s.m, s.n, s.k, 1.0f, a.data(), wf.data(), 0.0f,
         c0.data());
    b.GemmWeightT(s.m, s.n, s.k, 1.0f, a.data(), packed.data(), 0, 0.0f,
                  c1.data());
    EXPECT_EQ(std::memcmp(c0.data(), c1.data(), c0.size() * sizeof(float)),
              0);
  }
  // fp16 backend delegates to GemmHalfWeightT.
  {
    const auto& b = GemmBackendByName("fp16");
    const auto packed = PackWith(b, wf);
    std::vector<Half> wh(wf.size());
    FloatToHalf(wf.data(), wh.data(), wf.size());
    auto c0 = RandVec(static_cast<std::size_t>(s.m * s.n), 33);
    auto c1 = c0;
    GemmHalfWeightT(s.m, s.n, s.k, 1.0f, a.data(), wh.data(), 0.0f,
                    c0.data());
    b.GemmWeightT(s.m, s.n, s.k, 1.0f, a.data(), packed.data(), 0, 0.0f,
                  c1.data());
    EXPECT_EQ(std::memcmp(c0.data(), c1.data(), c0.size() * sizeof(float)),
              0);
  }
}

// Packed tensors hold several matrices back to back in the serving
// layout; `off` selects one without re-slicing the storage.
TEST(MixedPrecisionGemm, OffsetSelectsTheRightMatrix) {
  const GemmShape s{3, 8, 8};
  const std::int64_t per = s.n * s.k;  // 64 = one int8 block exactly
  const auto a = RandVec(static_cast<std::size_t>(s.m * s.k), 40);
  const auto two = RandVec(static_cast<std::size_t>(2 * per), 41);
  const std::vector<float> second(two.begin() + per, two.end());

  for (const char* name : {"fp32", "fp16", "int8"}) {
    const auto& b = GemmBackendByName(name);
    const auto packed = PackWith(b, two);
    std::vector<float> dec(static_cast<std::size_t>(per));
    b.Decode(packed.data(), per, per, dec.data());

    std::vector<float> c0(static_cast<std::size_t>(s.m * s.n), 0.0f);
    auto c1 = c0;
    Gemm(false, true, s.m, s.n, s.k, 1.0f, a.data(), dec.data(), 0.0f,
         c0.data());
    b.GemmWeightT(s.m, s.n, s.k, 1.0f, a.data(), packed.data(), per, 0.0f,
                  c1.data());
    EXPECT_EQ(std::memcmp(c0.data(), c1.data(), c0.size() * sizeof(float)),
              0)
        << name;
    // And the decoded second matrix approximates the source under the
    // backend's error model (exact for fp32).
    if (std::string_view(name) == "fp32") {
      EXPECT_EQ(std::memcmp(dec.data(), second.data(),
                            dec.size() * sizeof(float)),
                0);
    }
  }
}

// Shape-aware matrix encodings. The default implementation reuses the
// flat row-major storage; fp16 overrides it with load-time micro-panel
// pre-packing. The contract is that the layout is invisible to the
// numerics: MatrixGemmWeightT must stay bitwise equal to GemmWeightT on
// the flat encoding of the same floats, and DecodeMatrixRow must
// reproduce the flat row decode — across the small/packed dispatch and
// on ragged shapes that force partial panels and partial k-blocks.
const GemmShape kMatrixShapes[] = {
    {2, 8, 8},      // small-GEMM path
    {8, 96, 64},    // packed path, panel-aligned n
    {4, 33, 129},   // small-path ragged: partial panel + odd k
    {8, 33, 129},   // packed-path ragged (just over the flops threshold)
    {1, 40, 160},   // decode-style m=1 row
};

TEST(MatrixEncoding, MatrixGemmBitwiseEqualsFlatGemm) {
  for (const char* name : {"fp32", "fp16", "int8"}) {
    const auto& b = GemmBackendByName(name);
    for (const GemmShape& s : kMatrixShapes) {
      if (std::string_view(name) == "int8" && (s.n * s.k) % 64 != 0) {
        continue;  // flat int8 GEMM needs block-aligned matrices
      }
      const auto a = RandVec(static_cast<std::size_t>(s.m * s.k), 50);
      const auto wf = RandVec(static_cast<std::size_t>(s.n * s.k), 51);

      const auto flat = PackWith(b, wf);
      std::vector<std::byte> shaped(b.PackedMatrixBytes(s.n, s.k));
      b.PackMatrix(wf.data(), s.n, s.k, shaped.data());

      auto c0 = RandVec(static_cast<std::size_t>(s.m * s.n), 52);
      auto c1 = c0;
      b.GemmWeightT(s.m, s.n, s.k, 1.25f, a.data(), flat.data(), 0, 0.5f,
                    c0.data());
      b.MatrixGemmWeightT(s.m, s.n, s.k, 1.25f, a.data(), shaped.data(),
                          0.5f, c1.data());
      EXPECT_EQ(std::memcmp(c0.data(), c1.data(), c0.size() * sizeof(float)),
                0)
          << name << " shape " << s.m << "x" << s.n << "x" << s.k;
    }
  }
}

TEST(MatrixEncoding, DecodeMatrixRowMatchesFlatDecode) {
  const std::int64_t n = 33, k = 129;  // ragged: partial panel + odd k
  const auto wf = RandVec(static_cast<std::size_t>(n * k), 60);
  for (const char* name : {"fp32", "fp16", "int8"}) {
    const auto& b = GemmBackendByName(name);
    const auto flat = PackWith(b, wf);
    std::vector<std::byte> shaped(b.PackedMatrixBytes(n, k));
    b.PackMatrix(wf.data(), n, k, shaped.data());
    std::vector<float> want(static_cast<std::size_t>(k));
    std::vector<float> got(static_cast<std::size_t>(k));
    for (std::int64_t row : {std::int64_t{0}, std::int64_t{17}, n - 1}) {
      b.Decode(flat.data(), row * k, k, want.data());
      b.DecodeMatrixRow(shaped.data(), n, k, row, got.data());
      EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() *
                            sizeof(float)),
                0)
          << name << " row " << row;
    }
  }
}

TEST(MatrixEncoding, Fp16PanelStorageAddsOnlyPanelPadding) {
  const auto& b = GemmBackendByName("fp16");
  // Panel-aligned n: storage matches the flat fp16 encoding exactly.
  EXPECT_EQ(b.PackedMatrixBytes(96, 64),
            static_cast<std::size_t>(96 * 64) * sizeof(Half));
  // n=33 rounds up to the next panel boundary (kNr=32 -> 64 rows).
  EXPECT_EQ(b.PackedMatrixBytes(33, 64),
            static_cast<std::size_t>(64 * 64) * sizeof(Half));
}

}  // namespace
}  // namespace zero::tensor
