#include "comm/topology.hpp"

#include <gtest/gtest.h>

#include <optional>

#include "comm/hierarchical.hpp"
#include "comm/world.hpp"
#include "common/error.hpp"

namespace zero::comm {
namespace {

TEST(TopologyTest, GridShapes) {
  GridTopology grid(8, 2);
  EXPECT_EQ(grid.dp_degree, 4);
  EXPECT_EQ(grid.mp_degree, 2);
  EXPECT_THROW(GridTopology(7, 2), Error);
}

TEST(TopologyTest, MpGroupsAreConsecutive) {
  GridTopology grid(8, 4);
  EXPECT_EQ(grid.MpGroupMembers(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(grid.MpGroupMembers(5), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(grid.MpRank(6), 2);
}

TEST(TopologyTest, DpGroupsStrideAcrossMpBlocks) {
  GridTopology grid(8, 4);
  EXPECT_EQ(grid.DpGroupMembers(1), (std::vector<int>{1, 5}));
  EXPECT_EQ(grid.DpGroupMembers(6), (std::vector<int>{2, 6}));
  EXPECT_EQ(grid.DpRank(6), 1);
}

TEST(TopologyTest, EveryRankInExactlyOneOfEachGroup) {
  GridTopology grid(12, 3);
  for (int r = 0; r < 12; ++r) {
    auto mp = grid.MpGroupMembers(r);
    auto dp = grid.DpGroupMembers(r);
    EXPECT_EQ(static_cast<int>(mp.size()), 3);
    EXPECT_EQ(static_cast<int>(dp.size()), 4);
    EXPECT_NE(std::find(mp.begin(), mp.end(), r), mp.end());
    EXPECT_NE(std::find(dp.begin(), dp.end(), r), dp.end());
  }
}

TEST(TopologyTest, CommunicatorsWorkOverGrid) {
  // 2x2 grid: the MP all-reduce must sum within rows, the DP all-reduce
  // within columns, without interference.
  GridTopology grid(4, 2);
  World world(4);
  world.Run([&](RankContext& ctx) {
    Communicator mp = grid.MakeMpComm(ctx);
    Communicator dp = grid.MakeDpComm(ctx);
    std::vector<float> v{static_cast<float>(ctx.rank)};
    mp.AllReduce(std::span<float>(v), ReduceOp::kSum);
    // Rows: {0,1} -> 1, {2,3} -> 5.
    EXPECT_EQ(v[0], ctx.rank < 2 ? 1.0f : 5.0f);
    std::vector<float> w{static_cast<float>(ctx.rank)};
    dp.AllReduce(std::span<float>(w), ReduceOp::kSum);
    // Columns: {0,2} -> 2, {1,3} -> 4.
    EXPECT_EQ(w[0], ctx.rank % 2 == 0 ? 2.0f : 4.0f);
  });
}

TEST(NodeTopologyTest, ShapesAndMembership) {
  World world(8);
  world.Run([&](RankContext& ctx) {
    Communicator dp = Communicator::WholeWorld(ctx);
    NodeTopology topo(dp, 4);
    EXPECT_EQ(topo.nodes, 2);
    EXPECT_EQ(topo.ranks_per_node, 4);
    EXPECT_EQ(topo.NodeIndex(5), 1);
    EXPECT_EQ(topo.LocalRank(5), 1);
    EXPECT_TRUE(topo.IsLeader(4));
    EXPECT_FALSE(topo.IsLeader(5));
    EXPECT_EQ(topo.LocalMembers(6), (std::vector<int>{4, 5, 6, 7}));
    EXPECT_EQ(topo.LeaderMembers(), (std::vector<int>{0, 4}));
  });
}

TEST(NodeTopologyTest, UnevenWorldDegradesToRaggedTailNode) {
  // 4 ranks at 3 per node: node 0 = {0,1,2}, node 1 = {3} (single-rank
  // tail). No longer an error — node-aware schedules must consult
  // uniform() before assuming equal shards.
  World world(4);
  world.Run([&](RankContext& ctx) {
    Communicator dp = Communicator::WholeWorld(ctx);
    NodeTopology topo(dp, 3);
    EXPECT_EQ(topo.nodes, 2);
    EXPECT_FALSE(topo.uniform());
    EXPECT_EQ(topo.NodeIndex(3), 1);
    EXPECT_EQ(topo.LocalRank(3), 0);
    EXPECT_EQ(topo.LocalSize(1), 3);
    EXPECT_EQ(topo.LocalSize(3), 1);
    EXPECT_EQ(topo.LocalMembers(1), (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(topo.LocalMembers(3), (std::vector<int>{3}));
    EXPECT_TRUE(topo.IsLeader(3));
    EXPECT_EQ(topo.LeaderMembers(), (std::vector<int>{0, 3}));
    // Sliced communicators still function over the ragged shape: the
    // tail node's "local" collective is a self-group no-op and the
    // leaders' group carries the cross-node combine.
    Communicator local = topo.MakeLocalComm(ctx);
    EXPECT_EQ(local.size(), ctx.rank < 3 ? 3 : 1);
    std::optional<Communicator> leaders;
    if (topo.IsLeader(dp.rank())) leaders.emplace(topo.MakeLeadersComm(ctx));
    std::vector<float> v{static_cast<float>(ctx.rank + 1)};
    local.AllReduce(std::span<float>(v), ReduceOp::kSum);
    EXPECT_EQ(v[0], ctx.rank < 3 ? 6.0f : 4.0f);
  });
}

TEST(NodeTopologyTest, SingleRankNodesAndOversizedNodes) {
  World world(4);
  world.Run([&](RankContext& ctx) {
    Communicator dp = Communicator::WholeWorld(ctx);
    // ranks_per_node = 1: every rank is its own (leader) node.
    NodeTopology fine(dp, 1);
    EXPECT_EQ(fine.nodes, 4);
    EXPECT_TRUE(fine.uniform());
    EXPECT_TRUE(fine.IsLeader(ctx.rank));
    EXPECT_EQ(fine.LocalMembers(ctx.rank), (std::vector<int>{ctx.rank}));
    // ranks_per_node > world: one node holds everyone; clipping keeps
    // membership inside the group.
    NodeTopology coarse(dp, 8);
    EXPECT_EQ(coarse.nodes, 1);
    EXPECT_FALSE(coarse.uniform());
    EXPECT_EQ(coarse.LocalSize(ctx.rank), 4);
    EXPECT_EQ(coarse.LocalMembers(ctx.rank), (std::vector<int>{0, 1, 2, 3}));
    EXPECT_THROW(NodeTopology(dp, 0), Error);
  });
}

TEST(NodeTopologyTest, HierarchicalAllReduceOverSlicedComms) {
  // 2 nodes x 2 ranks: local reduce-scatter, leaders all-reduce, local
  // all-gather must equal the flat sum.
  World world(4);
  world.Run([&](RankContext& ctx) {
    Communicator dp = Communicator::WholeWorld(ctx);
    NodeTopology topo(dp, 2);
    Communicator local = topo.MakeLocalComm(ctx);
    std::optional<Communicator> leaders;
    if (topo.IsLeader(dp.rank())) leaders.emplace(topo.MakeLeadersComm(ctx));
    std::vector<float> v(6);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = static_cast<float>(ctx.rank * 10 + static_cast<int>(i));
    }
    HierarchicalAllReduce(local, leaders.has_value() ? &*leaders : nullptr,
                          std::span<float>(v), ReduceOp::kSum);
    for (std::size_t i = 0; i < v.size(); ++i) {
      // Sum over ranks 0..3 of (r*10 + i) = 60 + 4i.
      EXPECT_EQ(v[i], 60.0f + 4.0f * static_cast<float>(i));
    }
  });
}

TEST(NodeTopologyTest, SlicesOfSubgroupCommunicator) {
  // NodeTopology over a non-whole-world parent: split 8 ranks into two
  // 4-rank halves, then 2-rank nodes within each half.
  World world(8);
  world.Run([&](RankContext& ctx) {
    Communicator dp = Communicator::WholeWorld(ctx);
    std::vector<int> half;
    const int base = ctx.rank < 4 ? 0 : 4;
    for (int i = 0; i < 4; ++i) half.push_back(base + i);
    Communicator sub(ctx, half, /*group_id=*/ctx.rank < 4 ? 1 : 2);
    NodeTopology topo(sub, 2);
    Communicator local = topo.MakeLocalComm(ctx);
    std::optional<Communicator> leaders;
    if (topo.IsLeader(sub.rank())) leaders.emplace(topo.MakeLeadersComm(ctx));
    std::vector<float> v{static_cast<float>(ctx.rank)};
    HierarchicalAllReduce(local, leaders.has_value() ? &*leaders : nullptr,
                          std::span<float>(v), ReduceOp::kSum);
    // Each half sums its own ranks: 0+1+2+3=6, 4+5+6+7=22.
    EXPECT_EQ(v[0], ctx.rank < 4 ? 6.0f : 22.0f);
  });
}

}  // namespace
}  // namespace zero::comm
