#include "comm/topology.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace zero::comm {
namespace {

TEST(TopologyTest, GridShapes) {
  GridTopology grid(8, 2);
  EXPECT_EQ(grid.dp_degree, 4);
  EXPECT_EQ(grid.mp_degree, 2);
  EXPECT_THROW(GridTopology(7, 2), Error);
}

TEST(TopologyTest, MpGroupsAreConsecutive) {
  GridTopology grid(8, 4);
  EXPECT_EQ(grid.MpGroupMembers(0), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(grid.MpGroupMembers(5), (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(grid.MpRank(6), 2);
}

TEST(TopologyTest, DpGroupsStrideAcrossMpBlocks) {
  GridTopology grid(8, 4);
  EXPECT_EQ(grid.DpGroupMembers(1), (std::vector<int>{1, 5}));
  EXPECT_EQ(grid.DpGroupMembers(6), (std::vector<int>{2, 6}));
  EXPECT_EQ(grid.DpRank(6), 1);
}

TEST(TopologyTest, EveryRankInExactlyOneOfEachGroup) {
  GridTopology grid(12, 3);
  for (int r = 0; r < 12; ++r) {
    auto mp = grid.MpGroupMembers(r);
    auto dp = grid.DpGroupMembers(r);
    EXPECT_EQ(static_cast<int>(mp.size()), 3);
    EXPECT_EQ(static_cast<int>(dp.size()), 4);
    EXPECT_NE(std::find(mp.begin(), mp.end(), r), mp.end());
    EXPECT_NE(std::find(dp.begin(), dp.end(), r), dp.end());
  }
}

TEST(TopologyTest, CommunicatorsWorkOverGrid) {
  // 2x2 grid: the MP all-reduce must sum within rows, the DP all-reduce
  // within columns, without interference.
  GridTopology grid(4, 2);
  World world(4);
  world.Run([&](RankContext& ctx) {
    Communicator mp = grid.MakeMpComm(ctx);
    Communicator dp = grid.MakeDpComm(ctx);
    std::vector<float> v{static_cast<float>(ctx.rank)};
    mp.AllReduce(std::span<float>(v), ReduceOp::kSum);
    // Rows: {0,1} -> 1, {2,3} -> 5.
    EXPECT_EQ(v[0], ctx.rank < 2 ? 1.0f : 5.0f);
    std::vector<float> w{static_cast<float>(ctx.rank)};
    dp.AllReduce(std::span<float>(w), ReduceOp::kSum);
    // Columns: {0,2} -> 2, {1,3} -> 4.
    EXPECT_EQ(w[0], ctx.rank % 2 == 0 ? 2.0f : 4.0f);
  });
}

}  // namespace
}  // namespace zero::comm
