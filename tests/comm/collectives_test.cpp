#include "comm/communicator.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "comm/world.hpp"
#include "common/rng.hpp"

namespace zero::comm {
namespace {

// Property suite: every collective checked for correctness AND for the
// per-rank communication volume the paper's Sec 7 analysis relies on,
// across world sizes 1..5 (odd sizes catch uneven-chunk bugs).
class CollectivesTest : public ::testing::TestWithParam<int> {};

std::vector<float> RankData(int rank, std::size_t n) {
  std::vector<float> v(n);
  Rng rng(100 + static_cast<std::uint64_t>(rank));
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

TEST_P(CollectivesTest, AllReduceSum) {
  const int p = GetParam();
  const std::size_t n = 103;  // deliberately not divisible by p
  // Expected: elementwise sum over ranks.
  std::vector<float> expected(n, 0.0f);
  for (int r = 0; r < p; ++r) {
    auto d = RankData(r, n);
    for (std::size_t i = 0; i < n; ++i) expected[i] += d[i];
  }
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto data = RankData(ctx.rank, n);
    comm.AllReduce(std::span<float>(data), ReduceOp::kSum);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(data[i], expected[i], 1e-4f) << "rank " << ctx.rank;
    }
  });
}

TEST_P(CollectivesTest, AllReduceVolumeIsTwoPsi) {
  const int p = GetParam();
  if (p == 1) GTEST_SKIP() << "no communication at p=1";
  const std::size_t n = 120;  // divisible by p in {2,3,4,5}: use 120
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto data = RankData(ctx.rank, n);
    comm.AllReduce(std::span<float>(data), ReduceOp::kSum);
    // Sec 7.1: all-reduce moves 2 * (p-1)/p * message bytes per rank.
    const double expected_bytes =
        2.0 * (p - 1) / p * static_cast<double>(n) * sizeof(float);
    EXPECT_NEAR(static_cast<double>(comm.stats().bytes_sent), expected_bytes,
                1.0);
    EXPECT_NEAR(static_cast<double>(comm.stats().bytes_received),
                expected_bytes, 1.0);
  });
}

TEST_P(CollectivesTest, AllReduceAvg) {
  const int p = GetParam();
  const std::size_t n = 17;
  std::vector<float> expected(n, 0.0f);
  for (int r = 0; r < p; ++r) {
    auto d = RankData(r, n);
    for (std::size_t i = 0; i < n; ++i) expected[i] += d[i] / p;
  }
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto data = RankData(ctx.rank, n);
    comm.AllReduce(std::span<float>(data), ReduceOp::kAvg);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(data[i], expected[i], 1e-4f);
    }
  });
}

TEST_P(CollectivesTest, ReduceScatterDeliversOwnReducedChunk) {
  const int p = GetParam();
  const std::size_t chunk = 13;
  const std::size_t n = chunk * static_cast<std::size_t>(p);
  std::vector<float> expected(n, 0.0f);
  for (int r = 0; r < p; ++r) {
    auto d = RankData(r, n);
    for (std::size_t i = 0; i < n; ++i) expected[i] += d[i];
  }
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto data = RankData(ctx.rank, n);
    std::vector<float> out(chunk);
    comm.ReduceScatter(std::span<float>(data), std::span<float>(out),
                       ReduceOp::kSum);
    for (std::size_t i = 0; i < chunk; ++i) {
      ASSERT_NEAR(out[i],
                  expected[static_cast<std::size_t>(ctx.rank) * chunk + i],
                  1e-4f);
    }
    if (p > 1) {
      // Volume ~= (p-1)/p * message bytes (Sec 7.1).
      const double expected_bytes =
          (p - 1.0) / p * static_cast<double>(n) * sizeof(float);
      EXPECT_NEAR(static_cast<double>(comm.stats().bytes_sent),
                  expected_bytes, 1.0);
    }
  });
}

TEST_P(CollectivesTest, AllGatherAssemblesAllChunks) {
  const int p = GetParam();
  const std::size_t chunk = 9;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto mine = RankData(ctx.rank, chunk);
    std::vector<float> out(chunk * static_cast<std::size_t>(p));
    comm.AllGather(std::span<const float>(mine), std::span<float>(out));
    for (int r = 0; r < p; ++r) {
      auto theirs = RankData(r, chunk);
      for (std::size_t i = 0; i < chunk; ++i) {
        ASSERT_EQ(out[static_cast<std::size_t>(r) * chunk + i], theirs[i]);
      }
    }
  });
}

TEST_P(CollectivesTest, BroadcastFromEveryRoot) {
  const int p = GetParam();
  const std::size_t n = 31;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (int root = 0; root < p; ++root) {
      std::vector<float> data = ctx.rank == root
                                    ? RankData(root, n)
                                    : std::vector<float>(n, -1.0f);
      comm.Broadcast(std::span<float>(data), root);
      auto expected = RankData(root, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(data[i], expected[i]) << "root " << root;
      }
    }
  });
}

TEST_P(CollectivesTest, BroadcastVolumeIsMessageSize) {
  const int p = GetParam();
  if (p == 1) GTEST_SKIP();
  const std::size_t n = 64;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<float> data = RankData(0, n);
    comm.Broadcast(std::span<float>(data), 0);
    // Pipelined ring: each rank sends at most the message once — per-rank
    // volume ~ message size, never p * message (Sec 7.2.2 relies on
    // this).
    EXPECT_LE(comm.stats().bytes_sent, n * sizeof(float));
    EXPECT_LE(comm.stats().bytes_received, n * sizeof(float));
  });
}

TEST_P(CollectivesTest, ReduceLandsOnRootOnly) {
  const int p = GetParam();
  const std::size_t n = 21;
  std::vector<float> expected(n, 0.0f);
  for (int r = 0; r < p; ++r) {
    auto d = RankData(r, n);
    for (std::size_t i = 0; i < n; ++i) expected[i] += d[i];
  }
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (int root = 0; root < p; ++root) {
      auto data = RankData(ctx.rank, n);
      comm.Reduce(std::span<float>(data), root, ReduceOp::kSum);
      if (ctx.rank == root) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_NEAR(data[i], expected[i], 1e-4f) << "root " << root;
        }
      }
    }
  });
}

TEST_P(CollectivesTest, ReduceAvgScalesAtRootOnly) {
  // Regression for the documented Reduce contract: kAvg divides by the
  // group size at the root only, and non-root buffers come back exactly
  // as they were passed in (they hold unreduced local data, not a
  // result).
  const int p = GetParam();
  if (p < 3) GTEST_SKIP() << "needs a rank that is neither root nor "
                             "the first ring hop";
  const std::size_t n = 19;
  std::vector<float> mean(n, 0.0f);
  for (int r = 0; r < p; ++r) {
    auto d = RankData(r, n);
    for (std::size_t i = 0; i < n; ++i) mean[i] += d[i] / static_cast<float>(p);
  }
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (int root = 0; root < p; ++root) {
      auto data = RankData(ctx.rank, n);
      const auto before = data;
      comm.Reduce(std::span<float>(data), root, ReduceOp::kAvg);
      if (ctx.rank == root) {
        for (std::size_t i = 0; i < n; ++i) {
          ASSERT_NEAR(data[i], mean[i], 1e-4f) << "root " << root;
        }
      } else {
        // Untouched — in particular, never scaled by 1/p.
        ASSERT_EQ(data, before) << "rank " << ctx.rank << " root " << root;
      }
    }
  });
}

TEST_P(CollectivesTest, ScatterDistributesRootChunks) {
  const int p = GetParam();
  const std::size_t chunk = 6;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<float> all = RankData(0, chunk * static_cast<std::size_t>(p));
    std::vector<float> out(chunk);
    comm.Scatter(std::span<const float>(all), std::span<float>(out), 0);
    for (std::size_t i = 0; i < chunk; ++i) {
      ASSERT_EQ(out[i], all[static_cast<std::size_t>(ctx.rank) * chunk + i]);
    }
  });
}

TEST_P(CollectivesTest, GatherCollectsAllChunksAtRoot) {
  const int p = GetParam();
  const std::size_t chunk = 7;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (int root = 0; root < p; ++root) {
      auto mine = RankData(ctx.rank, chunk);
      std::vector<float> out(chunk * static_cast<std::size_t>(p), -1.0f);
      comm.Gather(std::span<const float>(mine), std::span<float>(out), root);
      if (ctx.rank == root) {
        for (int r = 0; r < p; ++r) {
          auto theirs = RankData(r, chunk);
          for (std::size_t i = 0; i < chunk; ++i) {
            ASSERT_EQ(out[static_cast<std::size_t>(r) * chunk + i],
                      theirs[i])
                << "root " << root;
          }
        }
      }
    }
  });
}

TEST_P(CollectivesTest, AllToAllPersonalizedExchange) {
  const int p = GetParam();
  const std::size_t chunk = 5;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    // send[i*chunk + j] encodes (sender, destination, element).
    std::vector<float> send(chunk * static_cast<std::size_t>(p));
    for (int i = 0; i < p; ++i) {
      for (std::size_t j = 0; j < chunk; ++j) {
        send[static_cast<std::size_t>(i) * chunk + j] =
            static_cast<float>(ctx.rank * 1000 + i * 10 +
                               static_cast<int>(j));
      }
    }
    std::vector<float> recv(send.size());
    comm.AllToAll(std::span<const float>(send), std::span<float>(recv));
    for (int src = 0; src < p; ++src) {
      for (std::size_t j = 0; j < chunk; ++j) {
        ASSERT_EQ(recv[static_cast<std::size_t>(src) * chunk + j],
                  static_cast<float>(src * 1000 + ctx.rank * 10 +
                                     static_cast<int>(j)));
      }
    }
  });
}

TEST_P(CollectivesTest, HalfAllReduce) {
  const int p = GetParam();
  const std::size_t n = 40;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<Half> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      data[i] = Half(static_cast<float>(ctx.rank + 1));
    }
    comm.AllReduce(std::span<Half>(data), ReduceOp::kSum);
    const float expected = static_cast<float>(p * (p + 1) / 2);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(data[i].ToFloat(), expected);
    }
  });
}

TEST_P(CollectivesTest, HalfReduceScatterAndBroadcast) {
  // fp16 paths of the collectives ZeRO's fp16 mode actually exercises:
  // reduce-scatter of gradients, broadcast of parameters.
  const int p = GetParam();
  const std::size_t chunk = 8;
  const std::size_t n = chunk * static_cast<std::size_t>(p);
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<Half> data(n);
    for (std::size_t i = 0; i < n; ++i) {
      // Values exactly representable in fp16, distinct per rank.
      data[i] = Half(static_cast<float>(ctx.rank + 1) * 0.5f);
    }
    std::vector<Half> out(chunk);
    comm.ReduceScatter(std::span<Half>(data), std::span<Half>(out),
                       ReduceOp::kSum);
    const float expected = 0.5f * static_cast<float>(p * (p + 1) / 2);
    for (std::size_t i = 0; i < chunk; ++i) {
      ASSERT_EQ(out[i].ToFloat(), expected);
    }

    std::vector<Half> bc(n, Half(ctx.rank == 1 % p ? 2.75f : 0.0f));
    comm.Broadcast(std::span<Half>(bc), 1 % p);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bc[i].ToFloat(), 2.75f);
    }
  });
}

TEST_P(CollectivesTest, HalfSubnormalsSurviveReduction) {
  // Tiny fp16 gradients (subnormal range) must not be flushed by the
  // promoted-accumulation reduction path.
  const int p = GetParam();
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<Half> data(4, Half(Half::kMinSubnormal));
    comm.AllReduce(std::span<Half>(data), ReduceOp::kSum);
    EXPECT_EQ(data[0].ToFloat(),
              Half(Half::kMinSubnormal * static_cast<float>(p)).ToFloat());
  });
}

TEST_P(CollectivesTest, BackToBackCollectivesDoNotCrossTalk) {
  const int p = GetParam();
  const std::size_t n = 25;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (int iter = 0; iter < 5; ++iter) {
      std::vector<float> data(n, static_cast<float>(ctx.rank + iter));
      comm.AllReduce(std::span<float>(data), ReduceOp::kSum);
      const float expected =
          static_cast<float>(p * (p - 1) / 2 + p * iter);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(data[i], expected) << "iter " << iter;
      }
      comm.Barrier();
    }
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, CollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(CommunicatorTest, PointToPointRoundTrip) {
  World world(2);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    if (ctx.rank == 0) {
      std::vector<float> v{1.0f, 2.0f};
      comm.Send(1, std::span<const float>(v), 3);
      std::vector<float> back(2);
      comm.Recv(1, std::span<float>(back), 4);
      EXPECT_EQ(back[0], 3.0f);
    } else {
      std::vector<float> v(2);
      comm.Recv(0, std::span<float>(v), 3);
      EXPECT_EQ(v[1], 2.0f);
      std::vector<float> reply{3.0f, 4.0f};
      comm.Send(0, std::span<const float>(reply), 4);
    }
  });
}

TEST(CommunicatorTest, ExceptionInRankPropagates) {
  World world(1);
  EXPECT_THROW(world.Run([&](RankContext&) {
    throw Error("rank failure");
  }),
               Error);
}

}  // namespace
}  // namespace zero::comm
