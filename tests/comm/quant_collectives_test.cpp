// ZeRO++ quantized collectives (qwZ wire). The contract differs from the
// exact machines: the result is LOSSY but must be (a) bit-identical on
// every rank — the root included, or SPMD replicas diverge — and (b)
// exactly the local quantize->dequantize round trip of the source data,
// so the loss is the quantizer's documented policy and nothing else.
#include <gtest/gtest.h>

#include <cstddef>
#include <limits>
#include <vector>

#include "comm/nonblocking_collectives.hpp"
#include "comm/world.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "tensor/quantize.hpp"

namespace zero::comm {
namespace {

using tensor::QuantWireBytes;

class QuantCollectivesTest : public ::testing::TestWithParam<int> {};

std::vector<Half> RankHalves(int rank, std::size_t n) {
  std::vector<Half> v(n);
  Rng rng(900 + static_cast<std::uint64_t>(rank));
  for (Half& x : v) x = Half(rng.NextGaussian());
  return v;
}

// The single-rank reference the wire must reproduce exactly.
std::vector<Half> QuantRoundTrip(const std::vector<Half>& src,
                                 std::int64_t block) {
  const auto n = static_cast<std::int64_t>(src.size());
  std::vector<std::byte> wire(QuantWireBytes(n, block));
  tensor::QuantizeHalf(src.data(), n, block, wire.data());
  std::vector<Half> out(src.size());
  tensor::DequantizeHalf(wire.data(), n, block, out.data());
  return out;
}

bool BitEqual(const std::vector<Half>& a, const std::vector<Half>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].bits() != b[i].bits()) return false;
  }
  return true;
}

TEST_P(QuantCollectivesTest, IQuantBroadcastIsRoundTripOnEveryRank) {
  const int p = GetParam();
  const std::size_t n = 101;  // splits unevenly across every ring size
  for (const std::int64_t block : {std::int64_t{16}, std::int64_t{64}}) {
    World world(p);
    world.Run([&](RankContext& ctx) {
      Communicator comm = Communicator::WholeWorld(ctx);
      for (int root = 0; root < p; ++root) {
        std::vector<Half> data = ctx.rank == root
                                     ? RankHalves(root, n)
                                     : std::vector<Half>(n, Half(-1.0f));
        CollectiveRequest req =
            IQuantBroadcast(comm, std::span<Half>(data), root, block);
        req.Wait();
        ASSERT_TRUE(req.done());
        // Every rank — including the root, whose buffer held the exact
        // values — must now hold the dequantized wire contents.
        ASSERT_TRUE(BitEqual(data, QuantRoundTrip(RankHalves(root, n), block)))
            << "root " << root << " block " << block;
      }
    });
  }
}

TEST_P(QuantCollectivesTest, IQuantAllGatherIsRoundTripPerSlot) {
  const int p = GetParam();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{77}}) {
    World world(p);
    world.Run([&](RankContext& ctx) {
      Communicator comm = Communicator::WholeWorld(ctx);
      const auto mine = RankHalves(ctx.rank, chunk);
      std::vector<Half> out(chunk * static_cast<std::size_t>(p),
                            Half(-1.0f));
      CollectiveRequest req = IQuantAllGather(
          comm, std::span<const Half>(mine), std::span<Half>(out), 64);
      req.Wait();
      for (int r = 0; r < p; ++r) {
        const std::vector<Half> want = QuantRoundTrip(RankHalves(r, chunk), 64);
        for (std::size_t i = 0; i < chunk; ++i) {
          ASSERT_EQ(out[static_cast<std::size_t>(r) * chunk + i].bits(),
                    want[i].bits())
              << "slot " << r << " elem " << i << " chunk " << chunk;
        }
      }
    });
  }
}

TEST_P(QuantCollectivesTest, PoisonSurvivesTheWire) {
  // Overflow detection downstream of a quantized gather must still see
  // non-finite values: a NaN at the root poisons its block on all ranks.
  const int p = GetParam();
  const std::size_t n = 130;  // blocks of 64: [0,64) poisoned, rest clean
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<Half> data(n, Half(2.0f));
    if (ctx.rank == 0) data[3] = Half::FromBits(0x7E00);  // NaN
    CollectiveRequest req =
        IQuantBroadcast(comm, std::span<Half>(data), /*root=*/0, 64);
    req.Wait();
    for (std::size_t i = 0; i < 64; ++i) {
      EXPECT_FALSE(std::isfinite(data[i].ToFloat())) << i;
    }
    for (std::size_t i = 64; i < n; ++i) {
      EXPECT_TRUE(std::isfinite(data[i].ToFloat())) << i;
    }
  });
}

TEST_P(QuantCollectivesTest, WireVolumeIsCompressed) {
  // The bytes on the wire are the int8+scale format, not fp16: per-rank
  // broadcast traffic shrinks by ~2x vs IBroadcast (2 B -> ~1.03 B/elem).
  const int p = GetParam();
  if (p == 1) GTEST_SKIP() << "no communication at p=1";
  const std::size_t n = 1024;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<Half> data(n, Half(1.0f));
    const CommStats before = comm.stats();
    CollectiveRequest req =
        IQuantBroadcast(comm, std::span<Half>(data), /*root=*/0, 64);
    req.Wait();
    const CommStats delta = comm.stats() - before;
    const std::size_t wire = QuantWireBytes(static_cast<std::int64_t>(n), 64);
    // Ring broadcast: every rank forwards the full message except the
    // tail; the root's deposit counts as its send.
    EXPECT_LE(delta.bytes_sent, wire);
    EXPECT_LT(wire, 2 * n);  // compressed vs the fp16 payload
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, QuantCollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 8));

}  // namespace
}  // namespace zero::comm
