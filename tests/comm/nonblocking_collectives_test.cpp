#include "comm/nonblocking_collectives.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "comm/world.hpp"
#include "common/rng.hpp"

namespace zero::comm {
namespace {

// The nonblocking machines replay the blocking ring schedules, so the
// contract is *bit-exactness* against the blocking twin — every test
// below compares with ASSERT_EQ, not NEAR. World sizes 1..8 cover the
// degenerate group, even/odd rings, and payloads smaller than the group.
class NonblockingCollectivesTest : public ::testing::TestWithParam<int> {};

std::vector<float> RankData(int rank, std::size_t n) {
  std::vector<float> v(n);
  Rng rng(700 + static_cast<std::uint64_t>(rank));
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

TEST_P(NonblockingCollectivesTest, IAllReduceMatchesBlockingBitExact) {
  const int p = GetParam();
  for (const std::size_t n : {std::size_t{1}, std::size_t{5},
                              std::size_t{103}}) {
    World world(p);
    world.Run([&](RankContext& ctx) {
      Communicator comm = Communicator::WholeWorld(ctx);
      for (const ReduceOp op : {ReduceOp::kSum, ReduceOp::kAvg,
                                ReduceOp::kMax}) {
        auto blocking = RankData(ctx.rank, n);
        comm.AllReduce(std::span<float>(blocking), op);
        auto nonblocking = RankData(ctx.rank, n);
        CollectiveRequest req =
            IAllReduce(comm, std::span<float>(nonblocking), op);
        req.Wait();
        ASSERT_TRUE(req.done());
        ASSERT_EQ(nonblocking, blocking) << "n=" << n;
      }
    });
  }
}

TEST_P(NonblockingCollectivesTest, IBroadcastMatchesBlockingBitExact) {
  const int p = GetParam();
  const std::size_t n = 31;  // not divisible by p for p in 2..8
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (int root = 0; root < p; ++root) {
      std::vector<float> data = ctx.rank == root
                                    ? RankData(root, n)
                                    : std::vector<float>(n, -1.0f);
      CollectiveRequest req = IBroadcast(comm, std::span<float>(data), root);
      req.Wait();
      ASSERT_EQ(data, RankData(root, n)) << "root " << root;
    }
  });
}

TEST_P(NonblockingCollectivesTest, IAllGatherMatchesBlockingBitExact) {
  const int p = GetParam();
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{9}}) {
    World world(p);
    world.Run([&](RankContext& ctx) {
      Communicator comm = Communicator::WholeWorld(ctx);
      auto mine = RankData(ctx.rank, chunk);
      std::vector<float> blocking(chunk * static_cast<std::size_t>(p));
      comm.AllGather(std::span<const float>(mine),
                     std::span<float>(blocking));
      std::vector<float> nonblocking(blocking.size(), -1.0f);
      CollectiveRequest req = IAllGather(comm, std::span<const float>(mine),
                                         std::span<float>(nonblocking));
      req.Wait();
      ASSERT_EQ(nonblocking, blocking) << "chunk=" << chunk;
    });
  }
}

TEST_P(NonblockingCollectivesTest, IReduceScatterMatchesBlockingBitExact) {
  const int p = GetParam();
  const std::size_t chunk = 13;
  const std::size_t n = chunk * static_cast<std::size_t>(p);
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (const ReduceOp op : {ReduceOp::kSum, ReduceOp::kAvg}) {
      auto data = RankData(ctx.rank, n);
      std::vector<float> blocking(chunk);
      comm.ReduceScatter(std::span<float>(data), std::span<float>(blocking),
                         op);
      auto data2 = RankData(ctx.rank, n);
      std::vector<float> nonblocking(chunk, -1.0f);
      CollectiveRequest req = IReduceScatter(
          comm, std::span<float>(data2), std::span<float>(nonblocking), op);
      req.Wait();
      ASSERT_EQ(nonblocking, blocking);
    }
  });
}

TEST_P(NonblockingCollectivesTest, HalfIBroadcastAndIAllReduce) {
  // fp16 paths the stage-3 prefetcher actually uses.
  const int p = GetParam();
  const std::size_t n = 23;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<Half> bc(n, Half(ctx.rank == 0 ? 2.75f : 0.0f));
    CollectiveRequest b = IBroadcast(comm, std::span<Half>(bc), 0);
    b.Wait();
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(bc[i].ToFloat(), 2.75f);

    std::vector<Half> ar(n, Half(static_cast<float>(ctx.rank + 1)));
    std::vector<Half> expected(n, Half(static_cast<float>(ctx.rank + 1)));
    comm.AllReduce(std::span<Half>(expected), ReduceOp::kSum);
    CollectiveRequest r = IAllReduce(comm, std::span<Half>(ar),
                                     ReduceOp::kSum);
    r.Wait();
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ar[i].bits(), expected[i].bits());
    }
  });
}

TEST_P(NonblockingCollectivesTest, TestOnlyDrivingCompletes) {
  // Progress without ever blocking: every rank spins on Test(), which is
  // how a compute loop drives prefetched gathers between kernels.
  const int p = GetParam();
  const std::size_t n = 47;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto expected = RankData(ctx.rank, n);
    comm.AllReduce(std::span<float>(expected), ReduceOp::kSum);
    auto data = RankData(ctx.rank, n);
    CollectiveRequest req = IAllReduce(comm, std::span<float>(data),
                                       ReduceOp::kSum);
    while (!req.Test()) std::this_thread::yield();
    ASSERT_EQ(data, expected);
  });
}

TEST_P(NonblockingCollectivesTest, InFlightCollectivesCompleteOutOfOrder) {
  // Several collectives launched before any is waited, then completed in
  // reverse launch order: tag sequencing keeps their chunks apart, and
  // buffered sends mean no rank deadlocks waiting for a peer that is
  // busy with a different machine.
  const int p = GetParam();
  const std::size_t n = 29;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto exp_reduce = RankData(ctx.rank, n);
    comm.AllReduce(std::span<float>(exp_reduce), ReduceOp::kSum);
    const auto exp_bcast = RankData(0, n);

    auto a = RankData(ctx.rank, n);
    std::vector<float> b = ctx.rank == 0 ? RankData(0, n)
                                         : std::vector<float>(n, -1.0f);
    auto c = RankData(ctx.rank, n);
    CollectiveRequest ra = IAllReduce(comm, std::span<float>(a),
                                      ReduceOp::kSum);
    CollectiveRequest rb = IBroadcast(comm, std::span<float>(b), 0);
    CollectiveRequest rc = IAllReduce(comm, std::span<float>(c),
                                      ReduceOp::kSum);
    rc.Wait();
    rb.Wait();
    ra.Wait();
    ASSERT_EQ(a, exp_reduce);
    ASSERT_EQ(b, exp_bcast);
    ASSERT_EQ(c, exp_reduce);
  });
}

TEST_P(NonblockingCollectivesTest, InterleavesWithBlockingCollectives) {
  // A blocking collective issued while a nonblocking one is in flight
  // must not consume the machine's chunks (distinct tag sequence slots).
  const int p = GetParam();
  const std::size_t n = 33;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto expected = RankData(ctx.rank, n);
    comm.AllReduce(std::span<float>(expected), ReduceOp::kSum);

    auto data = RankData(ctx.rank, n);
    CollectiveRequest req = IAllReduce(comm, std::span<float>(data),
                                       ReduceOp::kSum);
    std::vector<float> other(n, static_cast<float>(ctx.rank));
    comm.AllReduce(std::span<float>(other), ReduceOp::kSum);
    ASSERT_EQ(other[0], static_cast<float>(p * (p - 1) / 2));
    req.Wait();
    ASSERT_EQ(data, expected);
  });
}

TEST_P(NonblockingCollectivesTest, CancelUnwindsCleanly) {
  // Every rank cancels an in-flight broadcast, then runs a normal
  // collective: stale chunks must rot harmlessly under their own tags
  // instead of corrupting later traffic. (SPMD contract: the cancel
  // decision is taken identically on all ranks, as the abort path does.)
  const int p = GetParam();
  const std::size_t n = 41;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    {
      std::vector<float> doomed(n, static_cast<float>(ctx.rank));
      CollectiveRequest req = IBroadcast(comm, std::span<float>(doomed), 0);
      req.Cancel();
      ASSERT_TRUE(req.done());
      // `doomed` dies here; a late chunk must not land in freed memory.
    }
    std::vector<float> data(n, 1.0f);
    comm.AllReduce(std::span<float>(data), ReduceOp::kSum);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(data[i], static_cast<float>(p));
    }
  });
}

TEST_P(NonblockingCollectivesTest, PayloadSmallerThanGroup) {
  // With n < p, some ring chunks are empty; the machines must skip them
  // exactly like the blocking schedules do.
  const int p = GetParam();
  const std::size_t n = 2;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto expected = RankData(ctx.rank, n);
    comm.AllReduce(std::span<float>(expected), ReduceOp::kSum);
    auto data = RankData(ctx.rank, n);
    CollectiveRequest r = IAllReduce(comm, std::span<float>(data),
                                     ReduceOp::kSum);
    r.Wait();
    ASSERT_EQ(data, expected);

    std::vector<float> bc = ctx.rank == 0 ? RankData(0, n)
                                          : std::vector<float>(n, -1.0f);
    CollectiveRequest rb = IBroadcast(comm, std::span<float>(bc), 0);
    rb.Wait();
    ASSERT_EQ(bc, RankData(0, n));
  });
}

TEST_P(NonblockingCollectivesTest, VolumeMatchesBlocking) {
  // Same ring schedules => same measured per-rank volume as the blocking
  // collectives the Sec 7 accounting was validated against.
  const int p = GetParam();
  if (p == 1) GTEST_SKIP() << "no communication at p=1";
  const std::size_t n = 120;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    auto data = RankData(ctx.rank, n);
    comm.AllReduce(std::span<float>(data), ReduceOp::kSum);
    const CommStats blocking = comm.stats();
    auto data2 = RankData(ctx.rank, n);
    CollectiveRequest req = IAllReduce(comm, std::span<float>(data2),
                                       ReduceOp::kSum);
    req.Wait();
    const CommStats nonblocking = comm.stats() - blocking;
    EXPECT_EQ(nonblocking.bytes_sent, blocking.bytes_sent);
    EXPECT_EQ(nonblocking.bytes_received, blocking.bytes_received);
    EXPECT_EQ(nonblocking.collectives, blocking.collectives);
  });
}

INSTANTIATE_TEST_SUITE_P(WorldSizes, NonblockingCollectivesTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace zero::comm
