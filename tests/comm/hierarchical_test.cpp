#include "comm/hierarchical.hpp"

#include <gtest/gtest.h>

#include "comm/topology.hpp"
#include "comm/world.hpp"
#include "common/rng.hpp"

namespace zero::comm {
namespace {

std::vector<float> RankData(int rank, std::size_t n) {
  std::vector<float> v(n);
  Rng rng(500 + static_cast<std::uint64_t>(rank));
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

struct GroupShape {
  int nodes;
  int per_node;
};

class HierarchicalTest : public ::testing::TestWithParam<GroupShape> {};

TEST_P(HierarchicalTest, MatchesFlatAllReduce) {
  const auto [nodes, per_node] = GetParam();
  const int world_size = nodes * per_node;
  const std::size_t n = 103;  // not divisible by per_node: padding path

  std::vector<float> expected(n, 0.0f);
  for (int r = 0; r < world_size; ++r) {
    auto d = RankData(r, n);
    for (std::size_t i = 0; i < n; ++i) expected[i] += d[i];
  }

  // "Nodes" are contiguous blocks of per_node ranks; leaders are the
  // local-rank-0 members — exactly the MP-group layout of GridTopology.
  GridTopology grid(world_size, per_node);
  World world(world_size);
  world.Run([&](RankContext& ctx) {
    Communicator local = grid.MakeMpComm(ctx);  // intra-"node" group
    std::optional<Communicator> leaders;
    if (grid.MpRank(ctx.rank) == 0) {
      leaders.emplace(grid.MakeDpComm(ctx));  // local rank 0 across nodes
    }
    auto data = RankData(ctx.rank, n);
    HierarchicalAllReduce(local, leaders ? &*leaders : nullptr,
                          std::span<float>(data), ReduceOp::kSum);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_NEAR(data[i], expected[i], 1e-3f)
          << "rank " << ctx.rank << " i " << i;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Shapes, HierarchicalTest,
                         ::testing::Values(GroupShape{2, 2}, GroupShape{2, 4},
                                           GroupShape{3, 2},
                                           GroupShape{4, 4},
                                           GroupShape{1, 4},
                                           GroupShape{4, 1}));

TEST(HierarchicalVolumeTest, OnlyOneGthOfTheMessageCrossesNodes) {
  // The point of the schedule: non-leader ranks never touch the slow
  // network, and the leaders' cross-node traffic is ~2 * M (all-reduce
  // of the gathered message), independent of the local group size.
  const int nodes = 2;
  const int per_node = 4;
  const std::size_t n = 4096;  // divisible: no padding noise
  GridTopology grid(nodes * per_node, per_node);
  World world(nodes * per_node);
  world.Run([&](RankContext& ctx) {
    Communicator local = grid.MakeMpComm(ctx);
    std::optional<Communicator> leaders;
    if (grid.MpRank(ctx.rank) == 0) leaders.emplace(grid.MakeDpComm(ctx));
    std::vector<float> data(n, 1.0f);
    HierarchicalAllReduce(local, leaders ? &*leaders : nullptr,
                          std::span<float>(data), ReduceOp::kSum);
    const double msg_bytes = static_cast<double>(n) * sizeof(float);
    if (leaders) {
      // 2 * M * (nodes-1)/nodes for the ring all-reduce across nodes.
      const double cross = static_cast<double>(leaders->stats().bytes_sent);
      EXPECT_NEAR(cross, 2.0 * msg_bytes * (nodes - 1) / nodes,
                  0.05 * msg_bytes);
    }
    // Local traffic per rank stays O(M): reduce-scatter + gather-to-
    // leader + scatter-back + all-gather, each ~M*(g-1)/g or M/g.
    const double local_sent = static_cast<double>(local.stats().bytes_sent);
    EXPECT_LT(local_sent, 3.0 * msg_bytes);
  });
}

TEST(HierarchicalTest, MaxReduction) {
  GridTopology grid(4, 2);
  World world(4);
  world.Run([&](RankContext& ctx) {
    Communicator local = grid.MakeMpComm(ctx);
    std::optional<Communicator> leaders;
    if (grid.MpRank(ctx.rank) == 0) leaders.emplace(grid.MakeDpComm(ctx));
    std::vector<float> data{static_cast<float>(ctx.rank)};
    HierarchicalAllReduce(local, leaders ? &*leaders : nullptr,
                          std::span<float>(data), ReduceOp::kMax);
    EXPECT_EQ(data[0], 3.0f);
  });
}

TEST(HierarchicalTest, RejectsAvgAndWrongLeaderPassing) {
  GridTopology grid(4, 2);
  World world(4);
  EXPECT_THROW(
      world.Run([&](RankContext& ctx) {
        Communicator local = grid.MakeMpComm(ctx);
        std::optional<Communicator> leaders;
        if (grid.MpRank(ctx.rank) == 0) leaders.emplace(grid.MakeDpComm(ctx));
        std::vector<float> data{1.0f};
        HierarchicalAllReduce(local, leaders ? &*leaders : nullptr,
                              std::span<float>(data), ReduceOp::kAvg);
      }),
      Error);
}

}  // namespace
}  // namespace zero::comm
