#include "comm/mailbox.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace zero::comm {
namespace {

std::vector<std::byte> Bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(MailboxTest, DepositThenTake) {
  Mailbox box;
  auto payload = Bytes({1, 2, 3});
  box.Deposit(0, 7, payload);
  EXPECT_EQ(box.PendingCount(), 1u);
  auto msg = box.Take(0, 7);
  EXPECT_EQ(msg, payload);
  EXPECT_EQ(box.PendingCount(), 0u);
}

TEST(MailboxTest, MatchesSourceAndTagExactly) {
  Mailbox box;
  box.Deposit(1, 5, Bytes({10}));
  box.Deposit(2, 5, Bytes({20}));
  box.Deposit(1, 6, Bytes({30}));
  EXPECT_EQ(box.Take(2, 5), Bytes({20}));
  EXPECT_EQ(box.Take(1, 6), Bytes({30}));
  EXPECT_EQ(box.Take(1, 5), Bytes({10}));
}

TEST(MailboxTest, FifoPerKey) {
  Mailbox box;
  box.Deposit(0, 1, Bytes({1}));
  box.Deposit(0, 1, Bytes({2}));
  EXPECT_EQ(box.Take(0, 1), Bytes({1}));
  EXPECT_EQ(box.Take(0, 1), Bytes({2}));
}

TEST(MailboxTest, TakeBlocksUntilDeposit) {
  Mailbox box;
  std::vector<std::byte> got;
  std::thread receiver([&] { got = box.Take(3, 9); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.Deposit(3, 9, Bytes({42}));
  receiver.join();
  EXPECT_EQ(got, Bytes({42}));
}

TEST(MailboxTest, PayloadIsCopiedNotAliased) {
  Mailbox box;
  std::vector<std::byte> payload = Bytes({7});
  box.Deposit(0, 0, payload);
  payload[0] = static_cast<std::byte>(99);
  EXPECT_EQ(box.Take(0, 0), Bytes({7}));
}

}  // namespace
}  // namespace zero::comm
