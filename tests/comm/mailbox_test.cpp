#include "comm/mailbox.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "common/error.hpp"

namespace zero::comm {
namespace {

std::vector<std::byte> Bytes(std::initializer_list<int> values) {
  std::vector<std::byte> out;
  for (int v : values) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(MailboxTest, DepositThenTake) {
  Mailbox box;
  auto payload = Bytes({1, 2, 3});
  box.Deposit(0, 7, payload);
  EXPECT_EQ(box.PendingCount(), 1u);
  auto msg = box.Take(0, 7);
  EXPECT_EQ(msg, payload);
  EXPECT_EQ(box.PendingCount(), 0u);
}

TEST(MailboxTest, MatchesSourceAndTagExactly) {
  Mailbox box;
  box.Deposit(1, 5, Bytes({10}));
  box.Deposit(2, 5, Bytes({20}));
  box.Deposit(1, 6, Bytes({30}));
  EXPECT_EQ(box.Take(2, 5), Bytes({20}));
  EXPECT_EQ(box.Take(1, 6), Bytes({30}));
  EXPECT_EQ(box.Take(1, 5), Bytes({10}));
}

TEST(MailboxTest, FifoPerKey) {
  Mailbox box;
  box.Deposit(0, 1, Bytes({1}));
  box.Deposit(0, 1, Bytes({2}));
  EXPECT_EQ(box.Take(0, 1), Bytes({1}));
  EXPECT_EQ(box.Take(0, 1), Bytes({2}));
}

TEST(MailboxTest, TakeBlocksUntilDeposit) {
  Mailbox box;
  std::vector<std::byte> got;
  std::thread receiver([&] { got = box.Take(3, 9); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  box.Deposit(3, 9, Bytes({42}));
  receiver.join();
  EXPECT_EQ(got, Bytes({42}));
}

TEST(MailboxTest, PayloadIsCopiedNotAliased) {
  Mailbox box;
  std::vector<std::byte> payload = Bytes({7});
  box.Deposit(0, 0, payload);
  payload[0] = static_cast<std::byte>(99);
  EXPECT_EQ(box.Take(0, 0), Bytes({7}));
}

TEST(MailboxTest, TakeForDeliversQueuedMessageImmediately) {
  Mailbox box;
  box.Deposit(0, 7, Bytes({5}));
  std::vector<std::byte> out;
  EXPECT_EQ(box.TakeFor(0, 7, std::chrono::milliseconds(0), out),
            TakeStatus::kOk);
  EXPECT_EQ(out, Bytes({5}));
}

TEST(MailboxTest, TakeForTimesOutWithoutMessage) {
  Mailbox box;
  std::vector<std::byte> out;
  EXPECT_EQ(box.TakeFor(0, 7, std::chrono::milliseconds(5), out),
            TakeStatus::kTimeout);
}

TEST(MailboxTest, TakeForWakesOnConcurrentDeposit) {
  Mailbox box;
  std::vector<std::byte> out;
  TakeStatus status = TakeStatus::kTimeout;
  std::thread receiver(
      [&] { status = box.TakeFor(1, 2, std::chrono::seconds(10), out); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.Deposit(1, 2, Bytes({9}));
  receiver.join();
  EXPECT_EQ(status, TakeStatus::kOk);
  EXPECT_EQ(out, Bytes({9}));
}

// Regression: shutting down a mailbox with a blocked Take must wake the
// waiter with CommError, not strand it (the shutdown-while-blocked race).
TEST(MailboxTest, ShutdownWakesBlockedTake) {
  Mailbox box;
  std::thread receiver([&] {
    EXPECT_THROW({ auto msg = box.Take(0, 1); (void)msg; }, CommError);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.Shutdown();
  receiver.join();
}

TEST(MailboxTest, ShutdownWakesBlockedTakeFor) {
  Mailbox box;
  std::vector<std::byte> out;
  TakeStatus status = TakeStatus::kOk;
  std::thread receiver(
      [&] { status = box.TakeFor(0, 1, Mailbox::kForever, out); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.Shutdown();
  receiver.join();
  EXPECT_EQ(status, TakeStatus::kShutdown);
}

TEST(MailboxTest, TakeAfterShutdownThrowsImmediately) {
  Mailbox box;
  box.Shutdown();
  EXPECT_TRUE(box.shut_down());
  EXPECT_THROW({ auto msg = box.Take(0, 1); (void)msg; }, CommError);
}

TEST(MailboxTest, QueuedMessageWinsOverShutdown) {
  Mailbox box;
  box.Deposit(0, 1, Bytes({4}));
  box.Shutdown();
  std::vector<std::byte> out;
  EXPECT_EQ(box.TakeFor(0, 1, std::chrono::milliseconds(0), out),
            TakeStatus::kOk);
  EXPECT_EQ(out, Bytes({4}));
}

TEST(MailboxTest, DepositAfterShutdownIsDropped) {
  Mailbox box;
  box.Shutdown();
  box.Deposit(0, 1, Bytes({1}));
  EXPECT_EQ(box.PendingCount(), 0u);
}

TEST(MailboxTest, InterruptWakesTakeForButNotDelivery) {
  Mailbox box;
  std::vector<std::byte> out;
  TakeStatus status = TakeStatus::kOk;
  std::thread receiver(
      [&] { status = box.TakeFor(0, 1, Mailbox::kForever, out); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  box.Interrupt();
  receiver.join();
  EXPECT_EQ(status, TakeStatus::kInterrupted);
  // The box still works after an interrupt.
  box.Deposit(0, 1, Bytes({3}));
  EXPECT_EQ(box.TakeFor(0, 1, std::chrono::milliseconds(0), out),
            TakeStatus::kOk);
  EXPECT_EQ(out, Bytes({3}));
}

}  // namespace
}  // namespace zero::comm
