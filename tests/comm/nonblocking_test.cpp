#include <gtest/gtest.h>

#include <vector>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "common/rng.hpp"

namespace zero::comm {
namespace {

std::vector<float> RankPayload(int from, int to, std::size_t n) {
  std::vector<float> v(n);
  Rng rng(7000 + static_cast<std::uint64_t>(from) * 131 +
          static_cast<std::uint64_t>(to));
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

TEST(NonblockingTest, DefaultAndSendRequestsAreDone) {
  CommRequest empty;
  EXPECT_TRUE(empty.done());
  empty.Wait();  // no-op

  World world(2);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    if (ctx.rank == 0) {
      std::vector<float> v{1.0f, 2.0f};
      CommRequest req = comm.IsSend(1, std::span<const float>(v), 5);
      // Deposits are buffered copies: the send is complete on return.
      EXPECT_TRUE(req.done());
      req.Wait();  // no-op
    } else {
      std::vector<float> v(2);
      comm.Recv(0, std::span<float>(v), 5);
      EXPECT_EQ(v[0], 1.0f);
      EXPECT_EQ(v[1], 2.0f);
    }
  });
}

TEST(NonblockingTest, WaitCompletesOutOfPostingOrder) {
  // Requests are independent: waiting on the last-posted request first
  // must not consume or corrupt the earlier ones.
  const std::size_t n = 33;
  World world(2);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    if (ctx.rank == 1) {
      for (std::uint64_t tag = 1; tag <= 3; ++tag) {
        auto v = RankPayload(1, 0, n + tag);
        comm.Send(0, std::span<const float>(v), tag);
      }
      return;
    }
    std::vector<std::vector<float>> bufs;
    std::vector<CommRequest> reqs;
    for (std::uint64_t tag = 1; tag <= 3; ++tag) {
      bufs.emplace_back(n + tag);
      reqs.push_back(comm.IsRecv(1, std::span<float>(bufs.back()), tag));
    }
    for (int i = 2; i >= 0; --i) {
      reqs[static_cast<std::size_t>(i)].Wait();
      EXPECT_TRUE(reqs[static_cast<std::size_t>(i)].done());
      const auto expected =
          RankPayload(1, 0, n + static_cast<std::uint64_t>(i) + 1);
      EXPECT_EQ(bufs[static_cast<std::size_t>(i)], expected) << "tag " << i + 1;
    }
  });
}

TEST(NonblockingTest, TestPollsWithoutConsumingOtherRequests) {
  // Rank 1 sends nothing until rank 0 says go, so the first Test() is a
  // guaranteed miss; afterwards rank 0 polls both requests to completion
  // while they complete in the opposite of posting order.
  const std::size_t n = 48;
  World world(2);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    if (ctx.rank == 1) {
      std::vector<float> go(1);
      comm.Recv(0, std::span<float>(go), 99);
      // Send tag 2 first, tag 1 second: arrival order inverts posting
      // order on rank 0.
      auto b = RankPayload(1, 0, n);
      comm.Send(0, std::span<const float>(b), 2);
      auto a = RankPayload(1, 0, n + 1);
      comm.Send(0, std::span<const float>(a), 1);
      return;
    }
    std::vector<float> buf1(n + 1);
    std::vector<float> buf2(n);
    CommRequest r1 = comm.IsRecv(1, std::span<float>(buf1), 1);
    CommRequest r2 = comm.IsRecv(1, std::span<float>(buf2), 2);
    EXPECT_FALSE(r1.Test());  // peer has not sent yet
    EXPECT_FALSE(r2.Test());
    std::vector<float> go{1.0f};
    comm.Send(1, std::span<const float>(go), 99);
    while (!r1.Test() || !r2.Test()) {
    }
    EXPECT_EQ(buf1, RankPayload(1, 0, n + 1));
    EXPECT_EQ(buf2, RankPayload(1, 0, n));
  });
}

TEST(NonblockingTest, ManyPeersSameTagUnderContention) {
  // The mailbox keys on (source, tag): every peer can use the same tag
  // without cross-talk, and requests complete in any wait order.
  const int p = 5;
  const std::size_t n = 29;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    if (ctx.rank != 0) {
      auto v = RankPayload(ctx.rank, 0, n);
      (void)comm.IsSend(0, std::span<const float>(v), 7);
      return;
    }
    std::vector<std::vector<float>> bufs(p);
    std::vector<CommRequest> reqs(p);
    for (int r = 1; r < p; ++r) {
      bufs[static_cast<std::size_t>(r)].resize(n);
      reqs[static_cast<std::size_t>(r)] = comm.IsRecv(
          r, std::span<float>(bufs[static_cast<std::size_t>(r)]), 7);
    }
    // Wait highest rank first to exercise out-of-order completion.
    for (int r = p - 1; r >= 1; --r) {
      reqs[static_cast<std::size_t>(r)].Wait();
      EXPECT_EQ(bufs[static_cast<std::size_t>(r)], RankPayload(r, 0, n))
          << "peer " << r;
    }
  });
}

TEST(NonblockingTest, InterleavedMatchesBlockingByteForByte) {
  // Property: an exchange issued through IsSend/IsRecv with interleaved
  // posting and out-of-order completion delivers exactly the bytes the
  // blocking Send/Recv path delivers.
  const int p = 4;
  const std::size_t n = 57;
  const int rounds = 3;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (int round = 0; round < rounds; ++round) {
      const std::uint64_t tag_base =
          static_cast<std::uint64_t>(round) * 100 + 10;
      // Blocking reference: everyone sends to everyone (deposits are
      // buffered, so all sends can precede all receives).
      std::vector<std::vector<float>> blocking(p);
      for (int peer = 0; peer < p; ++peer) {
        if (peer == ctx.rank) continue;
        auto v = RankPayload(ctx.rank, peer, n + static_cast<std::size_t>(round));
        comm.Send(peer, std::span<const float>(v), tag_base);
      }
      for (int peer = 0; peer < p; ++peer) {
        if (peer == ctx.rank) continue;
        blocking[static_cast<std::size_t>(peer)].resize(
            n + static_cast<std::size_t>(round));
        comm.Recv(peer,
                  std::span<float>(blocking[static_cast<std::size_t>(peer)]),
                  tag_base);
      }
      comm.Barrier();

      // Nonblocking: interleave recv posts and sends, then complete via
      // a mix of polling and waiting, highest peer first.
      std::vector<std::vector<float>> nonblocking(p);
      std::vector<CommRequest> reqs(p);
      for (int peer = 0; peer < p; ++peer) {
        if (peer == ctx.rank) continue;
        nonblocking[static_cast<std::size_t>(peer)].resize(
            n + static_cast<std::size_t>(round));
        reqs[static_cast<std::size_t>(peer)] = comm.IsRecv(
            peer,
            std::span<float>(nonblocking[static_cast<std::size_t>(peer)]),
            tag_base + 1);
        auto v = RankPayload(ctx.rank, peer, n + static_cast<std::size_t>(round));
        (void)comm.IsSend(peer, std::span<const float>(v), tag_base + 1);
      }
      for (int peer = p - 1; peer >= 0; --peer) {
        if (peer == ctx.rank) continue;
        CommRequest& req = reqs[static_cast<std::size_t>(peer)];
        if (!req.Test()) req.Wait();
        ASSERT_EQ(nonblocking[static_cast<std::size_t>(peer)],
                  blocking[static_cast<std::size_t>(peer)])
            << "round " << round << " peer " << peer;
      }
      comm.Barrier();
    }
  });
}

}  // namespace
}  // namespace zero::comm
