// CommStats arithmetic and the CommDelta scoped-delta helper that
// replaced hand-reset counter bookkeeping in the benches and trainer.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "comm/world.hpp"

namespace zero::comm {
namespace {

TEST(CommStatsTest, ArithmeticAndEquality) {
  CommStats a{/*bytes_sent=*/100, /*bytes_received=*/50,
              /*messages_sent=*/4, /*collectives=*/2};
  CommStats b{/*bytes_sent=*/40, /*bytes_received=*/10,
              /*messages_sent=*/1, /*collectives=*/1};

  const CommStats sum = a + b;
  EXPECT_EQ(sum.bytes_sent, 140u);
  EXPECT_EQ(sum.bytes_received, 60u);
  EXPECT_EQ(sum.messages_sent, 5u);
  EXPECT_EQ(sum.collectives, 3u);

  const CommStats diff = sum - b;
  EXPECT_TRUE(diff == a);
  EXPECT_FALSE(diff == b);

  CommStats c = a;
  c += b;
  EXPECT_TRUE(c == sum);
  c -= b;
  EXPECT_TRUE(c == a);
}

// Regression for the pattern the helper replaced: measuring one window
// of traffic on a live communicator without resetting its counters, so
// later windows and whole-run totals stay intact.
TEST(CommStatsTest, CommDeltaMeasuresWindowsWithoutReset) {
  World world(2);
  world.Run([](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    std::vector<float> buf(256, ctx.rank == 0 ? 1.0f : 2.0f);

    // Warm-up traffic that a naive "read stats at the end" would lump in.
    comm.AllReduce(std::span<float>(buf));
    const CommStats after_warmup = comm.stats();
    EXPECT_GT(after_warmup.bytes_sent, 0u);

    CommDelta window(comm);
    EXPECT_TRUE(window.Delta() == CommStats{});  // empty window

    comm.AllReduce(std::span<float>(buf));
    const CommStats one_op = window.Delta();
    EXPECT_GT(one_op.bytes_sent, 0u);
    // Ring all-reduce = reduce-scatter + all-gather phases.
    EXPECT_GE(one_op.collectives, 1u);

    // Rebase starts a fresh window; the same op costs the same bytes.
    window.Rebase();
    comm.AllReduce(std::span<float>(buf));
    EXPECT_TRUE(window.Delta() == one_op);

    // The communicator's own counters were never reset.
    EXPECT_EQ(comm.stats().collectives, 3 * one_op.collectives);
    EXPECT_EQ(comm.stats().bytes_sent,
              after_warmup.bytes_sent + 2 * one_op.bytes_sent);
  });
}

}  // namespace
}  // namespace zero::comm
