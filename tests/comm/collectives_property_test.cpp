// Randomized property tests for the collective library: arbitrary sizes
// (including 0 and 1), random contents, random interleavings of
// different collectives, and cross-group isolation.
#include <gtest/gtest.h>

#include "comm/communicator.hpp"
#include "comm/topology.hpp"
#include "comm/world.hpp"
#include "common/rng.hpp"

namespace zero::comm {
namespace {

class CollectivePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CollectivePropertyTest, RandomSizedAllReduceSequences) {
  const std::uint64_t seed = GetParam();
  Rng shape_rng(seed);
  const int p = 2 + static_cast<int>(shape_rng.NextBelow(4));  // 2..5
  // Pre-draw the op sequence so every rank agrees on it.
  struct Op {
    std::size_t n;
    ReduceOp op;
  };
  std::vector<Op> ops;
  for (int i = 0; i < 12; ++i) {
    const std::size_t n = shape_rng.NextBelow(70);  // includes 0
    ops.push_back(Op{n, shape_rng.NextBelow(2) == 0 ? ReduceOp::kSum
                                                    : ReduceOp::kMax});
  }

  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    for (std::size_t k = 0; k < ops.size(); ++k) {
      std::vector<float> data(ops[k].n);
      std::vector<float> expected(ops[k].n,
                                  ops[k].op == ReduceOp::kSum
                                      ? 0.0f
                                      : -1e30f);
      for (int r = 0; r < p; ++r) {
        Rng rr(seed * 1000 + k * 10 + static_cast<std::uint64_t>(r));
        for (std::size_t i = 0; i < ops[k].n; ++i) {
          const float v = rr.NextGaussian();
          if (r == ctx.rank) data[i] = v;
          if (ops[k].op == ReduceOp::kSum) {
            expected[i] += v;
          } else {
            expected[i] = std::max(expected[i], v);
          }
        }
      }
      comm.AllReduce(std::span<float>(data), ops[k].op);
      for (std::size_t i = 0; i < ops[k].n; ++i) {
        ASSERT_NEAR(data[i], expected[i], 1e-4f)
            << "op " << k << " i " << i;
      }
    }
  });
}

TEST_P(CollectivePropertyTest, MixedCollectiveInterleavings) {
  const std::uint64_t seed = GetParam();
  const int p = 3;
  World world(p);
  world.Run([&](RankContext& ctx) {
    Communicator comm = Communicator::WholeWorld(ctx);
    Rng rng(seed);  // identical schedule on every rank
    for (int k = 0; k < 15; ++k) {
      const int which = static_cast<int>(rng.NextBelow(4));
      const std::size_t chunk = 1 + rng.NextBelow(9);
      switch (which) {
        case 0: {
          std::vector<float> d(chunk * 3, static_cast<float>(ctx.rank + 1));
          comm.AllReduce(std::span<float>(d), ReduceOp::kSum);
          ASSERT_EQ(d[0], 6.0f);
          break;
        }
        case 1: {
          std::vector<float> mine(chunk, static_cast<float>(ctx.rank));
          std::vector<float> all(chunk * 3);
          comm.AllGather(std::span<const float>(mine), std::span<float>(all));
          ASSERT_EQ(all[chunk * 2], 2.0f);
          break;
        }
        case 2: {
          const int root = static_cast<int>(rng.NextBelow(3));
          std::vector<float> d(chunk,
                               ctx.rank == root ? 7.0f : 0.0f);
          comm.Broadcast(std::span<float>(d), root);
          ASSERT_EQ(d[0], 7.0f);
          break;
        }
        case 3: {
          std::vector<float> d(chunk * 3, 1.0f);
          std::vector<float> shard(chunk);
          comm.ReduceScatter(std::span<float>(d), std::span<float>(shard),
                             ReduceOp::kSum);
          ASSERT_EQ(shard[0], 3.0f);
          break;
        }
      }
    }
  });
}

TEST_P(CollectivePropertyTest, ConcurrentGroupsDoNotInterfere) {
  // Two disjoint groups run different collective sequences at the same
  // time; tags must never cross.
  const std::uint64_t seed = GetParam();
  World world(4);
  GridTopology grid(4, 2);
  world.Run([&](RankContext& ctx) {
    Communicator mp = grid.MakeMpComm(ctx);
    Communicator dp = grid.MakeDpComm(ctx);
    Rng rng(seed + 17);
    for (int k = 0; k < 10; ++k) {
      const std::size_t n = 1 + rng.NextBelow(20);
      std::vector<float> a(n, static_cast<float>(ctx.rank + 1));
      std::vector<float> b(n, static_cast<float>(10 * (ctx.rank + 1)));
      // Interleave: mp op, dp op, mp op with no global sync between.
      mp.AllReduce(std::span<float>(a), ReduceOp::kSum);
      dp.AllReduce(std::span<float>(b), ReduceOp::kSum);
      mp.Broadcast(std::span<float>(a), 0);
      const float mp_expected =
          ctx.rank < 2 ? 3.0f : 7.0f;  // rows {1,2} and {3,4}
      const float dp_expected =
          ctx.rank % 2 == 0 ? 40.0f : 60.0f;  // cols {10,30}, {20,40}
      ASSERT_EQ(a[0], mp_expected);
      ASSERT_EQ(b[0], dp_expected);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, CollectivePropertyTest,
                         ::testing::Values(11u, 22u, 33u));

}  // namespace
}  // namespace zero::comm
