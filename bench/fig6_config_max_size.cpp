// Figure 6: largest trainable model under ZeRO configurations C1-C5
// (Table 3), hidden 8192, MP 16 — grown layer by layer until the memory
// model reports OOM.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

using namespace zero;

namespace {
const char* kConfigNames[] = {"", "C1: Pos+CB+MD", "C2: +Pa",
                              "C3: Pos+g+CB+MD", "C4: Pos+g+Pa",
                              "C5: Pos+g+Pa+cpu"};
const char* kPaperSizes[] = {"", "40B", "60B", "(between)", "140B", "150B"};
}  // namespace

int main() {
  sim::ClusterSpec cluster;
  std::printf(
      "== Figure 6: max model size under configs C1-C5 (hidden 8192, "
      "MP 16) ==\n\n");
  Table table({"config", "max layers", "max params", "states/GPU",
               "ckpts/GPU", "paper"});
  sim::JobConfig base = sim::Figure6BaseRun().ToJob();
  for (int config = 1; config <= 5; ++config) {
    sim::JobConfig job = sim::JobConfig::WithConfigId(base, config);
    job.model.layers = sim::MaxLayers(cluster, job);
    const sim::MemoryBreakdown mem = sim::EstimateMemory(cluster, job);
    table.AddRow({kConfigNames[config], std::to_string(job.model.layers),
                  FormatCount(static_cast<double>(job.psi())),
                  FormatBytes(mem.model_states()),
                  FormatBytes(mem.checkpoints), kPaperSizes[config]});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper narrative: 40B (C1) -> 60B with Pa (C2) -> 140B with "
      "Pos+g (C4) -> 150B with Pa+cpu (C5).\n");
  return 0;
}
