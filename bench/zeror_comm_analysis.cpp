// Section 8: communication analysis of ZeRO-R, measured on the real
// runtime with Megatron-style MP — Pa's all-gather overhead relative to
// baseline MP communication, and Pa+cpu's 2x host transfer volume.
#include <cstdio>
#include <iostream>
#include <mutex>

#include "comm/world.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/trainer.hpp"

using namespace zero;

namespace {

core::TrainOptions BaseOptions() {
  core::TrainOptions opt;
  opt.model.vocab = 32;
  opt.model.seq = 16;
  opt.model.hidden = 32;
  opt.model.heads = 4;
  opt.model.layers = 4;
  opt.engine.stage = model::ZeroStage::kOsG;
  opt.cluster.dp_degree = 1;
  opt.cluster.mp_degree = 4;
  opt.cluster.device_capacity_bytes = 128ull << 20;
  opt.batch_per_rank = 4;
  opt.steps = 2;
  opt.zero_r.activation_checkpointing = true;
  return opt;
}

}  // namespace

int main() {
  std::printf(
      "== Sec 8: ZeRO-R communication overhead, measured (MP = 4) ==\n\n");

  core::TrainOptions base = BaseOptions();
  const core::TrainResult no_pa = core::TrainGpt(base);

  base.zero_r.partition_activations = true;
  const core::TrainResult with_pa = core::TrainGpt(base);

  base.zero_r.cpu_offload = true;
  const core::TrainResult with_cpu = core::TrainGpt(base);

  const double mp_base = static_cast<double>(no_pa.TotalMpBytesSent());
  const double mp_pa = static_cast<double>(with_pa.TotalMpBytesSent());
  const double overhead = (mp_pa - mp_base) / mp_base * 100.0;

  Table table({"configuration", "MP bytes (all ranks)", "vs baseline MP",
               "host transfer"});
  char pct[24];
  table.AddRow({"MP + checkpointing", FormatBytes(mp_base), "1.00x",
                "0 B"});
  std::snprintf(pct, sizeof(pct), "+%.1f%%", overhead);
  table.AddRow({"  + Pa", FormatBytes(mp_pa), pct, "0 B"});
  std::uint64_t to_host = 0, from_host = 0;
  for (const auto& r : with_cpu.ranks) {
    to_host += r.host.bytes_to_host;
    from_host += r.host.bytes_from_host;
  }
  std::snprintf(pct, sizeof(pct), "+%.1f%%",
                (static_cast<double>(with_cpu.TotalMpBytesSent()) - mp_base) /
                    mp_base * 100.0);
  table.AddRow({"  + Pa+cpu",
                FormatBytes(static_cast<double>(with_cpu.TotalMpBytesSent())),
                pct,
                FormatBytes(static_cast<double>(to_host + from_host))});
  table.Print(std::cout);

  std::printf(
      "\nPaper Sec 8: Pa adds one all-gather per block, < 10%% of "
      "Megatron's MP volume\n(each block already does 6 all-reduces = 12 "
      "message-sizes; Pa adds ~1).\nMeasured overhead here: +%.1f%%.\n"
      "Pa+cpu moves each checkpoint slice to the host and back (2x slice "
      "bytes):\nmeasured %s to host, %s back.\n",
      overhead, FormatBytes(static_cast<double>(to_host)).c_str(),
      FormatBytes(static_cast<double>(from_host)).c_str());
  return 0;
}
