// Figure 8: best achievable per-GPU throughput under configs C1-C5 for
// the 60B (128 GPUs) and 170B (400 GPUs) models — max batch from the
// memory model, throughput from the cost model.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

using namespace zero;

int main() {
  sim::ClusterSpec cluster;
  std::printf(
      "== Figure 8: best achievable throughput under configs C1-C5 "
      "==\n\n");
  Table table({"model", "config", "max batch", "TF/GPU", "offload s"});
  for (const sim::PaperRun& run : sim::Figure8Runs()) {
    for (int config = 1; config <= 5; ++config) {
      const sim::JobConfig job =
          sim::JobConfig::WithConfigId(run.ToJob(), config);
      const auto best = sim::BestThroughput(cluster, job);
      if (!best.has_value()) {
        table.AddRow({run.label, "C" + std::to_string(config), "OOM", "-",
                      "-"});
        continue;
      }
      sim::JobConfig fitted = job;
      fitted.batch_per_gpu = sim::MaxBatchPerGpu(cluster, job);
      char tf[16], off[16];
      std::snprintf(tf, sizeof(tf), "%.1f", best->tflops_per_gpu);
      std::snprintf(off, sizeof(off), "%.2f", best->offload_s);
      table.AddRow({run.label, "C" + std::to_string(config),
                    std::to_string(fitted.batch_per_gpu), tf, off});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: throughput improves with each memory optimization "
      "(bigger batches);\nC5's host transfers cost throughput on 60B but "
      "are the only way to run 170B (Sec 10.5).\n");
  return 0;
}
