// Figure 7: maximum memory cached per iteration for the 40B and 100B
// models under configs C1-C5 (appendix Table 8), from the cluster memory
// model — plus a scaled-down *runtime* measurement of the same ordering
// from this library's real caching allocator.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/trainer.hpp"
#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

using namespace zero;

namespace {
const char* kConfigNames[] = {"",   "C1", "C2", "C3", "C4", "C5"};

core::TrainOptions RuntimeOptions(int config) {
  core::TrainOptions opt;
  // Long sequences and many layers so activation checkpoints are a large
  // share of the footprint, as they are for the paper's 40B/100B models.
  opt.model.vocab = 32;
  opt.model.seq = 64;
  opt.model.hidden = 32;
  opt.model.heads = 4;
  opt.model.layers = 8;
  opt.cluster.dp_degree = 2;
  opt.cluster.mp_degree = 2;
  opt.cluster.device_capacity_bytes = 64ull << 20;
  opt.batch_per_rank = 8;
  opt.steps = 2;
  opt.zero_r.activation_checkpointing = true;
  // MD pre-allocates a fixed arena, which would mask exactly the
  // checkpoint footprint this figure measures — route checkpoints
  // through the caching allocator instead so peak_cached sees them.
  opt.zero_r.defrag_arena = false;
  switch (config) {
    case 1:
      opt.engine.stage = model::ZeroStage::kOs;
      break;
    case 2:
      opt.engine.stage = model::ZeroStage::kOs;
      opt.zero_r.partition_activations = true;
      break;
    case 3:
      opt.engine.stage = model::ZeroStage::kOsG;
      break;
    case 4:
      opt.engine.stage = model::ZeroStage::kOsG;
      opt.zero_r.partition_activations = true;
      break;
    case 5:
      opt.engine.stage = model::ZeroStage::kOsG;
      opt.zero_r.partition_activations = true;
      opt.zero_r.cpu_offload = true;
      break;
  }
  return opt;
}
}  // namespace

int main() {
  sim::ClusterSpec cluster;
  std::printf("== Figure 7: max cached memory per iteration, C1-C5 ==\n\n");
  std::printf("-- cluster memory model at paper scale (Table 8 configs) --\n");
  Table table({"model", "C1", "C2", "C3", "C4", "C5"});
  for (const sim::PaperRun& run : sim::Figure7Runs()) {
    std::vector<std::string> row{run.label};
    for (int config = 1; config <= 5; ++config) {
      const sim::JobConfig job =
          sim::JobConfig::WithConfigId(run.ToJob(), config);
      row.push_back(FormatBytes(sim::EstimateMemory(cluster, job).total()));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: cached memory decreases C1 -> C2 (Pa) and C3 -> C4;"
      " C4 -> C5 only\nvisibly decreases for the 100B model, whose "
      "activation share is large (Sec 10.5).\n");

  std::printf(
      "\n-- runtime measurement: peak bytes cached by the real caching "
      "allocator --\n");
  Table rt({"config", "peak cached (rank max)", "host transfers"});
  for (int config = 1; config <= 5; ++config) {
    const core::TrainResult result = core::TrainGpt(RuntimeOptions(config));
    if (result.oom) {
      rt.AddRow({kConfigNames[config], "OOM", "-"});
      continue;
    }
    std::uint64_t to_host = 0;
    for (const auto& r : result.ranks) to_host += r.host.bytes_to_host;
    rt.AddRow({kConfigNames[config],
               FormatBytes(static_cast<double>(result.MaxPeakCached())),
               FormatBytes(static_cast<double>(to_host))});
  }
  rt.Print(std::cout);
  return 0;
}
