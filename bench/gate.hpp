// Shared ZERO_BENCH_RELAX handling for the bench gate binaries.
//
// Every gate honors the same contract: a failed check prints FAIL and
// the binary exits 1, unless ZERO_BENCH_RELAX is set, in which case the
// failure is downgraded to a warning and the exit code stays 0 (for
// noisy or throttled machines). Two shapes cover all the benches:
//
//   * GateSet — accumulate named checks (`Require`/`Fail`), then
//     `return gates.ExitCode();`
//   * GateExit(ok) — tail call for benches that track one `ok` flag.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace zero::bench {

// True when ZERO_BENCH_RELAX is set: gate failures warn instead of fail.
[[nodiscard]] inline bool Relaxed() {
  return std::getenv("ZERO_BENCH_RELAX") != nullptr;
}

// Accumulates gate outcomes. Failures print immediately (FAIL, or
// "WARN (relaxed)" under ZERO_BENCH_RELAX); ExitCode() folds them into
// the process status with the standard relax downgrade.
class GateSet {
 public:
  GateSet() : relaxed_(Relaxed()) {}

  // Records one check; prints nothing when it passes.
  void Require(bool pass, const std::string& msg) {
    if (!pass) Fail(msg);
  }

  void Fail(const std::string& msg) {
    std::printf("%s: %s\n", relaxed_ ? "WARN (relaxed)" : "FAIL",
                msg.c_str());
    ++failures_;
  }

  [[nodiscard]] bool ok() const { return failures_ == 0; }
  [[nodiscard]] int failures() const { return failures_; }
  [[nodiscard]] bool relaxed() const { return relaxed_; }

  // 0 when every check passed or ZERO_BENCH_RELAX is set, else 1.
  [[nodiscard]] int ExitCode() const {
    return (failures_ == 0 || relaxed_) ? 0 : 1;
  }

 private:
  bool relaxed_;
  int failures_ = 0;
};

// Standard tail for benches that compute a single `ok` flag.
[[nodiscard]] inline int GateExit(bool ok) {
  if (!ok && Relaxed()) {
    std::printf("WARN: gate failed but ZERO_BENCH_RELAX is set\n");
    return 0;
  }
  return ok ? 0 : 1;
}

}  // namespace zero::bench
