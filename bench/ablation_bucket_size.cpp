// Ablation (Sec 6.2, CB): the constant-size fused buffer. Sweeps the
// engine's bucket size on a real stage-2 run and reports message counts
// and communication volume — small buckets cost messages (latency on a
// real network), big buckets cost memory, the volume is invariant.
#include <cstdio>
#include <iostream>
#include <mutex>

#include "comm/world.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"

using namespace zero;

namespace {
model::Batch MakeBatch(int rank, int step) {
  model::Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 7 + step + i);
    b.targets.push_back(0);
  }
  return b;
}
}  // namespace

int main() {
  const std::int64_t psi = 1 << 16;
  const int nd = 4;
  std::printf(
      "== Ablation: CB bucket size, stage 2, Psi = %lld, Nd = %d ==\n\n",
      static_cast<long long>(psi), nd);
  Table table({"bucket elems", "messages/step", "bytes sent/rank",
               "bucket buffer"});
  for (std::int64_t bucket : {256, 1024, 4096, 16384, 65536}) {
    std::uint64_t messages = 0;
    std::uint64_t bytes = 0;
    std::mutex mu;
    comm::World world(nd);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::QuadModel m(psi, 16);
      core::EngineConfig cfg;
      cfg.stage = model::ZeroStage::kOsG;
      cfg.fp16 = true;
      cfg.bucket_elems = bucket;
      core::ZeroDpEngine engine(cfg, m, dp, nullptr, 1);
      (void)engine.TrainStep(MakeBatch(ctx.rank, 0));
      comm::CommDelta step(dp);
      (void)engine.TrainStep(MakeBatch(ctx.rank, 1));
      if (ctx.rank == 0) {
        const comm::CommStats d = step.Delta();
        std::lock_guard<std::mutex> lock(mu);
        messages = d.messages_sent;
        bytes = d.bytes_sent;
      }
    });
    table.AddRow({std::to_string(bucket), std::to_string(messages),
                  FormatBytes(static_cast<double>(bytes)),
                  FormatBytes(static_cast<double>(bucket) * 2)});
  }
  table.Print(std::cout);
  std::printf(
      "\nVolume is bucket-size invariant; message count (network latency "
      "exposure)\nfalls as the bucket grows, while the fused buffer's "
      "memory stays constant in\nmodel size — the Sec 6.2 balance.\n");
  return 0;
}
