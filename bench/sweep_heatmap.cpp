// Design-space sweep: TFlops/GPU over the (MP degree x batch) grid for
// the 40B model on 400 GPUs, ZeRO Pos+g vs Megatron baseline — the whole
// landscape Figure 2's individual points are drawn from, including the
// OOM boundary and the cross-node MP cliff.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sim/memory_model.hpp"
#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

using namespace zero;

namespace {

void PrintGrid(const sim::ClusterSpec& cluster, bool is_zero) {
  Table table({"mp \\ batch", "1", "4", "16", "64"});
  for (int mp : {1, 2, 4, 8, 16, 32}) {
    std::vector<std::string> row{std::to_string(mp)};
    for (std::int64_t batch : {1, 4, 16, 64}) {
      sim::JobConfig job;
      job.model.layers = 88;
      job.model.hidden = 6144;
      job.model.heads = 32;
      job.gpus = 384;  // divisible by every mp in the sweep
      job.mp = mp;
      job.batch_per_gpu = batch;
      job.activation_checkpointing = true;
      if (is_zero) {
        job.stage = model::ZeroStage::kOsG;
        job.pa = mp > 1;
      } else {
        job.stage = model::ZeroStage::kNone;
        job.constant_buffers = false;
        job.defrag = false;
      }
      if (!sim::Fits(cluster, job)) {
        row.emplace_back("OOM");
        continue;
      }
      char tf[16];
      std::snprintf(tf, sizeof(tf), "%.1f",
                    sim::EstimateThroughput(cluster, job).tflops_per_gpu);
      row.emplace_back(tf);
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
}

}  // namespace

int main() {
  sim::ClusterSpec cluster;
  std::printf(
      "== Sweep: 40B model, 384 GPUs — TFlops/GPU over (MP x batch) "
      "==\n\n-- ZeRO Pos+g (+Pa when MP > 1) --\n");
  PrintGrid(cluster, true);
  std::printf("\n-- Megatron/DDP baseline --\n");
  PrintGrid(cluster, false);
  std::printf(
      "\nReading the grids: the baseline needs MP >= 32 to fit 40B at "
      "all (and then\ncrosses nodes, collapsing); ZeRO fits it at MP 4 "
      "with large batches — the\nFigure 2 points are the best cell of "
      "each row.\n");
  return 0;
}
