// Table 2: max model size vs MP degree.
//   Left half  — "max theoretical model size": the closed-form bound
//                where model states alone fill the 32 GB device, Nd=64.
//   Right half — "measured model size": what actually runs once
//                activations, buffers and working memory are included.
//                We reproduce it two ways: (1) the cluster memory model
//                at paper scale; (2) a scaled-down *runtime* measurement
//                on this library's simulated 8 MiB devices, growing the
//                model until real allocations OOM.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "core/trainer.hpp"
#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

using namespace zero;
using model::ZeroStage;

namespace {

double MeasuredAtPaperScale(const sim::ClusterSpec& cluster, int mp,
                            ZeroStage stage) {
  sim::JobConfig job;
  job.model.hidden = 8192;
  job.model.heads = 64;
  job.gpus = 64 * mp;  // Nd = 64 in every Table 2 row
  job.mp = mp;
  job.stage = stage;
  job.batch_per_gpu = 8;
  job.activation_checkpointing = true;
  job.pa = stage != ZeroStage::kNone && mp > 1;
  if (stage == ZeroStage::kNone) {
    job.constant_buffers = false;
    job.defrag = false;
  }
  job.model.layers = sim::MaxLayers(cluster, job);
  return static_cast<double>(job.psi());
}

// Scaled-down runtime measurement: grow layers until the simulated
// devices really OOM. Returns the largest parameter count that trained.
std::int64_t MeasuredAtRuntime(ZeroStage stage, int mp) {
  std::int64_t best = 0;
  for (std::int64_t layers = 2;; layers += 2) {
    core::TrainOptions opt;
    opt.model.vocab = 64;
    opt.model.seq = 16;
    opt.model.hidden = 64;
    opt.model.heads = 4;
    opt.model.layers = layers;
    opt.engine.stage = stage;
    opt.cluster.dp_degree = 4;
    opt.cluster.mp_degree = mp;
    opt.cluster.device_capacity_bytes = 8ull << 20;
    opt.zero_r.activation_checkpointing = true;
    opt.batch_per_rank = 1;
    opt.steps = 1;
    const core::TrainResult result = core::TrainGpt(opt);
    if (result.oom) break;
    model::GptConfig cfg = opt.model;
    model::GptModel probe(cfg, {});
    best = probe.layout().total_numel() * mp;  // global params
    if (layers > 256) break;
  }
  return best;
}

}  // namespace

int main() {
  sim::ClusterSpec cluster;
  const double cap = 32e9;

  std::printf("== Table 2: max model size vs MP degree (Nd = 64) ==\n\n");
  Table table({"MP", "GPUs", "theory base", "theory Pos", "theory Pos+g",
               "theory Pos+g+p", "measured base", "measured Pos"});
  for (int mp : {1, 2, 4, 8, 16}) {
    table.AddRow(
        {std::to_string(mp), std::to_string(64 * mp),
         FormatCount(sim::TheoreticalMaxParams(cap, ZeroStage::kNone, mp, 64)),
         FormatCount(sim::TheoreticalMaxParams(cap, ZeroStage::kOs, mp, 64)),
         FormatCount(sim::TheoreticalMaxParams(cap, ZeroStage::kOsG, mp, 64)),
         FormatCount(
             sim::TheoreticalMaxParams(cap, ZeroStage::kOsGP, mp, 64)),
         FormatCount(MeasuredAtPaperScale(cluster, mp, ZeroStage::kNone)),
         FormatCount(MeasuredAtPaperScale(cluster, mp, ZeroStage::kOs))});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper row MP=1: theory 2B / 7.6B / 14.4B / 128B;"
      " measured 1.3B / 6.2B.\n"
      "Paper row MP=16: theory 32B / 121.6B / 230.4B / 2T;"
      " measured 20B / 100B.\n");

  std::printf(
      "\n-- runtime validation on 8 MiB simulated devices (dp=4) --\n");
  Table rt({"config", "measured params", "vs baseline"});
  const std::int64_t base1 = MeasuredAtRuntime(ZeroStage::kNone, 1);
  const std::int64_t pos1 = MeasuredAtRuntime(ZeroStage::kOs, 1);
  const std::int64_t posg1 = MeasuredAtRuntime(ZeroStage::kOsG, 1);
  const std::int64_t posgp1 = MeasuredAtRuntime(ZeroStage::kOsGP, 1);
  auto ratio = [&](std::int64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2fx",
                  static_cast<double>(v) / static_cast<double>(base1));
    return std::string(buf);
  };
  rt.AddRow({"baseline DP", FormatCount(static_cast<double>(base1)), "1.00x"});
  rt.AddRow({"ZeRO-OS (Pos)", FormatCount(static_cast<double>(pos1)),
             ratio(pos1)});
  rt.AddRow({"ZeRO Pos+g", FormatCount(static_cast<double>(posg1)),
             ratio(posg1)});
  rt.AddRow({"ZeRO Pos+g+p", FormatCount(static_cast<double>(posgp1)),
             ratio(posgp1)});
  rt.Print(std::cout);
  std::printf(
      "\nPaper: measured Pos fits ~4.8x more parameters than baseline DP"
      " (6.2B vs 1.3B at Nd=64,\nwhere theory gives 16/4.19 = 3.8x; at "
      "this run's dp=4 theory gives 16/7 = 2.3x for Pos,\n16/5.5 = 2.9x "
      "for Pos+g and 4x for Pos+g+p — activations absorb the rest).\n");
  return 0;
}
