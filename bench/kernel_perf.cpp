// Kernel performance harness and regression gate.
//
// Measures the compute kernels against faithful replicas of the seed
// (pre-packing) implementations, writes BENCH_kernels.json, and exits
// nonzero if either
//   * a metric regressed more than 25% against the checked-in baseline
//     (bench/kernels_baseline.json), or
//   * the packed-GEMM / bulk fp16-decode speedup floors are not met.
// ZERO_BENCH_RELAX=1 downgrades failures to warnings (for noisy or
// throttled machines).
//
// Usage: kernel_perf [out.json [baseline.json]]
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gate.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "tensor/kernels.hpp"
#include "tensor/parallel_for.hpp"

namespace {

using zero::Half;
using zero::Rng;

// ---------------------------------------------------------------------
// Seed replicas. These reproduce the pre-overhaul kernels, including
// the cross-TU per-element call boundaries the originals had
// (noinline), so the speedup numbers measure the optimization and not
// compiler-flag drift: both sides build with the same flags.
// ---------------------------------------------------------------------

__attribute__((noinline)) void SeedGemmNN(std::int64_t m, std::int64_t n,
                                          std::int64_t k, float alpha,
                                          const float* a, const float* b,
                                          float* c) {
  constexpr std::int64_t kBlock = 64;
  for (std::int64_t i0 = 0; i0 < m; i0 += kBlock) {
    const std::int64_t i1 = std::min(i0 + kBlock, m);
    for (std::int64_t k0 = 0; k0 < k; k0 += kBlock) {
      const std::int64_t k1 = std::min(k0 + kBlock, k);
      for (std::int64_t i = i0; i < i1; ++i) {
        float* ci = c + i * n;
        for (std::int64_t kk = k0; kk < k1; ++kk) {
          const float aik = alpha * a[i * k + kk];
          if (aik == 0.0f) continue;
          const float* bk = b + kk * n;
          for (std::int64_t j = 0; j < n; ++j) ci[j] += aik * bk[j];
        }
      }
    }
  }
}

__attribute__((noinline)) void SeedGemmNT(std::int64_t m, std::int64_t n,
                                          std::int64_t k, float alpha,
                                          const float* a, const float* b,
                                          float* c) {
  for (std::int64_t i = 0; i < m; ++i) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    for (std::int64_t j = 0; j < n; ++j) {
      const float* bj = b + j * k;
      float acc = 0.0f;
      for (std::int64_t kk = 0; kk < k; ++kk) acc += ai[kk] * bj[kk];
      ci[j] += alpha * acc;
    }
  }
}

__attribute__((noinline)) float SeedToFloat(std::uint16_t bits) {
  return Half::ToFloatImpl(bits);
}

__attribute__((noinline)) void SeedHalfToFloat(const Half* src, float* dst,
                                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = SeedToFloat(src[i].bits());
}

__attribute__((noinline)) std::uint16_t SeedFromFloat(float f) {
  return Half::FromFloat(f);
}

__attribute__((noinline)) void SeedFloatToHalf(const float* src, Half* dst,
                                               std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    dst[i] = Half::FromBits(SeedFromFloat(src[i]));
  }
}

// ---------------------------------------------------------------------
// Measurement: best-of-N wall time.
// ---------------------------------------------------------------------

template <typename Fn>
double BestSeconds(const Fn& fn, int reps = 5) {
  double best = 1e30;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

std::vector<float> RandVec(std::size_t n, std::uint64_t seed) {
  std::vector<float> v(n);
  Rng rng(seed);
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

struct Report {
  // name -> metric value (higher is better). Units are encoded in the
  // name suffix: _gflops, _gelems, _gbytes.
  std::map<std::string, double> values;
  void Add(const std::string& name, double v) { values[name] = v; }
};

// Minimal scanner for the flat `"key": number` JSON this harness
// writes. Ignores structure beyond quoted-key/number pairs.
std::map<std::string, double> LoadBaseline(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t q0 = line.find('"');
    if (q0 == std::string::npos) continue;
    const std::size_t q1 = line.find('"', q0 + 1);
    if (q1 == std::string::npos) continue;
    const std::size_t colon = line.find(':', q1);
    if (colon == std::string::npos) continue;
    const std::string key = line.substr(q0 + 1, q1 - q0 - 1);
    char* end = nullptr;
    const double v = std::strtod(line.c_str() + colon + 1, &end);
    if (end != line.c_str() + colon + 1) out[key] = v;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_kernels.json";
  const std::string baseline_path =
      argc > 2 ? argv[2] : "bench/kernels_baseline.json";
  Report rep;

  // ---- GEMM 512^3, all against the seed scalar kernel ----
  {
    const std::int64_t n = 512;
    const double flops = 2.0 * n * n * n;
    auto a = RandVec(static_cast<std::size_t>(n * n), 1);
    auto b = RandVec(static_cast<std::size_t>(n * n), 2);
    std::vector<float> c(static_cast<std::size_t>(n * n));
    auto zero_c = [&] {
      std::memset(c.data(), 0, c.size() * sizeof(float));
    };

    double t = BestSeconds([&] {
      zero_c();
      SeedGemmNN(n, n, n, 1.0f, a.data(), b.data(), c.data());
    });
    rep.Add("gemm512_nn_seed_gflops", flops / t / 1e9);

    {
      zero::tensor::IntraOpWorkersGuard guard(1);
      t = BestSeconds([&] {
        zero::tensor::Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(),
                           0.0f, c.data());
      });
      rep.Add("gemm512_nn_packed_serial_gflops", flops / t / 1e9);
    }
    {
      zero::tensor::IntraOpWorkersGuard guard(
          zero::tensor::HardwareConcurrency());
      t = BestSeconds([&] {
        zero::tensor::Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(),
                           0.0f, c.data());
      });
      rep.Add("gemm512_nn_packed_parallel_gflops", flops / t / 1e9);
    }

    t = BestSeconds([&] {
      zero_c();
      SeedGemmNT(n, n, n, 1.0f, a.data(), b.data(), c.data());
    });
    rep.Add("gemm512_nt_seed_gflops", flops / t / 1e9);
    {
      zero::tensor::IntraOpWorkersGuard guard(1);
      t = BestSeconds([&] {
        zero::tensor::Gemm(false, true, n, n, n, 1.0f, a.data(), b.data(),
                           0.0f, c.data());
      });
      rep.Add("gemm512_nt_packed_serial_gflops", flops / t / 1e9);
    }
  }

  // ---- bulk fp16 conversion (L2-resident working set) ----
  {
    const std::size_t n = 1u << 16;
    auto f = RandVec(n, 3);
    std::vector<Half> h(n);
    zero::FloatToHalf(f.data(), h.data(), n);
    std::vector<float> out(n);

    double t = BestSeconds([&] { SeedHalfToFloat(h.data(), out.data(), n); }, 9);
    rep.Add("half_to_float_seed_gelems", n / t / 1e9);
    t = BestSeconds([&] { zero::HalfToFloat(h.data(), out.data(), n); }, 9);
    rep.Add("half_to_float_bulk_gelems", n / t / 1e9);

    t = BestSeconds([&] { SeedFloatToHalf(f.data(), h.data(), n); }, 9);
    rep.Add("float_to_half_seed_gelems", n / t / 1e9);
    t = BestSeconds([&] { zero::FloatToHalf(f.data(), h.data(), n); }, 9);
    rep.Add("float_to_half_bulk_gelems", n / t / 1e9);
  }

  // ---- fused bias+GELU (vs the unfused kernel sequence) ----
  {
    const std::int64_t rows = 512, cols = 1024;
    const std::size_t n = static_cast<std::size_t>(rows * cols);
    auto x = RandVec(n, 4);
    auto bias = RandVec(static_cast<std::size_t>(cols), 5);
    std::vector<float> z(n), y(n);
    double t = BestSeconds([&] {
      std::memcpy(z.data(), x.data(), n * sizeof(float));
      zero::tensor::AddBiasRows(z.data(), bias.data(), rows, cols);
      zero::tensor::GeluForward(z.data(), y.data(),
                                static_cast<std::int64_t>(n));
    });
    rep.Add("bias_gelu_unfused_gelems", n / t / 1e9);
    t = BestSeconds([&] {
      zero::tensor::BiasGeluForward(x.data(), bias.data(), z.data(), y.data(),
                                    rows, cols);
    });
    rep.Add("bias_gelu_fused_gelems", n / t / 1e9);
  }

  // ---- LayerNorm forward + squared-norm reduction ----
  {
    const std::int64_t rows = 1024, cols = 1024;
    const std::size_t n = static_cast<std::size_t>(rows * cols);
    auto x = RandVec(n, 6);
    auto gamma = RandVec(static_cast<std::size_t>(cols), 7);
    auto beta = RandVec(static_cast<std::size_t>(cols), 8);
    std::vector<float> y(n), mean(static_cast<std::size_t>(rows)),
        rstd(static_cast<std::size_t>(rows));
    double t = BestSeconds([&] {
      zero::tensor::LayerNormForward(x.data(), gamma.data(), beta.data(),
                                     y.data(), mean.data(), rstd.data(), rows,
                                     cols, 1e-5f);
    });
    rep.Add("layernorm_fwd_gelems", n / t / 1e9);
    volatile float sink = 0.0f;
    t = BestSeconds([&] {
      sink = zero::tensor::SquaredNorm(x.data(), static_cast<std::int64_t>(n));
    });
    (void)sink;
    rep.Add("squared_norm_gelems", n / t / 1e9);
  }

  // ---- derived speedups (the acceptance floors) ----
  const double gemm_speedup = rep.values["gemm512_nn_packed_parallel_gflops"] /
                              rep.values["gemm512_nn_seed_gflops"];
  const double h2f_speedup = rep.values["half_to_float_bulk_gelems"] /
                             rep.values["half_to_float_seed_gelems"];
  rep.Add("speedup_gemm512_packed_vs_seed", gemm_speedup);
  rep.Add("speedup_half_to_float_vs_seed", h2f_speedup);

  // ---- write the report ----
  {
    std::ofstream out(out_path);
    out << "{\n";
    std::size_t i = 0;
    for (const auto& [k, v] : rep.values) {
      out << "  \"" << k << "\": " << v
          << (++i == rep.values.size() ? "\n" : ",\n");
    }
    out << "}\n";
  }
  std::printf("wrote %s\n", out_path.c_str());
  for (const auto& [k, v] : rep.values) {
    std::printf("  %-40s %10.3f\n", k.c_str(), v);
  }

  // ---- gates ----
  zero::bench::GateSet gates;

  if (gemm_speedup < 3.0) {
    std::ostringstream os;
    os << "packed GEMM speedup " << gemm_speedup << "x < 3x floor";
    gates.Fail(os.str());
  }
  if (h2f_speedup < 5.0) {
    std::ostringstream os;
    os << "bulk HalfToFloat speedup " << h2f_speedup << "x < 5x floor";
    gates.Fail(os.str());
  }

  const auto baseline = LoadBaseline(baseline_path);
  if (baseline.empty()) {
    std::printf("note: no baseline at %s; skipping regression gate\n",
                baseline_path.c_str());
  }
  for (const auto& [k, base] : baseline) {
    const auto it = rep.values.find(k);
    if (it == rep.values.end() || base <= 0.0) continue;
    if (it->second < 0.75 * base) {
      std::ostringstream os;
      os << k << " regressed: " << it->second << " < 75% of baseline "
         << base;
      gates.Fail(os.str());
    }
  }

  if (gates.ok()) {
    std::printf("kernel perf gate: OK\n");
  } else {
    std::printf("kernel perf gate: %d failure(s)%s\n", gates.failures(),
                gates.relaxed() ? " (relaxed)" : "");
  }
  return gates.ExitCode();
}
