// Micro benchmarks: compute kernels and the simulated-device allocator.
#include <benchmark/benchmark.h>

#include <vector>

#include "alloc/caching_allocator.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "tensor/kernels.hpp"

using namespace zero;

namespace {

std::vector<float> RandVec(std::size_t n) {
  std::vector<float> v(n);
  Rng rng(1);
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto a = RandVec(static_cast<std::size_t>(n * n));
  auto b = RandVec(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    tensor::Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                 c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto a = RandVec(static_cast<std::size_t>(n * n));
  auto b = RandVec(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    tensor::Gemm(false, true, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                 c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmNT)->Arg(128);

void BM_LayerNormForward(benchmark::State& state) {
  const std::int64_t rows = 256, cols = state.range(0);
  auto x = RandVec(static_cast<std::size_t>(rows * cols));
  std::vector<float> gamma(static_cast<std::size_t>(cols), 1.0f);
  std::vector<float> beta(static_cast<std::size_t>(cols), 0.0f);
  std::vector<float> y(x.size()), mean(static_cast<std::size_t>(rows)),
      rstd(static_cast<std::size_t>(rows));
  for (auto _ : state) {
    tensor::LayerNormForward(x.data(), gamma.data(), beta.data(), y.data(),
                             mean.data(), rstd.data(), rows, cols, 1e-5f);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormForward)->Arg(256)->Arg(1024);

void BM_HalfConversion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto src = RandVec(n);
  std::vector<Half> mid(n);
  std::vector<float> dst(n);
  for (auto _ : state) {
    FloatToHalf(src.data(), mid.data(), n);
    HalfToFloat(mid.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 6);
}
BENCHMARK(BM_HalfConversion)->Arg(1 << 12)->Arg(1 << 16);

void BM_DeviceAllocFree(benchmark::State& state) {
  alloc::DeviceMemory dev(256ull << 20, "bench");
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    alloc::Allocation a = dev.Allocate(size);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_DeviceAllocFree)->Arg(4096)->Arg(1 << 20);

void BM_CachingAllocatorReuse(benchmark::State& state) {
  alloc::DeviceMemory dev(256ull << 20, "bench");
  alloc::CachingAllocator cache(dev);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    alloc::CachedBlock b = cache.Malloc(size);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_CachingAllocatorReuse)->Arg(4096)->Arg(1 << 20);

}  // namespace
