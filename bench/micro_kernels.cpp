// Micro benchmarks: compute kernels and the simulated-device allocator.
#include <benchmark/benchmark.h>

#include <vector>

#include "alloc/caching_allocator.hpp"
#include "common/half.hpp"
#include "common/rng.hpp"
#include "tensor/kernels.hpp"
#include "tensor/parallel_for.hpp"

using namespace zero;

namespace {

std::vector<float> RandVec(std::size_t n) {
  std::vector<float> v(n);
  Rng rng(1);
  for (float& x : v) x = rng.NextGaussian();
  return v;
}

void BM_Gemm(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto a = RandVec(static_cast<std::size_t>(n * n));
  auto b = RandVec(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    tensor::Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                 c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemmNT(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  auto a = RandVec(static_cast<std::size_t>(n * n));
  auto b = RandVec(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    tensor::Gemm(false, true, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                 c.data());
    benchmark::DoNotOptimize(c.data());
  }
}
BENCHMARK(BM_GemmNT)->Arg(128);

// Same packed kernel with the intra-op pool sized by the Arg. On a
// single-core host the 2-worker row is a determinism/overhead probe,
// not a speedup claim.
void BM_GemmParallel(benchmark::State& state) {
  const std::int64_t n = 512;
  tensor::IntraOpWorkersGuard guard(static_cast<int>(state.range(0)));
  auto a = RandVec(static_cast<std::size_t>(n * n));
  auto b = RandVec(static_cast<std::size_t>(n * n));
  std::vector<float> c(static_cast<std::size_t>(n * n));
  for (auto _ : state) {
    tensor::Gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                 c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["flops"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * 2.0 * n * n * n,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GemmParallel)->Arg(1)->Arg(2);

void BM_BiasGeluForward(benchmark::State& state) {
  const std::int64_t rows = 256, cols = state.range(0);
  const std::size_t n = static_cast<std::size_t>(rows * cols);
  auto x = RandVec(n);
  auto bias = RandVec(static_cast<std::size_t>(cols));
  std::vector<float> z(n), y(n);
  for (auto _ : state) {
    tensor::BiasGeluForward(x.data(), bias.data(), z.data(), y.data(), rows,
                            cols);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 12);
}
BENCHMARK(BM_BiasGeluForward)->Arg(256)->Arg(1024);

void BM_BiasGeluBackward(benchmark::State& state) {
  const std::int64_t rows = 256, cols = state.range(0);
  const std::size_t n = static_cast<std::size_t>(rows * cols);
  auto z = RandVec(n);
  auto dy = RandVec(n);
  std::vector<float> dx(n), dbias(static_cast<std::size_t>(cols));
  for (auto _ : state) {
    std::fill(dbias.begin(), dbias.end(), 0.0f);
    tensor::BiasGeluBackward(z.data(), dy.data(), dx.data(), dbias.data(),
                             rows, cols);
    benchmark::DoNotOptimize(dx.data());
  }
}
BENCHMARK(BM_BiasGeluBackward)->Arg(1024);

void BM_SquaredNorm(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto x = RandVec(n);
  for (auto _ : state) {
    float s = tensor::SquaredNorm(x.data(), static_cast<std::int64_t>(n));
    benchmark::DoNotOptimize(s);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4);
}
BENCHMARK(BM_SquaredNorm)->Arg(1 << 16)->Arg(1 << 20);

void BM_LayerNormForward(benchmark::State& state) {
  const std::int64_t rows = 256, cols = state.range(0);
  auto x = RandVec(static_cast<std::size_t>(rows * cols));
  std::vector<float> gamma(static_cast<std::size_t>(cols), 1.0f);
  std::vector<float> beta(static_cast<std::size_t>(cols), 0.0f);
  std::vector<float> y(x.size()), mean(static_cast<std::size_t>(rows)),
      rstd(static_cast<std::size_t>(rows));
  for (auto _ : state) {
    tensor::LayerNormForward(x.data(), gamma.data(), beta.data(), y.data(),
                             mean.data(), rstd.data(), rows, cols, 1e-5f);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_LayerNormForward)->Arg(256)->Arg(1024);

void BM_HalfConversion(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  auto src = RandVec(n);
  std::vector<Half> mid(n);
  std::vector<float> dst(n);
  for (auto _ : state) {
    FloatToHalf(src.data(), mid.data(), n);
    HalfToFloat(mid.data(), dst.data(), n);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 6);
}
BENCHMARK(BM_HalfConversion)->Arg(1 << 12)->Arg(1 << 16);

void BM_DeviceAllocFree(benchmark::State& state) {
  alloc::DeviceMemory dev(256ull << 20, "bench");
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    alloc::Allocation a = dev.Allocate(size);
    benchmark::DoNotOptimize(a.data());
  }
}
BENCHMARK(BM_DeviceAllocFree)->Arg(4096)->Arg(1 << 20);

void BM_CachingAllocatorReuse(benchmark::State& state) {
  alloc::DeviceMemory dev(256ull << 20, "bench");
  alloc::CachingAllocator cache(dev);
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    alloc::CachedBlock b = cache.Malloc(size);
    benchmark::DoNotOptimize(b.data());
  }
}
BENCHMARK(BM_CachingAllocatorReuse)->Arg(4096)->Arg(1 << 20);

}  // namespace
