// Fault-tolerance characterization bench.
//
// Two measurements land in BENCH_fault.json:
//   * detection latency: a rank hangs silently (no exception, no
//     heartbeat) and survivors must notice via the heartbeat deadline.
//     Reported as the gap between the injection instant and the first
//     death record, over several trials and deadlines.
//   * recovery time vs checkpoint interval: a 12-step run loses a rank
//     after its 9th applied step; the coordinator resumes from the last
//     elastic checkpoint. Denser checkpoints replay fewer steps but pay
//     more ExportState collectives during normal operation — this table
//     is the tradeoff curve.
//
// Usage: fault_recovery [out.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "gate.hpp"
#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "model/quad_model.hpp"
#include "obs/trace.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace zero;

double ElapsedMs(Clock::time_point t0) {
  return static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now() - t0)
                                 .count()) /
         1e6;
}

// One hang-detection trial: returns injection->death-record latency, ms.
double DetectionTrialMs(std::uint64_t deadline_ms) {
  const int nd = 4;
  fault::FaultInjector injector(fault::FaultPlan::Parse("hang@1:step#2=30s"),
                                nd);
  comm::World world(nd);
  world.SetCommDeadline(std::chrono::milliseconds(deadline_ms));
  world.SetFaultHooks(&injector);

  std::uint64_t detected_ns = 0;
  std::thread run([&] {
    (void)world.TryRun([&](comm::RankContext& ctx) {
      comm::Communicator comm = comm::Communicator::WholeWorld(ctx);
      for (int s = 0; s < 4; ++s) {
        comm.FaultPoint("step");  // rank 1 freezes at its 2nd step
        std::vector<float> data(256, 1.0f);
        comm.AllReduce(std::span<float>(data));
      }
    });
  });
  // Sample the death record from outside the world.
  while (detected_ns == 0) {
    if (world.health().IsDead(1)) detected_ns = obs::TraceNowNs();
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  run.join();
  const std::uint64_t injected_ns = injector.FirstLethalNs();
  return static_cast<double>(detected_ns - injected_ns) / 1e6;
}

constexpr std::int64_t kNumel = 4096;
constexpr int kUnits = 8;
constexpr int kSteps = 12;

model::Batch RankBatch(int rank, int step) {
  model::Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

core::EngineConfig EngineCfg() {
  core::EngineConfig cfg;
  cfg.stage = model::ZeroStage::kOsG;
  cfg.fp16 = true;
  cfg.loss_scale = 64.0f;
  cfg.adam.lr = 0.01f;
  return cfg;
}

struct RecoveryPoint {
  int interval;
  double total_ms;       // crash + detect + reform + replay + finish
  std::int64_t resume_step;
  int replayed_steps;    // work lost to the checkpoint gap
};

RecoveryPoint RecoveryTrial(int checkpoint_interval) {
  const int nd = 2;
  fault::FaultInjector injector(fault::FaultPlan::Parse("crash@1:step#10"),
                                nd);
  fault::RecoveryOptions opts;
  opts.world_size = nd;
  opts.max_attempts = 3;
  opts.comm_deadline = std::chrono::milliseconds(200);
  opts.hooks = &injector;
  fault::RecoveryCoordinator coordinator(opts);

  const auto t0 = Clock::now();
  const fault::RecoveryReport report = coordinator.Train(
      [&](comm::RankContext& ctx, const fault::AttemptContext& at) {
        comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
        model::QuadModel m(kNumel, kUnits);
        core::ZeroDpEngine engine(EngineCfg(), m, dp, nullptr, 42);
        if (at.resume_state != nullptr) {
          engine.ImportState(
              core::TrainingState::Deserialize(*at.resume_state));
        }
        for (int s = static_cast<int>(at.resume_step); s < kSteps; ++s) {
          (void)engine.TrainStep(RankBatch(ctx.rank, s));
          if ((s + 1) % checkpoint_interval == 0) {
            core::TrainingState st = engine.ExportState();
            if (ctx.rank == 0) {
              coordinator.vault().Store(s + 1, st.Serialize());
            }
          }
        }
      });
  RecoveryPoint point;
  point.interval = checkpoint_interval;
  point.total_ms = ElapsedMs(t0);
  point.resume_step =
      report.history.size() > 1 ? report.history[1].resume_step : -1;
  // The crash lands entering step 10, i.e. after 9 applied steps.
  point.replayed_steps = static_cast<int>(9 - point.resume_step);
  if (!report.succeeded) point.replayed_steps = -1;
  return point;
}

double BaselineMs() {
  const int nd = 2;
  comm::World world(nd);
  const auto t0 = Clock::now();
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(kNumel, kUnits);
    core::ZeroDpEngine engine(EngineCfg(), m, dp, nullptr, 42);
    for (int s = 0; s < kSteps; ++s) {
      (void)engine.TrainStep(RankBatch(ctx.rank, s));
    }
  });
  return ElapsedMs(t0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fault.json";

  std::printf("fault detection latency (hang, heartbeat deadline):\n");
  const std::uint64_t deadlines[] = {10, 20, 50};
  struct DetectionRow {
    std::uint64_t deadline_ms;
    double mean_ms;
    double max_ms;
  };
  std::vector<DetectionRow> detection;
  for (std::uint64_t d : deadlines) {
    const int trials = 3;
    double sum = 0, mx = 0;
    for (int t = 0; t < trials; ++t) {
      const double ms = DetectionTrialMs(d);
      sum += ms;
      if (ms > mx) mx = ms;
    }
    detection.push_back({d, sum / trials, mx});
    std::printf("  deadline %3llu ms -> mean %7.2f ms, max %7.2f ms\n",
                static_cast<unsigned long long>(d), sum / trials, mx);
  }

  std::printf("recovery time vs checkpoint interval (12 steps, crash after 9):\n");
  const double baseline_ms = BaselineMs();
  std::printf("  uninterrupted baseline  %8.2f ms\n", baseline_ms);
  std::vector<RecoveryPoint> recovery;
  for (int interval : {1, 2, 4}) {
    const RecoveryPoint p = RecoveryTrial(interval);
    recovery.push_back(p);
    std::printf(
        "  interval %d -> total %8.2f ms, resumed at step %lld, replayed %d\n",
        p.interval, p.total_ms, static_cast<long long>(p.resume_step),
        p.replayed_steps);
  }

  std::ofstream f(out_path, std::ios::trunc);
  f << "{\n  \"detection\": [\n";
  for (std::size_t i = 0; i < detection.size(); ++i) {
    f << "    {\"deadline_ms\": " << detection[i].deadline_ms
      << ", \"mean_latency_ms\": " << detection[i].mean_ms
      << ", \"max_latency_ms\": " << detection[i].max_ms << "}"
      << (i + 1 < detection.size() ? "," : "") << "\n";
  }
  f << "  ],\n  \"recovery\": [\n";
  for (std::size_t i = 0; i < recovery.size(); ++i) {
    f << "    {\"checkpoint_interval\": " << recovery[i].interval
      << ", \"total_ms\": " << recovery[i].total_ms
      << ", \"resume_step\": " << recovery[i].resume_step
      << ", \"replayed_steps\": " << recovery[i].replayed_steps << "}"
      << (i + 1 < recovery.size() ? "," : "") << "\n";
  }
  f << "  ],\n  \"baseline_ms\": " << baseline_ms << "\n}\n";
  f.close();
  std::printf("wrote %s\n", out_path.c_str());

  // Sanity gates: every recovery trial must actually have recovered, and
  // detection must land within a generous multiple of the deadline.
  bool ok = true;
  for (const RecoveryPoint& p : recovery) {
    if (p.replayed_steps < 0) {
      std::printf("FAIL: recovery with interval %d did not succeed\n",
                  p.interval);
      ok = false;
    }
  }
  for (const DetectionRow& row : detection) {
    const double bound_ms = 5.0 * static_cast<double>(row.deadline_ms) + 100.0;
    if (row.max_ms > bound_ms) {
      std::printf("FAIL: detection at deadline %llu ms took %.2f ms (> %.0f)\n",
                  static_cast<unsigned long long>(row.deadline_ms), row.max_ms,
                  bound_ms);
      ok = false;
    }
  }
  return zero::bench::GateExit(ok);
}
