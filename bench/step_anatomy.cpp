// Step-anatomy gate: the cross-rank critical-path analyzer must blame
// the rank a seeded straggler fault was injected into, and a crashed
// run must leave a validating flight-recorder bundle.
//
// Part 1 injects `slow@RANK:collective=2ms` into a stage-3 DP-4 run:
// every collective on that rank sleeps 2 ms inside the collective span,
// which is exactly the signature of a slow NIC / thermally-throttled
// device. The merged timeline is rebuilt from the run's trace rings and
// AnalyzeSteps must attribute every measured step (step 0 is warm-up)
// to the injected rank; the trainer's own report anatomy must agree.
//
// Part 2 injects `crash@1:step#2` with the heartbeat detector armed and
// the flight recorder pointed at a bundle directory: the run must fail,
// TrainResult::postmortem_dir must name the bundle, and the bundle must
// pass the strict post-mortem validator.
//
// Writes BENCH_anatomy.json; exit 1 on failure unless ZERO_BENCH_RELAX=1.
//
// Usage: step_anatomy [out.json] [postmortem-dir]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gate.hpp"
#include "core/trainer.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/timeline.hpp"
#include "obs/trace.hpp"

namespace {

using namespace zero;

constexpr int kSlowRank = 2;
constexpr int kDp = 4;
constexpr int kSteps = 5;

core::TrainOptions BaseOptions() {
  core::TrainOptions options;
  options.model.vocab = 48;
  options.model.seq = 16;
  options.model.hidden = 32;
  options.model.layers = 3;
  options.model.heads = 4;
  options.engine.stage = model::ZeroStage::kOsGP;
  options.cluster.dp_degree = kDp;
  options.cluster.mp_degree = 1;
  options.batch_per_rank = 2;
  options.steps = kSteps;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_anatomy.json";
  const std::string bundle_root =
      argc > 2 ? argv[2] : "BENCH_anatomy_postmortem";
  bool ok = true;

  // ---- part 1: seeded straggler must be blamed on every step ----------
  core::TrainOptions slow = BaseOptions();
  slow.engine.fault_spec =
      "slow@" + std::to_string(kSlowRank) + ":collective=2ms";
  slow.engine.telemetry.enabled = true;  // no paths: artifacts in memory
  slow.engine.telemetry.validate = false;
  slow.engine.telemetry.trace_buffer_events = 65536;
  std::printf("straggler run: stage 3, dp=%d, %d steps, %s\n", kDp, kSteps,
              slow.engine.fault_spec.c_str());
  const core::TrainResult result = core::TrainGpt(slow);
  if (result.failed || result.oom) {
    std::printf("FAIL: straggler run did not complete (%s)\n",
                (result.failed ? result.failure_message : result.oom_message)
                    .c_str());
    ok = false;
  }

  // Rebuild the merged timeline from the run's rings (the trainer left
  // them intact) and check the per-step attribution directly.
  const obs::Timeline timeline = obs::BuildTimeline(obs::CollectEvents());
  const std::vector<obs::StepAnatomy> steps = obs::AnalyzeSteps(timeline);
  int measured = 0;
  int blamed = 0;
  std::vector<int> per_step;
  for (std::size_t k = 0; k < steps.size(); ++k) {
    per_step.push_back(steps[k].straggler_rank);
    if (k == 0 && steps.size() > 1) continue;  // warm-up step
    ++measured;
    if (steps[k].straggler_rank == kSlowRank) ++blamed;
  }
  std::printf("  analyzer: %d/%d measured steps blamed on rank %d\n", blamed,
              measured, kSlowRank);
  for (std::size_t k = 0; k < steps.size(); ++k) {
    const obs::StepAnatomy& sa = steps[k];
    std::printf("    step %zu -> straggler rank %d\n", k, sa.straggler_rank);
  }
  if (measured == 0) {
    std::printf("FAIL: analyzer measured no steps\n");
    ok = false;
  } else if (blamed != measured) {
    std::printf("FAIL: straggler blamed on %d/%d steps (want all)\n", blamed,
                measured);
    ok = false;
  }

  // The trainer's report must carry the same verdict in its anatomy
  // section (this is what users actually read).
  int report_straggler = -2;
  int report_steps = 0;
  int report_straggler_steps = 0;
  if (result.report.has_value()) {
    const obs::StepReportInputs& in = result.report->inputs;
    report_straggler = in.straggler_rank;
    report_steps = in.anatomy_steps;
    report_straggler_steps = in.straggler_steps;
  }
  if (report_straggler != kSlowRank || report_steps == 0 ||
      report_straggler_steps != report_steps) {
    std::printf(
        "FAIL: report anatomy disagrees (straggler %d on %d/%d steps)\n",
        report_straggler, report_straggler_steps, report_steps);
    ok = false;
  }

  // ---- part 2: crash must leave a validating post-mortem bundle -------
  obs::DisableTracing();
  obs::ResetTrace();  // clean bundle: only the crash run's events
  core::TrainOptions crash = BaseOptions();
  crash.engine.fault_spec = "crash@1:step#2";
  crash.engine.comm_deadline_ms = 200;
  crash.engine.telemetry.postmortem_dir = bundle_root;
  std::printf("crash run: %s, flight recorder -> %s\n",
              crash.engine.fault_spec.c_str(), bundle_root.c_str());
  const core::TrainResult crashed = core::TrainGpt(crash);
  bool bundle_valid = false;
  std::string bundle_error;
  if (!crashed.failed) {
    std::printf("FAIL: crash run did not fail\n");
    ok = false;
  } else if (crashed.postmortem_dir.empty()) {
    std::printf("FAIL: crash run left no post-mortem bundle\n");
    ok = false;
  } else {
    bundle_valid =
        obs::ValidatePostmortemBundle(crashed.postmortem_dir, &bundle_error);
    if (!bundle_valid) {
      std::printf("FAIL: bundle %s invalid: %s\n",
                  crashed.postmortem_dir.c_str(), bundle_error.c_str());
      ok = false;
    } else {
      std::printf("  bundle %s validates\n", crashed.postmortem_dir.c_str());
    }
  }

  std::ofstream f(out_path, std::ios::trunc);
  f << "{\n  \"slow_rank\": " << kSlowRank << ",\n  \"per_step_straggler\": [";
  for (std::size_t k = 0; k < per_step.size(); ++k) {
    f << per_step[k] << (k + 1 < per_step.size() ? ", " : "");
  }
  f << "],\n  \"measured_steps\": " << measured
    << ",\n  \"blamed_steps\": " << blamed
    << ",\n  \"report_straggler_rank\": " << report_straggler
    << ",\n  \"crash\": {\"failed\": " << (crashed.failed ? "true" : "false")
    << ", \"postmortem_dir\": \"" << crashed.postmortem_dir
    << "\", \"bundle_valid\": " << (bundle_valid ? "true" : "false")
    << "},\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  f.close();
  std::printf("wrote %s\n", out_path.c_str());

  return zero::bench::GateExit(ok);
}
