// Network-simulator validation: derives the Sec 10.2 bandwidth cliff and
// the cost model's bandwidth assumptions from first principles (ring
// schedules over NVSwitch ports and shared node uplinks), instead of
// assuming them.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/netsim.hpp"

using namespace zero;

int main() {
  sim::NetTopology topo;
  topo.nodes = 25;
  topo.gpus_per_node = 16;
  topo.nvswitch_port_bw = 150e9;
  topo.node_uplink_bw = 100e9;  // 800 Gb/s per DGX-2
  topo.per_step_latency = 5e-6;
  sim::NetworkSimulator net(topo);

  std::printf(
      "== Network simulator: emergent collective bandwidth on the DGX-2 "
      "fabric ==\n\n");
  std::printf("-- MP all-reduce bus bandwidth vs group size (512 MB) --\n");
  Table table({"group", "layout", "bus bandwidth", "vs in-node"});
  const double bytes = 512e6;
  const double base =
      net.AllReduceBusBandwidth(sim::ContiguousGroup(0, 16), bytes);
  for (int size : {2, 4, 8, 16, 32, 64, 128}) {
    const double bw =
        net.AllReduceBusBandwidth(sim::ContiguousGroup(0, size), bytes);
    char rel[16];
    std::snprintf(rel, sizeof(rel), "%.2fx", bw / base);
    table.AddRow({std::to_string(size),
                  size <= 16 ? "inside one node" : "spans nodes",
                  FormatBytes(bw) + "/s", rel});
  }
  table.Print(std::cout);
  std::printf(
      "\nThe 16 -> 32 collapse is the paper's NVSwitch -> InfiniBand "
      "cliff (Sec 10.2),\nhere produced by link contention, not "
      "assumed.\n\n");

  std::printf(
      "-- DP rings contending for node uplinks (MP16 x DP25 grid, 128 MB "
      "each) --\n");
  Table dp({"concurrent DP rings", "time", "per-ring bandwidth"});
  for (int rings_count : {1, 4, 16}) {
    std::vector<std::vector<int>> rings;
    for (int c = 0; c < rings_count; ++c) {
      rings.push_back(sim::StridedGroup(c, 16, topo.nodes));
    }
    const double t = net.ConcurrentRingAllReduce(rings, 128e6);
    const double per_ring =
        2.0 * (topo.nodes - 1) / topo.nodes * 128e6 / t;
    char tim[24];
    std::snprintf(tim, sizeof(tim), "%.3f ms", t * 1e3);
    dp.AddRow({std::to_string(rings_count), tim,
               FormatBytes(per_ring) + "/s"});
  }
  dp.Print(std::cout);
  std::printf(
      "\nWith all 16 rings active, each GPU's effective DP bandwidth is "
      "the node uplink\ndivided by 16 — the 6.25 GB/s per-GPU share the "
      "analytic cost model uses.\n");
  return 0;
}
