// Figure 4: maximum throughput without any model parallelism, up to 13B
// parameters on 128 GPUs (appendix Table 10), against the PyTorch-DDP
// baseline that tops out at ~1.4B.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sim/cost_model.hpp"
#include "sim/paper_configs.hpp"

using namespace zero;

int main() {
  sim::ClusterSpec cluster;
  std::printf(
      "== Figure 4: large-model training without MP (Table 10 configs) "
      "==\n\n");
  Table table({"model", "system", "batch/GPU", "TF/GPU"});
  double zero_sum = 0;
  int zero_count = 0;
  for (const sim::PaperRun& run : sim::Figure4Runs()) {
    const sim::ThroughputEstimate t =
        sim::EstimateThroughput(cluster, run.ToJob());
    char tf[16];
    std::snprintf(tf, sizeof(tf), "%.1f", t.tflops_per_gpu);
    table.AddRow({run.label, run.is_zero ? "ZeRO (Pos+g)" : "PyTorch DDP",
                  std::to_string(run.batch_per_gpu), tf});
    if (run.is_zero) {
      zero_sum += t.tflops_per_gpu;
      ++zero_count;
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nZeRO average: %.1f TF/GPU over 1.16B-13B without MP.\n"
      "Paper: 'over 40 TFlops per GPU on average' for ZeRO up to 13B;\n"
      "baseline DP tops out at 1.4B with 'less than 20 TFlops'.\n",
      zero_sum / zero_count);
  return 0;
}
