// Figure 2: per-GPU throughput and speedup, ZeRO-100B vs the Megatron
// baseline, for 1.5B-170B models on 400 (384/256 for some baselines)
// V100 GPUs, replaying the appendix Table 5 configurations.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sim/cost_model.hpp"
#include "sim/paper_configs.hpp"

using namespace zero;

int main() {
  sim::ClusterSpec cluster;
  std::printf(
      "== Figure 2: ZeRO vs Megatron baseline throughput (Table 5 "
      "configs) ==\n\n");
  Table table({"model", "ZeRO TF/GPU", "base TF/GPU", "speedup",
               "ZeRO PFlops", "base MP", "note"});
  const auto& runs = sim::Figure2Runs();
  for (std::size_t i = 0; i + 1 < runs.size(); i += 2) {
    const sim::PaperRun& z = runs[i];
    const sim::PaperRun& b = runs[i + 1];
    const sim::ThroughputEstimate tz =
        sim::EstimateThroughput(cluster, z.ToJob());
    const sim::ThroughputEstimate tb =
        sim::EstimateThroughput(cluster, b.ToJob());
    char zc[16], bc[16], sp[16], pf[16];
    std::snprintf(zc, sizeof(zc), "%.1f", tz.tflops_per_gpu);
    std::snprintf(bc, sizeof(bc), "%.1f", tb.tflops_per_gpu);
    std::snprintf(sp, sizeof(sp), "%.1fx",
                  tz.tflops_per_gpu / tb.tflops_per_gpu);
    std::snprintf(pf, sizeof(pf), "%.1f", tz.aggregate_pflops);
    table.AddRow({z.label, zc, bc, sp, pf, std::to_string(b.mp),
                  b.mp > cluster.gpus_per_node ? "base MP crosses nodes"
                                               : ""});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper shape: ZeRO sustains ~38-48 TF/GPU (15 PFlops aggregate "
      "for 8B-100B);\nbaseline collapses to <5 TF once MP crosses the "
      "node boundary (>40B);\nspeedup 'up to 10x' in the large-model "
      "regime.\n");
  return 0;
}
