// Micro benchmarks: throughput of the ring collectives that carry all
// ZeRO-DP traffic, across world sizes and message sizes.
#include <benchmark/benchmark.h>

#include "comm/communicator.hpp"
#include "comm/world.hpp"

using namespace zero;

namespace {

void BM_AllReduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::World world(p);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator comm = comm::Communicator::WholeWorld(ctx);
      std::vector<float> data(n, static_cast<float>(ctx.rank));
      comm.AllReduce(std::span<float>(data), comm::ReduceOp::kSum);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4 * p);
}
BENCHMARK(BM_AllReduce)
    ->Args({2, 1 << 12})
    ->Args({4, 1 << 12})
    ->Args({4, 1 << 16})
    ->Args({8, 1 << 14});

void BM_ReduceScatter(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::World world(p);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator comm = comm::Communicator::WholeWorld(ctx);
      std::vector<float> data(n, 1.0f);
      std::vector<float> out(n / static_cast<std::size_t>(p));
      comm.ReduceScatter(std::span<float>(data), std::span<float>(out),
                         comm::ReduceOp::kSum);
      benchmark::DoNotOptimize(out.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4 * p);
}
BENCHMARK(BM_ReduceScatter)->Args({4, 1 << 12})->Args({4, 1 << 16});

void BM_Broadcast(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::World world(p);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator comm = comm::Communicator::WholeWorld(ctx);
      std::vector<float> data(n, static_cast<float>(ctx.rank));
      comm.Broadcast(std::span<float>(data), 0);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 4 * p);
}
BENCHMARK(BM_Broadcast)->Args({4, 1 << 12})->Args({8, 1 << 14});

void BM_HalfAllReduce(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t n = static_cast<std::size_t>(state.range(1));
  for (auto _ : state) {
    comm::World world(p);
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator comm = comm::Communicator::WholeWorld(ctx);
      std::vector<Half> data(n, Half(1.0f));
      comm.AllReduce(std::span<Half>(data), comm::ReduceOp::kSum);
      benchmark::DoNotOptimize(data.data());
    });
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n) * 2 * p);
}
BENCHMARK(BM_HalfAllReduce)->Args({4, 1 << 14});

}  // namespace
