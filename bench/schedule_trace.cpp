// Schedule trace: the event-true step scheduler vs the closed-form cost
// model on the Figure 2 configurations, plus a phase timeline for one
// run — where each layer computes, where MP all-reduces sit, when the
// bucketized DP reductions drain.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sim/paper_configs.hpp"
#include "sim/step_scheduler.hpp"

using namespace zero;

int main() {
  sim::ClusterSpec cluster;
  std::printf(
      "== Step scheduler vs closed-form cost model (Table 5 configs) "
      "==\n\n");
  Table table({"model", "system", "analytic TF", "scheduled TF",
               "dp busy s", "dp exposed s"});
  for (const sim::PaperRun& run : sim::Figure2Runs()) {
    const sim::JobConfig job = run.ToJob();
    const sim::ThroughputEstimate analytic =
        sim::EstimateThroughput(cluster, job);
    const sim::ScheduledStep scheduled = sim::ScheduleStep(cluster, job);
    char a[16], s[16], busy[16], exp[16];
    std::snprintf(a, sizeof(a), "%.1f", analytic.tflops_per_gpu);
    std::snprintf(s, sizeof(s), "%.1f", scheduled.tflops_per_gpu);
    std::snprintf(busy, sizeof(busy), "%.2f", scheduled.dp_comm_busy_s);
    std::snprintf(exp, sizeof(exp), "%.3f", scheduled.exposed_dp_s);
    table.AddRow({run.label, run.is_zero ? "ZeRO" : "baseline", a, s, busy,
                  exp});
  }
  table.Print(std::cout);

  std::printf(
      "\n-- phase timeline, 60B ZeRO at 400 GPUs (first/last layers) "
      "--\n");
  const sim::ScheduledStep trace =
      sim::ScheduleStep(cluster, sim::Figure3Runs().back().ToJob());
  Table tl({"phase", "engine", "start s", "end s"});
  for (const sim::PhaseRecord& p : trace.timeline) {
    const char* engine =
        p.engine == sim::PhaseRecord::Engine::kCompute ? "compute"
        : p.engine == sim::PhaseRecord::Engine::kComm  ? "dp-comm"
                                                       : "pcie";
    char b[24], e[24];
    std::snprintf(b, sizeof(b), "%.4f", p.start);
    std::snprintf(e, sizeof(e), "%.4f", p.end);
    tl.AddRow({p.name, engine, b, e});
  }
  tl.Print(std::cout);
  std::printf(
      "\nstep %.2f s: compute %.2f s busy, MP comm %.2f s inside it, DP "
      "engine %.2f s busy\n(%.3f s exposed), %.1f TF/GPU.\n",
      trace.total_s, trace.compute_busy_s, trace.mp_comm_s,
      trace.dp_comm_busy_s, trace.exposed_dp_s, trace.tflops_per_gpu);
  return 0;
}
