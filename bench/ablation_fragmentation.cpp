// Ablation (Sec 3.2 / 6.3, MD): memory fragmentation from interleaved
// tensor lifetimes, measured on the real allocator, and the contiguous
// pre-allocation that defeats it. Reproduces the paper's observation of
// OOM "with over 30% of memory still available" and MD's fix.
#include <cstdio>
#include <iostream>
#include <optional>
#include <vector>

#include "alloc/arena.hpp"
#include "alloc/device_memory.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

using namespace zero;

namespace {

struct Outcome {
  bool oom = false;
  double free_fraction_at_oom = 0;
  double fragmentation = 0;
  std::size_t largest_free = 0;
};

// A training-iteration-shaped allocation pattern: per layer, a short-
// lived recompute buffer and a long-lived checkpoint; at the end, one
// big long-lived allocation (the next layer's gradient bucket).
Outcome RunPattern(bool use_arena, int layers, std::size_t capacity,
                   std::size_t act_bytes, std::size_t ckpt_bytes,
                   std::size_t final_bytes) {
  Outcome out;
  alloc::DeviceMemory dev(capacity, "ablation", alloc::FitPolicy::kFirstFit);
  std::vector<alloc::Allocation> checkpoints;
  std::vector<alloc::Allocation> activations;
  std::optional<alloc::Arena> arena;
  if (use_arena) {
    arena.emplace(dev, ckpt_bytes * static_cast<std::size_t>(layers),
                  "md-arena");
  }
  try {
    for (int l = 0; l < layers; ++l) {
      activations.push_back(dev.Allocate(act_bytes));
      if (use_arena) {
        (void)arena->Allocate(ckpt_bytes);
      } else {
        checkpoints.push_back(dev.Allocate(ckpt_bytes));
      }
    }
    activations.clear();  // all short-lived buffers die together
    alloc::Allocation final_alloc = dev.Allocate(final_bytes);
    (void)final_alloc;
  } catch (const DeviceOomError& e) {
    out.oom = true;
    out.free_fraction_at_oom =
        static_cast<double>(e.free_total()) / static_cast<double>(capacity);
    out.largest_free = e.largest_free_block();
  }
  out.fragmentation = dev.Stats().ExternalFragmentation();
  return out;
}

}  // namespace

int main() {
  constexpr std::size_t kCap = 64ull << 20;  // 64 MiB "device"
  constexpr int kLayers = 12;
  constexpr std::size_t kAct = 3ull << 20;
  constexpr std::size_t kCkpt = 2ull << 20;
  constexpr std::size_t kFinal = 24ull << 20;

  std::printf(
      "== Ablation: fragmentation vs MD (64 MiB device, %d layers) ==\n\n",
      kLayers);
  Table table({"placement", "final 24 MiB alloc", "free at OOM",
               "largest free block", "fragmentation"});

  const Outcome interleaved =
      RunPattern(false, kLayers, kCap, kAct, kCkpt, kFinal);
  const Outcome md = RunPattern(true, kLayers, kCap, kAct, kCkpt, kFinal);

  auto row = [&](const char* name, const Outcome& o) {
    char freec[32], frag[16];
    std::snprintf(freec, sizeof(freec), "%.0f%% of device",
                  o.free_fraction_at_oom * 100);
    std::snprintf(frag, sizeof(frag), "%.0f%%", o.fragmentation * 100);
    table.AddRow({name, o.oom ? "OOM" : "succeeds",
                  o.oom ? freec : "-",
                  o.oom ? FormatBytes(static_cast<double>(o.largest_free))
                        : "-",
                  frag});
  };
  row("checkpoints interleaved", interleaved);
  row("checkpoints in MD arena", md);
  table.Print(std::cout);

  std::printf(
      "\nPaper Sec 3.2: 'out of memory issue with over 30%% of memory "
      "still available in\nsome extreme cases'; Sec 6.3: pre-allocated "
      "contiguous buffers prevent it.\n");
  return 0;
}
