// Table 1: per-device model-state memory as a function of DP degree for
// 7.5B, 128B and 1T parameter models, under Pos / Pos+g / Pos+g+p.
// Bold cells in the paper (the combinations that fit a 32 GB V100) are
// marked with '*'.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "model/transformer_spec.hpp"

using namespace zero;
using model::PerDeviceModelStates;
using model::ZeroStage;

namespace {

std::string Cell(double psi, ZeroStage stage, int nd) {
  const double gb = PerDeviceModelStates(psi, stage, nd).total() / 1e9;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.4g%s", gb, gb <= 32.0 ? " *" : "");
  return buf;
}

}  // namespace

int main() {
  std::printf(
      "== Table 1: per-device model-state memory (GB) vs DP degree ==\n"
      "('*' marks cells that fit a 32 GB V100, bold in the paper)\n\n");
  const double models[] = {7.5e9, 128e9, 1e12};
  const char* names[] = {"7.5B", "128B", "1T"};
  for (int m = 0; m < 3; ++m) {
    std::printf("Model %s:\n", names[m]);
    Table table({"DP", "Pos", "Pos+g", "Pos+g+p"});
    for (int nd : {1, 4, 16, 64, 256, 1024}) {
      table.AddRow({std::to_string(nd), Cell(models[m], ZeroStage::kOs, nd),
                    Cell(models[m], ZeroStage::kOsG, nd),
                    Cell(models[m], ZeroStage::kOsGP, nd)});
    }
    table.Print(std::cout);
    std::printf("\n");
  }
  std::printf(
      "Paper reference rows: 7.5B@64 = 31.4 / 16.6 / 1.88;"
      " 1T@1024 = 4011 / 2013 / 15.6.\n");
  return 0;
}
