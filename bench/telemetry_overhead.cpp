// Telemetry overhead gate.
//
// The trace spans are compiled into the hot paths permanently and only
// dynamically disabled, so the thing to prove is that a disabled span is
// too cheap to matter. This bench measures
//   * disabled_ns:   cost of one disabled TRACE_SPAN (tight loop),
//   * enabled_ns:    cost of one recorded span (ring-buffer write),
//   * spans_per_step: how many spans a stage-3 dp=2 training step emits
//                     (counted from a briefly-enabled in-memory trace),
//   * step_ns:       wall time of that step with telemetry off,
// and gates the implied disabled overhead
//   spans_per_step * disabled_ns / step_ns < 2%.
// Results land in BENCH_telemetry.json next to BENCH_kernels.json.
// ZERO_BENCH_RELAX=1 downgrades a gate failure to a warning.
//
// Usage: telemetry_overhead [out.json]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gate.hpp"
#include "core/trainer.hpp"
#include "obs/trace.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double NsPerSpan(int iters) {
  const auto t0 = Clock::now();
  for (int i = 0; i < iters; ++i) {
    TRACE_SPAN("bench/span");
  }
  const auto t1 = Clock::now();
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                 .count()) /
         iters;
}

zero::core::TrainOptions BenchOptions() {
  zero::core::TrainOptions options;
  options.model.vocab = 48;
  options.model.seq = 16;
  options.model.hidden = 32;
  options.model.layers = 3;
  options.model.heads = 4;
  options.engine.stage = zero::model::ZeroStage::kOsGP;
  options.cluster.dp_degree = 2;
  options.batch_per_rank = 4;
  options.steps = 6;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace zero;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_telemetry.json";
  // 1) Per-span costs. Warm up first so the lazy ring registration and
  // branch predictors settle before the measured loops.
  obs::DisableTracing();
  NsPerSpan(100000);
  const double disabled_ns = NsPerSpan(20000000);

  obs::SetTraceBufferCapacity(1 << 20);
  obs::ResetTrace();
  obs::EnableTracing();
  NsPerSpan(100000);
  const double enabled_ns = NsPerSpan(2000000);
  obs::DisableTracing();
  obs::ResetTrace();

  // 2) Spans per training step, counted from a short traced run of the
  // heaviest-instrumented stage (3: param materialization + bucketized
  // gradients). In-memory only; no artifacts are written.
  core::TrainOptions traced = BenchOptions();
  traced.engine.telemetry.enabled = true;
  traced.engine.telemetry.validate = false;
  core::TrainGpt(traced);
  const double spans_per_step =
      static_cast<double>(obs::TraceEventCount() + obs::TraceDroppedCount()) /
      traced.steps;
  obs::ResetTrace();

  // 3) Step wall time with telemetry off (the production default).
  core::TrainOptions plain = BenchOptions();
  const auto t0 = Clock::now();
  core::TrainGpt(plain);
  const auto t1 = Clock::now();
  const double step_ns =
      static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
              .count()) /
      plain.steps;

  const double overhead_pct = 100.0 * spans_per_step * disabled_ns / step_ns;

  std::printf("telemetry overhead:\n");
  std::printf("  disabled span      %8.3f ns\n", disabled_ns);
  std::printf("  enabled span       %8.3f ns\n", enabled_ns);
  std::printf("  spans per step     %8.1f\n", spans_per_step);
  std::printf("  step time          %8.3f ms\n", step_ns / 1e6);
  std::printf("  disabled overhead  %8.4f %% of a step (gate: < 2%%)\n",
              overhead_pct);

  std::ofstream f(out_path, std::ios::trunc);
  f << "{\n"
    << "  \"disabled_span_ns\": " << disabled_ns << ",\n"
    << "  \"enabled_span_ns\": " << enabled_ns << ",\n"
    << "  \"spans_per_step\": " << spans_per_step << ",\n"
    << "  \"step_ns\": " << step_ns << ",\n"
    << "  \"disabled_overhead_pct\": " << overhead_pct << ",\n"
    << "  \"gate_pct\": 2.0\n"
    << "}\n";
  f.close();
  std::printf("wrote %s\n", out_path.c_str());

  zero::bench::GateSet gates;
  if (overhead_pct >= 2.0) {
    std::ostringstream os;
    os << "disabled-telemetry overhead " << overhead_pct
       << "% exceeds 2% gate";
    gates.Fail(os.str());
  }
  return gates.ExitCode();
}
