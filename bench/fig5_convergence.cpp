// Figure 5: Turing-NLG (17B, trained with ZeRO-100B) validation
// perplexity vs the previous SOTA Megatron-LM 8.3B over training.
//
// Scaled-down real-execution reproduction: two GPT models train on the
// same synthetic Markov corpus with this library's runtime —
//   "Turing proxy":   the larger model, trained with ZeRO stage 2 +
//                     activation checkpointing across 4 DP ranks (the
//                     ZeRO-100B configuration);
//   "Megatron proxy": a ~2.3x smaller model, baseline DP.
// The figure's claim under test: the bigger model that only ZeRO makes
// trainable reaches lower perplexity at every point of the curve.
#include <cmath>
#include <cstdio>
#include <iostream>
#include <mutex>

#include "comm/world.hpp"
#include "common/table.hpp"
#include "core/dp_engine.hpp"
#include "model/corpus.hpp"
#include "model/gpt.hpp"

using namespace zero;

namespace {

struct Curve {
  std::vector<int> steps;
  std::vector<double> perplexity;
};

Curve TrainCurve(const model::GptConfig& cfg, model::ZeroStage stage,
                 int dp, int steps, int report_every) {
  Curve curve;
  std::mutex mu;
  comm::World world(dp);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator comm = comm::Communicator::WholeWorld(ctx);
    model::GptModel gpt(cfg, {});
    core::EngineConfig ecfg;
    ecfg.stage = stage;
    ecfg.fp16 = true;
    ecfg.loss_scale = 256.0f;
    ecfg.adam.lr = 3e-3f;
    core::ZeroDpEngine engine(ecfg, gpt, comm, nullptr, 17);
    model::MarkovCorpus corpus(cfg.vocab, 2, /*table_seed=*/55,
                               static_cast<std::uint64_t>(ctx.rank));
    for (int step = 0; step < steps; ++step) {
      (void)engine.TrainStep(corpus.NextBatch(4, cfg.seq));
      if ((step + 1) % report_every == 0) {
        // Validation loss: identical batch and parameters on every rank,
        // so every rank computes the same value (EvalLoss is collective
        // for stage 3); rank 0 records it.
        double val = 0;
        const int val_batches = 4;
        model::MarkovCorpus val_copy(cfg.vocab, 2, 55, 9999);
        for (int b = 0; b < val_batches; ++b) {
          val += engine.EvalLoss(val_copy.NextBatch(4, cfg.seq));
        }
        if (ctx.rank == 0) {
          std::lock_guard<std::mutex> lock(mu);
          curve.steps.push_back(step + 1);
          curve.perplexity.push_back(std::exp(val / val_batches));
        }
      }
    }
  });
  return curve;
}

}  // namespace

int main() {
  std::printf(
      "== Figure 5 (scaled): larger ZeRO-trained model vs smaller "
      "baseline, perplexity over training ==\n\n");

  // "Turing-NLG proxy": ~2.3x the parameters of the baseline proxy, the
  // same ratio as 17B : 8.3B.
  model::GptConfig big;
  big.vocab = 17;
  big.seq = 16;
  big.hidden = 40;
  big.layers = 3;
  big.heads = 4;

  model::GptConfig small = big;
  small.hidden = 24;
  small.layers = 2;

  const int steps = 300;
  const int every = 30;
  const Curve turing =
      TrainCurve(big, model::ZeroStage::kOsG, /*dp=*/4, steps, every);
  const Curve megatron =
      TrainCurve(small, model::ZeroStage::kNone, /*dp=*/4, steps, every);

  model::GptModel big_probe(big, {});
  model::GptModel small_probe(small, {});
  std::printf("Turing proxy:   %lld params, ZeRO Pos+g over 4 ranks\n",
              static_cast<long long>(big_probe.layout().total_numel()));
  std::printf("Megatron proxy: %lld params, baseline DP over 4 ranks\n\n",
              static_cast<long long>(small_probe.layout().total_numel()));

  Table table(
      {"step", "Turing-proxy val ppl (ZeRO)", "Megatron-proxy val ppl"});
  for (std::size_t i = 0; i < turing.steps.size(); ++i) {
    char a[24], b[24];
    std::snprintf(a, sizeof(a), "%.3f", turing.perplexity[i]);
    std::snprintf(b, sizeof(b), "%.3f", megatron.perplexity[i]);
    table.AddRow({std::to_string(turing.steps[i]), a, b});
  }
  table.Print(std::cout);
  const bool wins = turing.perplexity.back() < megatron.perplexity.back();
  std::printf(
      "\nFinal perplexity: ZeRO-enabled larger model %.3f vs baseline "
      "%.3f -> larger model %s.\n"
      "Paper: Turing-NLG 17B reaches Webtext-103 ppl 10.21, below "
      "Megatron-LM 8.3B (Fig 5).\n",
      turing.perplexity.back(), megatron.perplexity.back(),
      wins ? "wins" : "DOES NOT win (unexpected)");
  return wins ? 0 : 1;
}
