// Stage-3 prefetch overlap bench: blocking vs prefetched parameter
// stalls.
//
// With blocking broadcast-on-demand, every unit materialization is a
// rendezvous: the model stops at AcquireUnit while the ring broadcast
// threads its chunks through every rank. With gathers launched
// `lookahead` units ahead, the chunks are already deposited by the time
// the model asks and the acquire completes without stalling — the
// paper's Sec 7.2.2 pipelining claim.
//
// The gated metric is the engine's own overlap accounting,
// comm.overlap_frac: the fraction of gather latency hidden behind
// compute (1 - exposed_wait / gather_active). Blocking exposes every
// gather in full (frac 0); a working pipeline hides a strictly positive
// and lookahead-increasing fraction. That accounting is a property of
// the schedule, so it is reproducible on any machine — unlike wall
// time, which on a small or oversubscribed CI box (threads-as-ranks
// sharing one core) is scheduler noise. Wall time and the per-rank
// AcquireUnit stall are still measured and reported, informationally,
// in BENCH_overlap.json.
//
// The model is QuadModel-style exact unit math: losses MUST stay
// bit-identical across lookaheads — overlap is a latency optimization,
// never a numerics change.
//
// Writes BENCH_overlap.json; fails (exit 1) unless every lookahead >= 1
// config hits the pipeline with comm.overlap_frac > 0, the deepest
// config hides at least kMinPeakOverlap of gather latency, and losses
// stay bit-identical. ZERO_BENCH_RELAX=1 downgrades failures to
// warnings.
//
// Usage: overlap_step [out.json]
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "gate.hpp"
#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/flat_model.hpp"
#include "obs/metrics.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace zero;

constexpr int kRanks = 4;
constexpr int kUnits = 24;
constexpr std::int64_t kElemsPerUnit = 4096;
constexpr int kSteps = 6;
constexpr int kWarmupSteps = 2;  // step 0 records, step 1 fills pipeline
// The deepest lookahead must hide at least this fraction of gather
// latency behind compute (observed ~0.83 at lookahead 4).
constexpr double kMinPeakOverlap = 0.5;

std::uint64_t Splitmix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

double MsSince(Clock::time_point t0) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(
                 Clock::now() - t0)
                 .count()) /
         1e6;
}

// QuadModel-style exact unit math, instrumented to time every
// AcquireUnit call (the parameter stall the prefetcher targets).
class StallTimedModel final : public model::FlatParamModel {
 public:
  StallTimedModel() {
    for (int u = 0; u < kUnits; ++u) {
      layout_.Add("unit" + std::to_string(u), kElemsPerUnit, u);
    }
  }

  [[nodiscard]] const model::ParamLayout& layout() const override {
    return layout_;
  }

  void InitParameters(std::span<float> flat,
                      std::uint64_t seed) const override {
    std::uint64_t h = seed;
    for (float& x : flat) {
      h = Splitmix(h);
      x = static_cast<float>(h >> 40) / static_cast<float>(1 << 24) - 0.5f;
    }
  }

  float Step(const model::Batch& batch, model::ParamProvider& params,
             model::GradSink& grads) override {
    // Deterministic per-batch target; the sin loop stands in for layer
    // compute between materializations.
    double seed = 0.0;
    for (std::int32_t v : batch.inputs) seed += static_cast<double>(v);
    double loss = 0.0;
    std::vector<float> unit_grad(kElemsPerUnit);
    for (int u = 0; u < kUnits; ++u) {
      std::span<const float> p = Acquire(params, u, model::Phase::kForward);
      const auto [b, e] = layout_.UnitRange(u);
      for (std::int64_t i = 0; i < e - b; ++i) {
        const double t =
            std::sin(seed * 0.001 + 0.05 * static_cast<double>(b + i));
        const double d =
            static_cast<double>(p[static_cast<std::size_t>(i)]) - t;
        loss += 0.5 * d * d;
      }
      params.ReleaseUnit(u, model::Phase::kForward);
    }
    for (int u = kUnits - 1; u >= 0; --u) {
      std::span<const float> p = Acquire(params, u, model::Phase::kBackward);
      const auto [b, e] = layout_.UnitRange(u);
      for (std::int64_t i = 0; i < e - b; ++i) {
        const double t =
            std::sin(seed * 0.001 + 0.05 * static_cast<double>(b + i));
        unit_grad[static_cast<std::size_t>(i)] = static_cast<float>(
            static_cast<double>(p[static_cast<std::size_t>(i)]) - t);
      }
      params.ReleaseUnit(u, model::Phase::kBackward);
      grads.EmitUnitGrad(u, unit_grad);
    }
    ++step_;
    return static_cast<float>(loss);
  }

  // Parameter stall accumulated over steady-state steps.
  [[nodiscard]] double stall_ms() const { return stall_ms_; }

 private:
  std::span<const float> Acquire(model::ParamProvider& params, int u,
                                 model::Phase phase) {
    const auto t0 = Clock::now();
    std::span<const float> p = params.AcquireUnit(u, phase);
    if (step_ >= kWarmupSteps) stall_ms_ += MsSince(t0);
    return p;
  }

  model::ParamLayout layout_;
  int step_ = 0;
  double stall_ms_ = 0.0;
};

model::Batch RankBatch(int rank, int step) {
  model::Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

struct RunResult {
  int lookahead = 0;
  double stall_ms = 0;   // max over ranks, steps kWarmupSteps..kSteps-1
  double steady_ms = 0;  // rank-0 wall time of the same steps (info only)
  double overlap_frac = 0;
  double hits = 0;
  double misses = 0;
  std::vector<float> losses;  // rank 0, all steps
};

RunResult RunAtLookahead(int lookahead) {
  obs::Metrics().ResetValues();
  RunResult out;
  out.lookahead = lookahead;
  std::mutex mu;

  comm::World world(kRanks);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    StallTimedModel m;
    core::EngineConfig cfg;
    cfg.stage = model::ZeroStage::kOsGP;
    cfg.fp16 = true;
    cfg.loss_scale = 64.0f;
    cfg.prefetch_lookahead = lookahead;
    core::ZeroDpEngine engine(cfg, m, dp, nullptr, 42);
    std::vector<float> losses;
    Clock::time_point steady_t0{};
    for (int s = 0; s < kSteps; ++s) {
      if (s == kWarmupSteps) steady_t0 = Clock::now();
      losses.push_back(engine.TrainStep(RankBatch(ctx.rank, s)));
    }
    const double steady = MsSince(steady_t0);
    std::lock_guard<std::mutex> lock(mu);
    out.stall_ms = std::max(out.stall_ms, m.stall_ms());
    if (ctx.rank == 0) {
      out.steady_ms = steady;
      out.losses = std::move(losses);
    }
  });

  out.overlap_frac = obs::Metrics().gauge("comm.overlap_frac").value();
  out.hits = obs::Metrics().counter("prefetch.hits").value();
  out.misses = obs::Metrics().counter("prefetch.misses").value();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_overlap.json";

  std::printf(
      "stage-3 parameter stall, blocking vs prefetched (%d ranks, %d "
      "units x %lld elems, steps %d..%d measured):\n",
      kRanks, kUnits, static_cast<long long>(kElemsPerUnit), kWarmupSteps,
      kSteps - 1);

  std::vector<RunResult> results;
  for (int lookahead : {0, 1, 2, 4}) {
    RunResult r = RunAtLookahead(lookahead);
    std::printf(
        "  lookahead %d -> stall %8.2f ms, wall %8.2f ms, overlap_frac "
        "%.3f, hits %5.0f, misses %3.0f\n",
        r.lookahead, r.stall_ms, r.steady_ms, r.overlap_frac, r.hits,
        r.misses);
    results.push_back(std::move(r));
  }

  bool ok = true;
  // Pure latency optimization: every config must produce bitwise
  // identical losses.
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].losses != results[0].losses) {
      std::printf("FAIL: lookahead %d losses diverge from blocking\n",
                  results[i].lookahead);
      ok = false;
    }
  }
  // Blocking must report zero overlap (nothing prefetched), and every
  // prefetched config must hide a strictly positive fraction of gather
  // latency with a fully warm pipeline.
  if (results[0].overlap_frac != 0.0 || results[0].hits != 0.0) {
    std::printf("FAIL: blocking config reports prefetch activity\n");
    ok = false;
  }
  double peak_overlap = 0.0;
  for (const RunResult& r : results) {
    if (r.lookahead < 1) continue;
    peak_overlap = std::max(peak_overlap, r.overlap_frac);
    if (r.overlap_frac <= 0.0) {
      std::printf("FAIL: lookahead %d reports no overlap\n", r.lookahead);
      ok = false;
    }
    if (r.hits <= 0.0 || r.misses > 0.0) {
      std::printf("FAIL: lookahead %d pipeline not warm (%0.f hits, %0.f "
                  "misses)\n",
                  r.lookahead, r.hits, r.misses);
      ok = false;
    }
  }
  if (peak_overlap < kMinPeakOverlap) {
    std::printf("FAIL: peak overlap_frac %.3f below the %.2f gate\n",
                peak_overlap, kMinPeakOverlap);
    ok = false;
  }
  std::printf("  peak hidden gather latency: %.0f%% (blocking exposes "
              "100%%)\n",
              peak_overlap * 100.0);

  std::ofstream f(out_path, std::ios::trunc);
  f << "{\n  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    f << "    {\"lookahead\": " << r.lookahead
      << ", \"param_stall_ms\": " << r.stall_ms
      << ", \"steady_wall_ms\": " << r.steady_ms
      << ", \"overlap_frac\": " << r.overlap_frac
      << ", \"prefetch_hits\": " << r.hits
      << ", \"prefetch_misses\": " << r.misses
      << ", \"losses_match_blocking\": "
      << (r.losses == results[0].losses ? "true" : "false") << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ],\n  \"peak_overlap_frac\": " << peak_overlap
    << ",\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  f.close();
  std::printf("wrote %s\n", out_path.c_str());

  return zero::bench::GateExit(ok);
}
