// Section 9: the step toward 1 trillion parameters — memory feasibility
// of a 1T model on 1024 GPUs (DP-only with Pos+g+p, and MP16 x DP64),
// plus the compute-power-gap arithmetic the paper closes with.
#include <cstdio>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "common/units.hpp"
#include "model/transformer_spec.hpp"
#include "sim/memory_model.hpp"
#include "sim/search.hpp"

using namespace zero;
using model::ZeroStage;

int main() {
  sim::ClusterSpec cluster;
  std::printf("== Sec 9: fitting 1T parameters on 1024 GPUs ==\n\n");

  // A 1T-parameter transformer in the paper's model family.
  model::TransformerSpec trillion;
  trillion.hidden = 16384;
  trillion.heads = 128;
  trillion.layers = 310;  // 12*l*h^2 ~= 1T
  const double psi = static_cast<double>(trillion.NumParameters());

  Table table({"configuration", "states/GPU", "fits 32 GB?", "paper"});
  const struct {
    const char* name;
    ZeroStage stage;
    int mp;
    const char* paper;
  } rows[] = {
      {"baseline DP x1024", ZeroStage::kNone, 1, "16 TB/GPU: impossible"},
      {"Pos x1024", ZeroStage::kOs, 1, "4 TB/GPU: no"},
      {"Pos+g x1024", ZeroStage::kOsG, 1, "2 TB/GPU: no"},
      {"Pos+g+p, DP=1024", ZeroStage::kOsGP, 1, "15.6 GB: yes"},
      {"Pos+g+p, MP16 x DP64", ZeroStage::kOsGP, 16, "yes"},
  };
  for (const auto& row : rows) {
    const int nd = 1024 / row.mp;
    const double per_gpu =
        model::PerDeviceModelStates(psi / row.mp, row.stage, nd).total();
    table.AddRow({row.name, FormatBytes(per_gpu),
                  per_gpu <= 32e9 ? "YES" : "no", row.paper});
  }
  table.Print(std::cout);

  std::printf("\nModel: %s parameters (%lld layers x %lld hidden)\n",
              FormatCount(psi).c_str(),
              static_cast<long long>(trillion.layers),
              static_cast<long long>(trillion.hidden));

  // Storage tiers (alloc/tier.hpp, core/offload_engine): moving the
  // K*Psi/Nd fp32 state into host DRAM or NVMe shrinks the device
  // footprint further and cuts the GPU count a trillion-parameter
  // model needs to fit at all.
  std::printf("\n== Optimizer offload: what fits on N GPUs ==\n\n");
  Table tiers({"tier (Pos+g+p, batch 1)", "device/GPU @1024",
               "host/GPU @1024", "nvme/GPU @1024", "min GPUs to fit"});
  const struct {
    const char* name;
    sim::OffloadTier tier;
  } tier_rows[] = {
      {"device (no offload)", sim::OffloadTier::kNone},
      {"host DRAM (ZeRO-Offload)", sim::OffloadTier::kHost},
      {"NVMe (ZeRO-Infinity)", sim::OffloadTier::kNvme},
  };
  for (const auto& row : tier_rows) {
    sim::JobConfig job;
    job.model = trillion;
    job.gpus = 1024;
    job.mp = 1;
    job.batch_per_gpu = 1;
    job.stage = ZeroStage::kOsGP;
    job.optimizer_tier = row.tier;
    const sim::MemoryBreakdown mem = sim::EstimateMemory(cluster, job);
    const int min_gpus = sim::MinGpusToFit(cluster, job);
    tiers.AddRow({row.name, FormatBytes(mem.total()),
                  FormatBytes(mem.host_total()),
                  FormatBytes(mem.nvme_total()),
                  min_gpus > 0 ? std::to_string(min_gpus) : "never"});
  }
  tiers.Print(std::cout);

  // Compute-power gap (Sec 9): ~3000x Bert-Large's compute per sample;
  // >140 days on today's cluster even at perfect efficiency.
  const double step_flops = trillion.StepFlops(/*batch=*/1024, true);
  const double cluster_flops = 1024 * 40e12;  // 40 TF/GPU sustained
  const double tokens_needed = 300e9;  // GPT-3-era token budget
  const double steps_needed =
      tokens_needed / (1024.0 * static_cast<double>(trillion.seq));
  const double days =
      step_flops * steps_needed / cluster_flops / 86400.0;
  std::printf(
      "Compute gap: one step at batch 1024 costs %.3g flops; training "
      "%.0fB tokens\nwould take ~%.0f days at 40 TF/GPU x 1024 GPUs — "
      "the paper's '>1 year / needs an\nexaflop system' conclusion.\n",
      step_flops, tokens_needed / 1e9, days);
  return 0;
}
