// Streaming optimizer-offload bench: in-device vs tiered fp32 state.
//
// Four configs train the same model: device-resident MixedPrecisionAdam
// (the baseline), the host tier with eager gradient streaming
// (ZeRO-Offload's split: fp16 gradients down during backward, host
// Adam, fp16 parameters back), the host tier with eager streaming off
// (every transfer at update time), and the simulated-NVMe tier
// (ZeRO-Infinity: the 12 B/param fp32 state streams through the link
// both ways on top of the wire format).
//
// Two properties are gated:
//   1. Losses are bit-identical across all four configs — offload is a
//      placement/latency optimization, never a numerics change.
//   2. The host+eager config hides at least kMinHiddenFrac of its link
//      time behind compute (channel accounting: 1 - exposed/active).
//      Eager slices ride the link while backward and the reduction
//      still run; the double-buffered update hides the rest. That
//      accounting is a property of the schedule, reproducible on any
//      machine — wall time on a CI box is scheduler noise.
//
// The JSON also carries the trillion-parameter feasibility table from
// the sim tier model: per-GPU device/host/NVMe bytes at 1024 GPUs and
// the minimum GPU count at which a 1T Pos+g+p job fits per tier — the
// "what does offload buy at the frontier" answer.
//
// Writes BENCH_offload.json; exit 1 on gate failure unless
// ZERO_BENCH_RELAX=1 downgrades it to a warning.
//
// Usage: offload_step [out.json]
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "gate.hpp"
#include "alloc/tier.hpp"
#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"
#include "obs/metrics.hpp"
#include "sim/memory_model.hpp"
#include "sim/search.hpp"

namespace {

using namespace zero;
using alloc::TierKind;

constexpr int kRanks = 2;
constexpr std::int64_t kNumel = 1 << 16;
constexpr int kUnits = 8;
constexpr int kSteps = 6;
// PCIe-scale link. Per 4096-elem slice the 8 KB transfer takes ~4 us,
// well under the slice's host-Adam compute, so a working pipeline hides
// nearly all of the ~65 us/step of link time; a broken one exposes it.
constexpr double kLinkBandwidth = 2e9;
constexpr double kMinHiddenFrac = 0.5;

model::Batch RankBatch(int rank, int step) {
  model::Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 31 + step * 7 + i);
    b.targets.push_back(0);
  }
  return b;
}

struct RunResult {
  std::string name;
  std::vector<float> losses;  // rank 0
  double bytes_to_tier = 0;
  double bytes_to_device = 0;
  double hidden_frac = -1.0;  // -1: no link (device tier)
  double eager_slices = 0;
};

RunResult RunConfig(const std::string& name, TierKind tier, bool eager) {
  obs::Metrics().ResetValues();
  RunResult out;
  out.name = name;
  std::mutex mu;

  comm::World world(kRanks);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(kNumel, kUnits);
    core::EngineConfig cfg;
    cfg.stage = model::ZeroStage::kOsG;
    cfg.fp16 = true;
    cfg.bucket_elems = 1 << 13;
    cfg.offload_tier = tier;
    cfg.offload_eager_grads = eager;
    cfg.offload_slice_elems = 1 << 12;
    if (tier != TierKind::kDevice) cfg.offload_bandwidth = kLinkBandwidth;
    core::ZeroDpEngine engine(cfg, m, dp, nullptr, 42);
    std::vector<float> losses;
    for (int s = 0; s < kSteps; ++s) {
      losses.push_back(engine.TrainStep(RankBatch(ctx.rank, s)));
    }
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.losses = std::move(losses);
      if (const alloc::ChannelStats* ch = engine.offload_channel_stats()) {
        out.bytes_to_tier = static_cast<double>(ch->bytes_to_tier);
        out.bytes_to_device = static_cast<double>(ch->bytes_to_device);
        out.hidden_frac = ch->hidden_fraction();
      }
    }
  });

  out.eager_slices = obs::Metrics().counter("offload.eager_slices").value();
  return out;
}

struct TierFit {
  std::string name;
  double device_gb = 0;
  double host_gb = 0;
  double nvme_gb = 0;
  int min_gpus = 0;
};

std::vector<TierFit> TrillionFits() {
  sim::ClusterSpec cluster;
  model::TransformerSpec trillion;
  trillion.hidden = 16384;
  trillion.heads = 128;
  trillion.layers = 310;  // 12*l*h^2 ~= 1T
  std::vector<TierFit> rows;
  const struct {
    const char* name;
    sim::OffloadTier tier;
  } tiers[] = {
      {"device", sim::OffloadTier::kNone},
      {"host", sim::OffloadTier::kHost},
      {"nvme", sim::OffloadTier::kNvme},
  };
  for (const auto& t : tiers) {
    sim::JobConfig job;
    job.model = trillion;
    job.gpus = 1024;
    job.mp = 1;
    job.batch_per_gpu = 1;
    job.stage = model::ZeroStage::kOsGP;
    job.optimizer_tier = t.tier;
    const sim::MemoryBreakdown mem = sim::EstimateMemory(cluster, job);
    rows.push_back({t.name, mem.total() / 1e9, mem.host_total() / 1e9,
                    mem.nvme_total() / 1e9,
                    sim::MinGpusToFit(cluster, job)});
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_offload.json";

  std::printf(
      "optimizer-state offload, %d ranks, %lld elems, %d steps, link "
      "%.0f MB/s:\n",
      kRanks, static_cast<long long>(kNumel), kSteps, kLinkBandwidth / 1e6);

  std::vector<RunResult> results;
  results.push_back(RunConfig("device", TierKind::kDevice, true));
  results.push_back(RunConfig("host-eager", TierKind::kHost, true));
  results.push_back(RunConfig("host-blocking", TierKind::kHost, false));
  results.push_back(RunConfig("nvme", TierKind::kNvme, true));
  for (const RunResult& r : results) {
    std::printf(
        "  %-13s -> to_tier %9.0f B, to_device %9.0f B, hidden %5.1f%%, "
        "eager slices %4.0f\n",
        r.name.c_str(), r.bytes_to_tier, r.bytes_to_device,
        r.hidden_frac < 0 ? 0.0 : r.hidden_frac * 100.0, r.eager_slices);
  }

  bool ok = true;
  // Gate 1: bit-identical losses everywhere.
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].losses != results[0].losses) {
      std::printf("FAIL: %s losses diverge from in-device\n",
                  results[i].name.c_str());
      ok = false;
    }
  }
  // Gate 2: the eager host pipeline hides most of its link time.
  const RunResult& eager = results[1];
  if (eager.hidden_frac < kMinHiddenFrac) {
    std::printf("FAIL: host-eager hidden fraction %.3f below the %.2f gate\n",
                eager.hidden_frac, kMinHiddenFrac);
    ok = false;
  }
  if (eager.eager_slices <= 0.0) {
    std::printf("FAIL: host-eager streamed no slices during backward\n");
    ok = false;
  }

  const std::vector<TierFit> fits = TrillionFits();
  std::printf("\n1T Pos+g+p feasibility (per GPU at 1024 GPUs):\n");
  for (const TierFit& f : fits) {
    std::printf(
        "  %-7s -> device %6.2f GB, host %6.2f GB, nvme %6.2f GB, min "
        "GPUs %d\n",
        f.name.c_str(), f.device_gb, f.host_gb, f.nvme_gb, f.min_gpus);
  }
  // Sanity on the frontier claim: offload must shrink the GPU floor.
  if (fits[1].min_gpus <= 0 || fits[1].min_gpus >= fits[0].min_gpus) {
    std::printf("FAIL: host offload does not shrink the 1T GPU floor\n");
    ok = false;
  }

  std::ofstream f(out_path, std::ios::trunc);
  f << "{\n  \"configs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    f << "    {\"name\": \"" << r.name << "\""
      << ", \"losses_match_device\": "
      << (r.losses == results[0].losses ? "true" : "false")
      << ", \"bytes_to_tier\": " << r.bytes_to_tier
      << ", \"bytes_to_device\": " << r.bytes_to_device
      << ", \"hidden_frac\": " << r.hidden_frac
      << ", \"eager_slices\": " << r.eager_slices << "}"
      << (i + 1 < results.size() ? "," : "") << "\n";
  }
  f << "  ],\n  \"trillion_fits\": [\n";
  for (std::size_t i = 0; i < fits.size(); ++i) {
    const TierFit& t = fits[i];
    f << "    {\"tier\": \"" << t.name << "\""
      << ", \"device_gb\": " << t.device_gb
      << ", \"host_gb\": " << t.host_gb << ", \"nvme_gb\": " << t.nvme_gb
      << ", \"min_gpus\": " << t.min_gpus << "}"
      << (i + 1 < fits.size() ? "," : "") << "\n";
  }
  f << "  ],\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  f.close();
  std::printf("wrote %s\n", out_path.c_str());

  return zero::bench::GateExit(ok);
}
