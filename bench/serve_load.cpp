// Serving load bench: continuous batching vs batch-of-1 on the same
// trainer checkpoint, under seeded overload traffic.
//
// The engine loads weights through the checkpoint path (TrainingState →
// file → LoadCheckpointFile), then two serve configs replay identical
// open-loop traffic whose offered rate exceeds capacity:
//
//   continuous — iteration-level batching: up to kMaxRunning sequences
//     share every forward, prefills pack next to decode tokens;
//   batch-of-1 — max_running = 1: one sequence occupies the engine
//     end-to-end, the classic request-level serving baseline.
//
// The serve loop runs on a deterministic virtual clock (step cost =
// base + per_token * packed), so the gated metric — saturation decode
// throughput, tokens per virtual second — is a pure function of the
// traffic seed and the config, reproducible on any machine. Wall time
// is also measured, informationally. Latency percentiles (TTFT and
// end-to-end p50/p99) and KV utilization come from the same summaries.
//
// Writes BENCH_serve.json; fails (exit 1) unless both configs complete
// every admitted request and continuous batching's saturation
// throughput is strictly higher than batch-of-1's. ZERO_BENCH_RELAX=1
// downgrades failures to warnings.
//
// Usage: serve_load [out.json]   (ZERO_SERVE_SEED reseeds the traffic)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "core/state_checkpoint.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "serve/traffic_gen.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace zero;

constexpr std::int64_t kMaxRunning = 8;
constexpr std::int64_t kStepTokens = 32;

model::GptConfig BenchModel() {
  model::GptConfig c;
  c.vocab = 64;
  c.seq = 32;
  c.hidden = 32;
  c.layers = 2;
  c.heads = 2;
  return c;
}

struct RunResult {
  std::string name;
  serve::ServeSummary summary;
  double wall_ms = 0.0;
  double kv_util = 0.0;  // peak blocks / pool blocks
};

RunResult RunConfig(const std::string& name, const std::string& ckpt,
                    std::span<const serve::ServeRequest> traffic,
                    std::int64_t max_running) {
  serve::InferenceOptions io;
  io.model = BenchModel();
  io.kv_block_tokens = 8;
  io.kv_max_blocks = 128;
  io.record_metrics = false;
  serve::InferenceEngine engine(io, {});
  engine.LoadCheckpointFile(ckpt);

  serve::ServeOptions so;
  so.scheduler.max_running = max_running;
  so.scheduler.max_step_tokens = kStepTokens;
  so.scheduler.max_seq = io.model.seq;
  so.scheduler.record_metrics = false;
  so.admission.record_metrics = false;
  so.admission.max_queue_requests = 1 << 20;  // measure service, not drops

  RunResult r;
  r.name = name;
  const auto t0 = Clock::now();
  r.summary = serve::ServeLoop(engine, traffic, so);
  r.wall_ms = static_cast<double>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - t0)
                      .count()) /
              1e3;
  if (r.summary.kv_blocks_total > 0) {
    r.kv_util = r.summary.kv_blocks_peak / r.summary.kv_blocks_total;
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  // Checkpoint → engine: the bench exercises the same load path the
  // serving example and the regression tests use.
  const model::GptConfig cfg = BenchModel();
  const std::string ckpt = "/tmp/zero_serve_bench_ckpt.bin";
  {
    model::GptModel m(cfg, {});
    core::TrainingState st;
    st.total_numel = m.layout().total_numel();
    st.step_count = 1;
    st.loss_scale = 1024.0f;
    st.master.resize(static_cast<std::size_t>(st.total_numel));
    m.InitParameters(st.master, 0x5E12D);
    st.momentum.assign(st.master.size(), 0.0f);
    st.variance.assign(st.master.size(), 0.0f);
    st.SaveToFile(ckpt);
  }

  serve::TrafficConfig tc;
  tc.qps = 4000.0;  // well past capacity: measures saturation throughput
  tc.duration_s = 0.05;
  tc.tenants = 3;
  tc.prompt_min = 4;
  tc.prompt_max = 12;
  tc.out_min = 2;
  tc.out_max = 8;
  tc.vocab = cfg.vocab;
  tc.seed = serve::ServeSeedFromEnv(42);
  const auto traffic = serve::GenerateOpenLoopTraffic(tc);

  std::printf(
      "serve load: %zu requests @ %.0f QPS offered, model v=%lld h=%lld "
      "L=%lld (seed %llu)\n",
      traffic.size(), tc.qps, static_cast<long long>(cfg.vocab),
      static_cast<long long>(cfg.hidden), static_cast<long long>(cfg.layers),
      static_cast<unsigned long long>(tc.seed));

  const RunResult cont =
      RunConfig("continuous", ckpt, traffic, kMaxRunning);
  const RunResult solo = RunConfig("batch_of_1", ckpt, traffic, 1);
  std::remove(ckpt.c_str());

  for (const RunResult* r : {&cont, &solo}) {
    std::printf(
        "  %-11s %5lld done in %7.1f virtual ms (%7.1f wall ms): %8.1f "
        "tok/s, ttft p50/p99 %6.1f/%6.1f ms, e2e p50/p99 %6.1f/%6.1f ms, "
        "kv util %.2f\n",
        r->name.c_str(), static_cast<long long>(r->summary.completed),
        r->summary.virtual_duration_s * 1e3, r->wall_ms,
        r->summary.decode_tokens_per_s(), r->summary.ttft_p50_ms,
        r->summary.ttft_p99_ms, r->summary.e2e_p50_ms,
        r->summary.e2e_p99_ms, r->kv_util);
  }

  bool ok = true;
  const auto want = static_cast<std::int64_t>(traffic.size());
  if (cont.summary.completed != want || solo.summary.completed != want) {
    std::printf("FAIL: not every request completed (%lld/%lld vs %lld)\n",
                static_cast<long long>(cont.summary.completed),
                static_cast<long long>(solo.summary.completed),
                static_cast<long long>(want));
    ok = false;
  }
  const double speedup = solo.summary.decode_tokens_per_s() > 0
                             ? cont.summary.decode_tokens_per_s() /
                                   solo.summary.decode_tokens_per_s()
                             : 0.0;
  if (cont.summary.decode_tokens_per_s() <=
      solo.summary.decode_tokens_per_s()) {
    std::printf("FAIL: continuous batching (%.1f tok/s) not faster than "
                "batch-of-1 (%.1f tok/s)\n",
                cont.summary.decode_tokens_per_s(),
                solo.summary.decode_tokens_per_s());
    ok = false;
  }
  std::printf("  continuous batching saturation speedup: %.2fx\n", speedup);

  std::ofstream f(out_path, std::ios::trunc);
  f << "{\n  \"offered_qps\": " << tc.qps
    << ",\n  \"requests\": " << traffic.size()
    << ",\n  \"seed\": " << tc.seed << ",\n  \"continuous\": "
    << cont.summary.ToJson() << ",\n  \"continuous_wall_ms\": "
    << cont.wall_ms << ",\n  \"continuous_kv_util\": " << cont.kv_util
    << ",\n  \"batch_of_1\": " << solo.summary.ToJson()
    << ",\n  \"batch_of_1_wall_ms\": " << solo.wall_ms
    << ",\n  \"batch_of_1_kv_util\": " << solo.kv_util
    << ",\n  \"saturation_speedup\": " << speedup
    << ",\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  f.close();
  std::printf("wrote %s\n", out_path.c_str());

  if (!ok && std::getenv("ZERO_BENCH_RELAX") != nullptr) {
    std::printf("WARN: gate failed but ZERO_BENCH_RELAX is set\n");
    return 0;
  }
  return ok ? 0 : 1;
}
