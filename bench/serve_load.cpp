// Serving load bench: continuous batching vs batch-of-1 on the same
// trainer checkpoint, under seeded overload traffic — plus two serving
// perf dimensions layered on top:
//
//   weight precision — the same full weights packed as fp32 / fp16 /
//     blockwise-int8 behind the dispatched GEMM backend, measured as
//     wall-clock decode throughput on a weight-bandwidth-bound model
//     (hidden 512, 4 layers: the per-step weight stream dwarfs the
//     activation traffic, so halving weight bytes must show up on the
//     clock);
//   prefix sharing — identical shared-prefix traffic served cold vs
//     with the copy-on-write prefix cache on; adopted KV positions are
//     prefill work that never runs, and the counts are deterministic.
//
// The base comparison:
//
//   continuous — iteration-level batching: up to kMaxRunning sequences
//     share every forward, prefills pack next to decode tokens;
//   batch-of-1 — max_running = 1: one sequence occupies the engine
//     end-to-end, the classic request-level serving baseline.
//
// The serve loop runs on a deterministic virtual clock (step cost =
// base + per_token * packed), so the gated metric — saturation decode
// throughput, tokens per virtual second — is a pure function of the
// traffic seed and the config, reproducible on any machine. Wall time
// is also measured, informationally. Latency percentiles (TTFT and
// end-to-end p50/p99) and KV utilization come from the same summaries.
//
// Writes BENCH_serve.json; fails (exit 1) unless
//   - both base configs complete every admitted request,
//   - continuous batching's saturation throughput is strictly higher
//     than batch-of-1's,
//   - fp16 decode throughput (wall) is strictly above fp32's (int8 is
//     recorded informationally),
//   - the prefix-cache run's prefill tokens are strictly below the cold
//     run's, with adopted + computed prefill exactly conserving the
//     cold total (deterministic integer counts).
// ZERO_BENCH_RELAX=1 downgrades failures to warnings.
//
// Usage: serve_load [out.json]   (ZERO_SERVE_SEED reseeds the traffic)
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "gate.hpp"
#include "core/state_checkpoint.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "serve/traffic_gen.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using namespace zero;

constexpr std::int64_t kMaxRunning = 8;
constexpr std::int64_t kStepTokens = 32;

model::GptConfig BenchModel() {
  model::GptConfig c;
  c.vocab = 64;
  c.seq = 32;
  c.hidden = 32;
  c.layers = 2;
  c.heads = 2;
  return c;
}

struct RunResult {
  std::string name;
  serve::ServeSummary summary;
  double wall_ms = 0.0;
  double kv_util = 0.0;  // peak blocks / pool blocks
};

RunResult RunConfig(const std::string& name, const std::string& ckpt,
                    std::span<const serve::ServeRequest> traffic,
                    std::int64_t max_running, bool prefix_cache = false) {
  serve::InferenceOptions io;
  io.model = BenchModel();
  io.kv_block_tokens = 8;
  io.kv_max_blocks = 128;
  io.record_metrics = false;
  io.prefix_cache = prefix_cache;
  serve::InferenceEngine engine(io, {});
  engine.LoadCheckpointFile(ckpt);

  serve::ServeOptions so;
  so.scheduler.max_running = max_running;
  so.scheduler.max_step_tokens = kStepTokens;
  so.scheduler.max_seq = io.model.seq;
  so.scheduler.record_metrics = false;
  so.admission.record_metrics = false;
  so.admission.max_queue_requests = 1 << 20;  // measure service, not drops

  RunResult r;
  r.name = name;
  const auto t0 = Clock::now();
  r.summary = serve::ServeLoop(engine, traffic, so);
  r.wall_ms = static_cast<double>(
                  std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - t0)
                      .count()) /
              1e3;
  if (r.summary.kv_blocks_total > 0) {
    r.kv_util = r.summary.kv_blocks_peak / r.summary.kv_blocks_total;
  }
  return r;
}

// ---------------------------------------------------------------------
// Weight-precision sweep. The base serve model is tiny (every weight
// matrix lives in L1), so precision cannot show up on the clock there;
// this sweep uses a model whose packed weights far exceed L2, making
// steady-state decode weight-bandwidth-bound — the regime the fp16/int8
// backends exist for.
model::GptConfig PrecisionModel() {
  model::GptConfig c;
  c.vocab = 128;
  c.seq = 64;
  c.hidden = 512;  // ~51 MB of fp32 weights over 4 layers
  c.layers = 4;
  c.heads = 8;
  return c;
}

constexpr std::int64_t kPrecSlots = 4;  // decode batch: small m, big weights
constexpr int kPrecPrompt = 8;
constexpr int kPrecSteps = 24;
constexpr int kPrecReps = 3;  // best-of, after one untimed warmup rollout

struct PrecisionResult {
  std::string name;
  double tok_per_s = 0.0;  // best-of-reps wall decode throughput
  double weight_mb = 0.0;
  std::vector<std::int32_t> sampled;  // greedy tokens, slot-major per step
};

PrecisionResult RunPrecision(const std::string& backend,
                             const model::GptConfig& cfg,
                             std::span<const float> full) {
  serve::InferenceOptions io;
  io.model = cfg;
  io.kv_block_tokens = 16;
  io.kv_max_blocks = 64;
  io.record_metrics = false;
  io.weights = backend;
  serve::InferenceEngine eng(io, {});
  eng.LoadFullWeights(full);

  PrecisionResult r;
  r.name = backend;
  r.weight_mb =
      static_cast<double>(eng.weights().weight_bytes()) / (1 << 20);

  const std::int64_t v = cfg.vocab;
  std::vector<float> logits(static_cast<std::size_t>(kPrecSlots * v));
  double best_s = 0.0;
  for (int rep = 0; rep <= kPrecReps; ++rep) {
    std::vector<std::int32_t> slots;
    std::vector<model::DecodeToken> toks;
    for (std::int64_t s = 0; s < kPrecSlots; ++s) {
      const std::int32_t slot = eng.kv().AllocSlot();
      if (!eng.kv().EnsureCapacity(slot, kPrecPrompt + kPrecSteps)) {
        std::fprintf(stderr, "precision sweep: KV pool too small\n");
        std::abort();
      }
      slots.push_back(slot);
      for (int j = 0; j < kPrecPrompt; ++j) {
        toks.push_back(
            {static_cast<std::int32_t>((s * 37 + j * 11 + 3) % v), slot, j});
      }
    }
    eng.Decode(toks, logits);  // batched prompt prefill, untimed

    std::vector<std::int32_t> next(static_cast<std::size_t>(kPrecSlots));
    std::vector<std::int32_t> sampled;
    auto argmax_row = [&](std::int64_t g) {
      const float* row = logits.data() + g * v;
      std::int32_t best = 0;
      for (std::int64_t t = 1; t < v; ++t) {
        if (row[t] > row[best]) best = static_cast<std::int32_t>(t);
      }
      return best;
    };
    for (std::int64_t s = 0; s < kPrecSlots; ++s) {
      next[static_cast<std::size_t>(s)] = argmax_row(s);
    }

    const auto t0 = Clock::now();
    for (int step = 0; step < kPrecSteps; ++step) {
      const std::int64_t pos = kPrecPrompt + step;
      toks.clear();
      for (std::int64_t s = 0; s < kPrecSlots; ++s) {
        toks.push_back({next[static_cast<std::size_t>(s)],
                        slots[static_cast<std::size_t>(s)], pos});
      }
      eng.Decode(toks, logits);
      for (std::int64_t s = 0; s < kPrecSlots; ++s) {
        next[static_cast<std::size_t>(s)] = argmax_row(s);
        sampled.push_back(next[static_cast<std::size_t>(s)]);
      }
    }
    const double secs =
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                Clock::now() - t0)
                .count()) /
        1e9;
    for (const std::int32_t slot : slots) eng.kv().FreeSlot(slot);
    if (rep == 0) continue;  // warmup
    const double tps =
        static_cast<double>(kPrecSlots * kPrecSteps) / secs;
    if (tps > r.tok_per_s) {
      r.tok_per_s = tps;
      best_s = secs;
    }
    r.sampled = std::move(sampled);
  }
  (void)best_s;
  return r;
}

std::int64_t GreedyMismatch(const PrecisionResult& ref,
                            const PrecisionResult& got) {
  std::int64_t n = 0;
  for (std::size_t i = 0; i < ref.sampled.size(); ++i) {
    n += i < got.sampled.size() && got.sampled[i] != ref.sampled[i] ? 1 : 0;
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serve.json";

  // Checkpoint → engine: the bench exercises the same load path the
  // serving example and the regression tests use.
  const model::GptConfig cfg = BenchModel();
  const std::string ckpt = "/tmp/zero_serve_bench_ckpt.bin";
  {
    model::GptModel m(cfg, {});
    core::TrainingState st;
    st.total_numel = m.layout().total_numel();
    st.step_count = 1;
    st.loss_scale = 1024.0f;
    st.master.resize(static_cast<std::size_t>(st.total_numel));
    m.InitParameters(st.master, 0x5E12D);
    st.momentum.assign(st.master.size(), 0.0f);
    st.variance.assign(st.master.size(), 0.0f);
    st.SaveToFile(ckpt);
  }

  serve::TrafficConfig tc;
  tc.qps = 4000.0;  // well past capacity: measures saturation throughput
  tc.duration_s = 0.05;
  tc.tenants = 3;
  tc.prompt_min = 4;
  tc.prompt_max = 12;
  tc.out_min = 2;
  tc.out_max = 8;
  tc.vocab = cfg.vocab;
  tc.seed = serve::ServeSeedFromEnv(42);
  const auto traffic = serve::GenerateOpenLoopTraffic(tc);

  std::printf(
      "serve load: %zu requests @ %.0f QPS offered, model v=%lld h=%lld "
      "L=%lld (seed %llu)\n",
      traffic.size(), tc.qps, static_cast<long long>(cfg.vocab),
      static_cast<long long>(cfg.hidden), static_cast<long long>(cfg.layers),
      static_cast<unsigned long long>(tc.seed));

  const RunResult cont =
      RunConfig("continuous", ckpt, traffic, kMaxRunning);
  const RunResult solo = RunConfig("batch_of_1", ckpt, traffic, 1);

  for (const RunResult* r : {&cont, &solo}) {
    std::printf(
        "  %-11s %5lld done in %7.1f virtual ms (%7.1f wall ms): %8.1f "
        "tok/s, ttft p50/p99 %6.1f/%6.1f ms, e2e p50/p99 %6.1f/%6.1f ms, "
        "kv util %.2f\n",
        r->name.c_str(), static_cast<long long>(r->summary.completed),
        r->summary.virtual_duration_s * 1e3, r->wall_ms,
        r->summary.decode_tokens_per_s(), r->summary.ttft_p50_ms,
        r->summary.ttft_p99_ms, r->summary.e2e_p50_ms,
        r->summary.e2e_p99_ms, r->kv_util);
  }

  bool ok = true;
  const auto want = static_cast<std::int64_t>(traffic.size());
  if (cont.summary.completed != want || solo.summary.completed != want) {
    std::printf("FAIL: not every request completed (%lld/%lld vs %lld)\n",
                static_cast<long long>(cont.summary.completed),
                static_cast<long long>(solo.summary.completed),
                static_cast<long long>(want));
    ok = false;
  }
  const double speedup = solo.summary.decode_tokens_per_s() > 0
                             ? cont.summary.decode_tokens_per_s() /
                                   solo.summary.decode_tokens_per_s()
                             : 0.0;
  if (cont.summary.decode_tokens_per_s() <=
      solo.summary.decode_tokens_per_s()) {
    std::printf("FAIL: continuous batching (%.1f tok/s) not faster than "
                "batch-of-1 (%.1f tok/s)\n",
                cont.summary.decode_tokens_per_s(),
                solo.summary.decode_tokens_per_s());
    ok = false;
  }
  std::printf("  continuous batching saturation speedup: %.2fx\n", speedup);

  // --- weight-precision sweep (wall clock, weight-bandwidth-bound) ---
  const model::GptConfig pcfg = PrecisionModel();
  std::printf(
      "precision sweep: v=%lld h=%lld L=%lld, %lld-slot decode batch, "
      "%d steps, best of %d\n",
      static_cast<long long>(pcfg.vocab), static_cast<long long>(pcfg.hidden),
      static_cast<long long>(pcfg.layers),
      static_cast<long long>(kPrecSlots), kPrecSteps, kPrecReps);
  std::vector<float> pfull;
  {
    model::GptModel m(pcfg, {});
    pfull.resize(static_cast<std::size_t>(m.layout().total_numel()));
    m.InitParameters(pfull, 0xBEEF5);
  }
  const PrecisionResult p32 = RunPrecision("fp32", pcfg, pfull);
  const PrecisionResult p16 = RunPrecision("fp16", pcfg, pfull);
  const PrecisionResult p8 = RunPrecision("int8", pcfg, pfull);
  const std::int64_t mis16 = GreedyMismatch(p32, p16);
  const std::int64_t mis8 = GreedyMismatch(p32, p8);
  for (const PrecisionResult* p : {&p32, &p16, &p8}) {
    std::printf("  %-5s %8.1f decode tok/s (wall), %6.1f MB weights\n",
                p->name.c_str(), p->tok_per_s, p->weight_mb);
  }
  const double fp16_speedup =
      p32.tok_per_s > 0 ? p16.tok_per_s / p32.tok_per_s : 0.0;
  const double int8_speedup =
      p32.tok_per_s > 0 ? p8.tok_per_s / p32.tok_per_s : 0.0;
  if (p16.tok_per_s <= p32.tok_per_s) {
    std::printf("FAIL: fp16 decode (%.1f tok/s) not faster than fp32 "
                "(%.1f tok/s)\n",
                p16.tok_per_s, p32.tok_per_s);
    ok = false;
  }
  std::printf(
      "  fp16 decode speedup: %.2fx, int8: %.2fx (informational); greedy "
      "mismatches vs fp32: fp16 %lld, int8 %lld of %zu\n",
      fp16_speedup, int8_speedup, static_cast<long long>(mis16),
      static_cast<long long>(mis8), p32.sampled.size());

  // --- prefix-sharing sweep (deterministic virtual-clock counts) ---
  serve::TrafficConfig ptc = tc;
  ptc.prefix_len = 12;  // per-tenant shared prefix, ~half the max prompt
  const auto ptraffic = serve::GenerateOpenLoopTraffic(ptc);
  const RunResult cold =
      RunConfig("prefix_cold", ckpt, ptraffic, kMaxRunning, false);
  const RunResult shared =
      RunConfig("prefix_shared", ckpt, ptraffic, kMaxRunning, true);
  std::remove(ckpt.c_str());
  std::printf(
      "prefix sweep: %zu requests, %lld-token tenant prefixes\n",
      ptraffic.size(), static_cast<long long>(ptc.prefix_len));
  for (const RunResult* r : {&cold, &shared}) {
    std::printf(
        "  %-13s prefill %6lld decode %6lld tokens, %4lld hits / %4lld "
        "misses, %6lld KV positions adopted\n",
        r->name.c_str(), static_cast<long long>(r->summary.prefill_tokens),
        static_cast<long long>(r->summary.decode_tokens),
        static_cast<long long>(r->summary.prefix_hits),
        static_cast<long long>(r->summary.prefix_misses),
        static_cast<long long>(r->summary.prefix_hit_tokens));
  }
  const auto pwant = static_cast<std::int64_t>(ptraffic.size());
  if (cold.summary.completed != pwant || shared.summary.completed != pwant) {
    std::printf("FAIL: prefix sweep dropped requests (%lld/%lld vs %lld)\n",
                static_cast<long long>(cold.summary.completed),
                static_cast<long long>(shared.summary.completed),
                static_cast<long long>(pwant));
    ok = false;
  }
  if (shared.summary.prefill_tokens >= cold.summary.prefill_tokens) {
    std::printf("FAIL: prefix cache did not cut prefill compute "
                "(%lld vs cold %lld tokens)\n",
                static_cast<long long>(shared.summary.prefill_tokens),
                static_cast<long long>(cold.summary.prefill_tokens));
    ok = false;
  }
  if (shared.summary.prefill_tokens + shared.summary.prefix_hit_tokens !=
          cold.summary.prefill_tokens ||
      shared.summary.decode_tokens != cold.summary.decode_tokens) {
    std::printf("FAIL: prefix accounting not conserved "
                "(%lld computed + %lld adopted != %lld cold prefill, or "
                "decode %lld != %lld)\n",
                static_cast<long long>(shared.summary.prefill_tokens),
                static_cast<long long>(shared.summary.prefix_hit_tokens),
                static_cast<long long>(cold.summary.prefill_tokens),
                static_cast<long long>(shared.summary.decode_tokens),
                static_cast<long long>(cold.summary.decode_tokens));
    ok = false;
  }
  const double saved_frac =
      cold.summary.prefill_tokens > 0
          ? static_cast<double>(shared.summary.prefix_hit_tokens) /
                static_cast<double>(cold.summary.prefill_tokens)
          : 0.0;
  std::printf("  prefix cache saved %.1f%% of prefill compute\n",
              saved_frac * 100.0);

  std::ofstream f(out_path, std::ios::trunc);
  f << "{\n  \"offered_qps\": " << tc.qps
    << ",\n  \"requests\": " << traffic.size()
    << ",\n  \"seed\": " << tc.seed << ",\n  \"continuous\": "
    << cont.summary.ToJson() << ",\n  \"continuous_wall_ms\": "
    << cont.wall_ms << ",\n  \"continuous_kv_util\": " << cont.kv_util
    << ",\n  \"batch_of_1\": " << solo.summary.ToJson()
    << ",\n  \"batch_of_1_wall_ms\": " << solo.wall_ms
    << ",\n  \"batch_of_1_kv_util\": " << solo.kv_util
    << ",\n  \"saturation_speedup\": " << speedup
    << ",\n  \"precision\": {"
    << "\n    \"fp32\": {\"decode_tok_per_s_wall\": " << p32.tok_per_s
    << ", \"weight_mb\": " << p32.weight_mb << "},"
    << "\n    \"fp16\": {\"decode_tok_per_s_wall\": " << p16.tok_per_s
    << ", \"weight_mb\": " << p16.weight_mb
    << ", \"greedy_mismatch\": " << mis16 << "},"
    << "\n    \"int8\": {\"decode_tok_per_s_wall\": " << p8.tok_per_s
    << ", \"weight_mb\": " << p8.weight_mb
    << ", \"greedy_mismatch\": " << mis8 << "}\n  }"
    << ",\n  \"fp16_decode_speedup\": " << fp16_speedup
    << ",\n  \"int8_decode_speedup\": " << int8_speedup
    << ",\n  \"prefix_len\": " << ptc.prefix_len
    << ",\n  \"prefix_cold\": " << cold.summary.ToJson()
    << ",\n  \"prefix_shared\": " << shared.summary.ToJson()
    << ",\n  \"prefix_prefill_saved_frac\": " << saved_frac
    << ",\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
  f.close();
  std::printf("wrote %s\n", out_path.c_str());

  return zero::bench::GateExit(ok);
}
