// Figure 1: per-device memory consumption of model states under the
// three ZeRO-DP stages, for the paper's example (Psi = 7.5B, Nd = 64,
// K = 12).
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "model/transformer_spec.hpp"

using namespace zero;
using model::PerDeviceModelStates;
using model::ZeroStage;

int main() {
  const double psi = 7.5e9;
  const int nd = 64;
  std::printf(
      "== Figure 1: per-device model-state memory (Psi=7.5B, Nd=%d, "
      "K=12) ==\n",
      nd);

  Table table({"stage", "params", "grads", "optimizer", "total",
               "paper total", "reduction vs DP"});
  const double baseline_total =
      PerDeviceModelStates(psi, ZeroStage::kNone, nd).total();
  const struct {
    const char* name;
    ZeroStage stage;
    const char* paper;
  } rows[] = {
      {"baseline DP", ZeroStage::kNone, "120 GB"},
      {"Pos (stage 1)", ZeroStage::kOs, "31.4 GB"},
      {"Pos+g (stage 2)", ZeroStage::kOsG, "16.6 GB"},
      {"Pos+g+p (stage 3)", ZeroStage::kOsGP, "1.9 GB"},
  };
  for (const auto& row : rows) {
    const auto m = PerDeviceModelStates(psi, row.stage, nd);
    char reduction[32];
    std::snprintf(reduction, sizeof(reduction), "%.3gx",
                  baseline_total / m.total());
    table.AddRow({row.name, FormatBytes(m.parameters),
                  FormatBytes(m.gradients), FormatBytes(m.optimizer),
                  FormatBytes(m.total()), row.paper, reduction});
  }
  table.Print(std::cout);
  std::printf(
      "\nPaper claims: 4x (Pos), 8x (Pos+g), Nd-fold (Pos+g+p) at large "
      "Nd.\n");
  return 0;
}
