// Figure 3: super-linear scalability of a 60B-parameter model from 64 to
// 400 GPUs (appendix Table 6 configs), plus the memory-model explanation:
// growing DP degree shrinks per-GPU model states, which admits larger
// batches, which raises arithmetic intensity.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/memory_model.hpp"
#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

using namespace zero;

int main() {
  sim::ClusterSpec cluster;
  std::printf("== Figure 3: 60B super-linear scalability ==\n\n");
  Table table({"GPUs", "batch/GPU", "TF/GPU", "aggregate PF", "speedup",
               "ideal", "states/GPU", "max batch (mem model)"});
  const auto& runs = sim::Figure3Runs();
  double base_aggregate = 0;
  for (const sim::PaperRun& run : runs) {
    sim::JobConfig job = run.ToJob();
    const sim::ThroughputEstimate t = sim::EstimateThroughput(cluster, job);
    const sim::MemoryBreakdown mem = sim::EstimateMemory(cluster, job);
    if (base_aggregate == 0) base_aggregate = t.aggregate_pflops;
    char tf[16], pf[16], sp[16], ideal[16];
    std::snprintf(tf, sizeof(tf), "%.1f", t.tflops_per_gpu);
    std::snprintf(pf, sizeof(pf), "%.2f", t.aggregate_pflops);
    std::snprintf(sp, sizeof(sp), "%.2fx",
                  t.aggregate_pflops / base_aggregate);
    std::snprintf(ideal, sizeof(ideal), "%.2fx",
                  static_cast<double>(run.gpus) / runs.front().gpus);
    table.AddRow({std::to_string(run.gpus),
                  std::to_string(run.batch_per_gpu), tf, pf, sp, ideal,
                  FormatBytes(mem.model_states()),
                  std::to_string(sim::MaxBatchPerGpu(cluster, job))});
  }
  table.Print(std::cout);
  std::printf(
      "\nSuper-linear: measured speedup exceeds the ideal GPU ratio "
      "because per-GPU\nthroughput itself rises with scale (paper Fig 3, "
      "Sec 10.3).\n");
  return 0;
}
