// Ablation (Sec 2.1): ZeRO-DP vs pipeline parallelism for fitting a 40B
// model on 64 devices — the memory/functionality trade-off the paper's
// related-work section argues qualitatively, quantified.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/memory_model.hpp"
#include "sim/pipeline_model.hpp"

using namespace zero;

int main() {
  sim::ClusterSpec cluster;
  model::TransformerSpec spec;
  spec.layers = 88;
  spec.hidden = 6144;
  spec.heads = 32;

  std::printf(
      "== Ablation: ZeRO-DP vs pipeline parallelism, 40B model, 64 "
      "devices ==\n\n");
  Table table({"system", "param state/dev", "activations/dev", "total/dev",
               "bubble", "sync-SGD?", "notes"});

  // ZeRO stage 3 over 64 DP ranks, checkpointing on.
  {
    sim::JobConfig job;
    job.model = spec;
    job.gpus = 64;
    job.mp = 1;
    job.stage = model::ZeroStage::kOsGP;
    job.batch_per_gpu = 1;
    const sim::MemoryBreakdown mem = sim::EstimateMemory(cluster, job);
    table.AddRow({"ZeRO Pos+g+p (Nd=64)", FormatBytes(mem.model_states()),
                  FormatBytes(mem.activations()), FormatBytes(mem.total()),
                  "0%", "yes", "1.5x DP comm volume"});
  }

  // G-Pipe, 64 stages; micro-batch count must scale with depth to hide
  // the bubble (paper: "requires a batch size proportional to number of
  // pipeline partitions").
  for (int micro : {64, 256}) {
    sim::PipelineConfig pp;
    pp.model = spec;
    pp.stages = 64;
    pp.micro_batches = micro;
    pp.micro_batch_size = 1;
    pp.scheme = sim::PipelineScheme::kGpipe;
    const sim::PipelineEstimate est = sim::EstimatePipeline(cluster, pp);
    char bubble[16];
    std::snprintf(bubble, sizeof(bubble), "%.0f%%",
                  est.bubble_fraction * 100);
    table.AddRow({"G-Pipe P=64, M=" + std::to_string(micro),
                  FormatBytes(est.param_state_bytes),
                  FormatBytes(est.activation_bytes),
                  FormatBytes(est.total_bytes), bubble, "yes",
                  micro >= 256 ? "needs batch ~4x depth" : "big bubble"});
  }

  // PipeDream 1F1B with weight stashing.
  {
    sim::PipelineConfig pp;
    pp.model = spec;
    pp.stages = 64;
    pp.micro_batches = 64;
    pp.micro_batch_size = 1;
    pp.scheme = sim::PipelineScheme::kPipeDream;
    const sim::PipelineEstimate est = sim::EstimatePipeline(cluster, pp);
    char versions[32];
    std::snprintf(versions, sizeof(versions), "%d weight versions",
                  static_cast<int>(est.weight_versions));
    table.AddRow({"PipeDream P=64", FormatBytes(est.param_state_bytes),
                  FormatBytes(est.activation_bytes),
                  FormatBytes(est.total_bytes), "0%", "NO", versions});
  }

  table.Print(std::cout);
  std::printf(
      "\nPaper Sec 2.1: G-Pipe hides its bubble only with batch "
      "proportional to depth\n(inflating activation memory); PipeDream "
      "trades the bubble for stale weight\ncopies and non-equivalent "
      "updates. ZeRO gets the memory win with synchronous\nSGD and no "
      "model surgery.\n");
  return 0;
}
