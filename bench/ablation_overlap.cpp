// Ablation (Sec 5.2): communication/computation overlap of the
// bucketized gradient reduction. Sweeps the cost model's dp_overlap
// factor for a small-model DP run (where gradient traffic is relatively
// large) to show how much of ZeRO's small-model throughput depends on
// hiding the reduction behind backward.
#include <cstdio>
#include <iostream>

#include "common/table.hpp"
#include "sim/cost_model.hpp"
#include "sim/paper_configs.hpp"

using namespace zero;

int main() {
  std::printf(
      "== Ablation: DP comm/compute overlap (1.5B and 8B ZeRO runs) "
      "==\n\n");
  Table table({"model", "overlap", "exposed dp s", "TF/GPU"});
  for (const sim::PaperRun& run : sim::Figure2Runs()) {
    if (!run.is_zero || run.psi_nominal > 8e9) continue;
    for (double overlap : {0.0, 0.4, 0.8, 1.0}) {
      sim::ClusterSpec cluster;
      cluster.dp_overlap = overlap;
      const sim::ThroughputEstimate t =
          sim::EstimateThroughput(cluster, run.ToJob());
      char ov[16], dp[16], tf[16];
      std::snprintf(ov, sizeof(ov), "%.0f%%", overlap * 100);
      std::snprintf(dp, sizeof(dp), "%.2f", t.dp_comm_s);
      std::snprintf(tf, sizeof(tf), "%.1f", t.tflops_per_gpu);
      table.AddRow({run.label, ov, dp, tf});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nThe bucketized reduce-at-owner schedule (Sec 5.2, 'overlap "
      "computation and\ncommunication') is what keeps small-model DP "
      "traffic off the critical path.\n");
  return 0;
}
