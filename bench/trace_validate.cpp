// Validates a Chrome trace_event JSON artifact with the repo's strict
// parser — the CI smoke gate runs this over the trace the stage-3 run
// emits, and it works on any ZERO_TRACE output.
//
// Usage: trace_validate <trace.json> [more.json...]
#include <cstdio>

#include "obs/chrome_trace.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: trace_validate <trace.json>...\n");
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (zero::obs::ValidateChromeTraceFile(argv[i], &error)) {
      std::printf("%s: valid Chrome trace\n", argv[i]);
    } else {
      std::printf("%s: INVALID: %s\n", argv[i], error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
