// Validates observability artifacts with the repo's strict parsers —
// the CI smoke gates run this over the trace / merged timeline the
// stage-3 run emits and over the flight-recorder bundle a faulted run
// leaves behind. Works on any ZERO_TRACE / ZERO_POSTMORTEM output.
//
// Usage: trace_validate <trace.json> [more.json...]
//        trace_validate --postmortem <bundle-dir> [more dirs...]
#include <cstdio>
#include <cstring>

#include "obs/chrome_trace.hpp"
#include "obs/flight_recorder.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: trace_validate <trace.json>...\n"
                 "       trace_validate --postmortem <bundle-dir>...\n");
    return 2;
  }
  int failures = 0;
  if (std::strcmp(argv[1], "--postmortem") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: trace_validate --postmortem <dir>...\n");
      return 2;
    }
    for (int i = 2; i < argc; ++i) {
      std::string error;
      if (zero::obs::ValidatePostmortemBundle(argv[i], &error)) {
        std::printf("%s: valid post-mortem bundle\n", argv[i]);
      } else {
        std::printf("%s: INVALID: %s\n", argv[i], error.c_str());
        ++failures;
      }
    }
    return failures == 0 ? 0 : 1;
  }
  for (int i = 1; i < argc; ++i) {
    std::string error;
    if (zero::obs::ValidateChromeTraceFile(argv[i], &error)) {
      std::printf("%s: valid Chrome trace\n", argv[i]);
    } else {
      std::printf("%s: INVALID: %s\n", argv[i], error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
