// Section 7: communication-volume analysis of ZeRO-DP, *measured* on the
// real runtime — per-rank bytes moved per training step under each
// stage, against the paper's 2Psi / 2Psi / 2Psi / 3Psi accounting —
// plus the ZeRO++ (arXiv:2306.10209) compression ledger: stage 3 with
// qwZ + hpZ + qgZ must move >= kMinReduction x fewer bytes over the DP
// fabric than exact stage 3.
//
// Usage: comm_volume_analysis [BENCH_zeropp.json]
//
// With an output path the ZeRO++ section is gated (exit 1 if the
// full-stack reduction misses the floor; ZERO_BENCH_RELAX=1 downgrades
// to a warning) and the measurements land in the JSON.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <vector>

#include "gate.hpp"
#include "comm/world.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"

using namespace zero;

namespace {

// DP-fabric bytes must shrink by at least this factor under the full
// qwZ + hpZ + qgZ stack (observed ~4.3x at Nd = 4, 2 ranks/node:
// forward gathers 2 B -> ~1.03 B/elem, backward gathers leave the
// fabric entirely, gradients drop to the quantized inter-node shard).
constexpr double kMinReduction = 3.0;

model::Batch MakeBatch(int rank, int step) {
  model::Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 13 + step + i);
    b.targets.push_back(0);
  }
  return b;
}

struct ZeroppConfig {
  const char* name;
  bool qwz = false;
  bool hpz = false;
  bool qgz = false;
};

struct ZeroppResult {
  const char* name;
  std::uint64_t dp_sent = 0;     // per-rank DP-fabric bytes, steady step
  std::uint64_t local_sent = 0;  // per-rank intra-node bytes, steady step
};

ZeroppResult MeasureZeropp(const ZeroppConfig& zc, std::int64_t psi, int nd,
                           int ranks_per_node) {
  ZeroppResult out;
  out.name = zc.name;
  std::mutex mu;
  comm::World world(nd);
  world.Run([&](comm::RankContext& ctx) {
    comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
    model::QuadModel m(psi, 16);
    core::EngineConfig cfg;
    cfg.stage = model::ZeroStage::kOsGP;
    cfg.fp16 = true;
    cfg.prefetch_lookahead = 2;
    cfg.qwz = zc.qwz;
    cfg.hpz = zc.hpz;
    cfg.qgz = zc.qgz;
    cfg.ranks_per_node = ranks_per_node;
    core::ZeroDpEngine engine(cfg, m, dp, nullptr, 1);
    // Step 0 records the prefetch schedule, step 1 replays it — the
    // steady state every later step repeats.
    (void)engine.TrainStep(MakeBatch(ctx.rank, 0));
    (void)engine.TrainStep(MakeBatch(ctx.rank, 1));
    comm::CommDelta dp_delta(dp);
    const comm::CommStats local_before =
        engine.local_comm() != nullptr ? engine.local_comm()->stats()
                                       : comm::CommStats{};
    (void)engine.TrainStep(MakeBatch(ctx.rank, 2));
    if (ctx.rank == 0) {
      std::lock_guard<std::mutex> lock(mu);
      out.dp_sent = dp_delta.Delta().bytes_sent;
      if (engine.local_comm() != nullptr) {
        out.local_sent =
            (engine.local_comm()->stats() - local_before).bytes_sent;
      }
    }
  });
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::int64_t psi = 1 << 16;
  const double psi_bytes = static_cast<double>(psi) * 2;  // fp16

  std::printf(
      "== Sec 7: measured per-rank DP communication volume per step "
      "(Psi = %lld fp16 elements) ==\n\n",
      static_cast<long long>(psi));
  Table table({"stage", "Nd", "sent/rank", "x Psi", "paper"});

  const struct {
    model::ZeroStage stage;
    const char* name;
    const char* paper;
  } stages[] = {
      {model::ZeroStage::kNone, "baseline DP (all-reduce)", "2 Psi"},
      {model::ZeroStage::kOs, "Pos (stage 1)", "2 Psi"},
      {model::ZeroStage::kOsG, "Pos+g (stage 2)", "2 Psi"},
      {model::ZeroStage::kOsGP, "Pos+g+p (stage 3)", "3 Psi"},
  };

  for (const auto& s : stages) {
    for (int nd : {2, 4, 8}) {
      std::uint64_t sent = 0;
      std::mutex mu;
      comm::World world(nd);
      world.Run([&](comm::RankContext& ctx) {
        comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
        model::QuadModel m(psi, 16);
        core::EngineConfig cfg;
        cfg.stage = s.stage;
        cfg.fp16 = true;
        core::ZeroDpEngine engine(cfg, m, dp, nullptr, 1);
        (void)engine.TrainStep(MakeBatch(ctx.rank, 0));  // warm-up
        comm::CommDelta step(dp);
        (void)engine.TrainStep(MakeBatch(ctx.rank, 1));
        if (ctx.rank == 0) {
          std::lock_guard<std::mutex> lock(mu);
          sent = step.Delta().bytes_sent;
        }
      });
      char factor[16];
      std::snprintf(factor, sizeof(factor), "%.2f",
                    static_cast<double>(sent) / psi_bytes);
      table.AddRow({s.name, std::to_string(nd),
                    FormatBytes(static_cast<double>(sent)), factor,
                    s.paper});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nRing collectives move (Nd-1)/Nd of the nominal volume, so the "
      "measured factor\napproaches the paper's bound from below as Nd "
      "grows. Stage 3's extra ~1 Psi is\nthe per-unit parameter "
      "broadcast of Sec 7.2.2.\n");

  // ---- ZeRO++ compression ledger (stage 3, Nd = 4, 2 ranks/node) ----
  const int nd = 4;
  const int rpn = 2;
  std::printf(
      "\n== ZeRO++: per-rank stage-3 bytes per steady step (Nd = %d, "
      "%d ranks/node) ==\n\n",
      nd, rpn);
  const ZeroppConfig configs[] = {
      {"exact stage 3"},
      {"qwZ", true, false, false},
      {"qwZ + hpZ", true, true, false},
      {"qwZ + hpZ + qgZ", true, true, true},
  };
  std::vector<ZeroppResult> results;
  Table ztable({"config", "DP fabric/rank", "intra-node/rank", "reduction"});
  for (const ZeroppConfig& zc : configs) {
    results.push_back(MeasureZeropp(zc, psi, nd, rpn));
    const ZeroppResult& r = results.back();
    char red[16];
    std::snprintf(red, sizeof(red), "%.2fx",
                  static_cast<double>(results.front().dp_sent) /
                      static_cast<double>(r.dp_sent));
    ztable.AddRow({r.name, FormatBytes(static_cast<double>(r.dp_sent)),
                   FormatBytes(static_cast<double>(r.local_sent)), red});
  }
  ztable.Print(std::cout);

  const double reduction = static_cast<double>(results.front().dp_sent) /
                           static_cast<double>(results.back().dp_sent);
  std::printf(
      "\nqwZ compresses the forward gathers, hpZ moves the backward "
      "gathers onto the\nintra-node wire, qgZ sends only the quantized "
      "inter-node gradient shards.\nfull-stack DP-fabric reduction: "
      "%.2fx (gate: >= %.1fx)\n",
      reduction, kMinReduction);

  bool ok = true;
  if (reduction < kMinReduction) {
    std::printf("FAIL: reduction %.2fx below the %.1fx gate\n", reduction,
                kMinReduction);
    ok = false;
  }
  // Monotonicity: each added technique must not add DP-fabric bytes.
  for (std::size_t i = 1; i < results.size(); ++i) {
    if (results[i].dp_sent > results[i - 1].dp_sent) {
      std::printf("FAIL: %s moves more DP bytes than %s\n", results[i].name,
                  results[i - 1].name);
      ok = false;
    }
  }

  if (argc > 1) {
    std::ofstream f(argv[1], std::ios::trunc);
    f << "{\n  \"psi\": " << psi << ",\n  \"nd\": " << nd
      << ",\n  \"ranks_per_node\": " << rpn << ",\n  \"configs\": [\n";
    for (std::size_t i = 0; i < results.size(); ++i) {
      const ZeroppResult& r = results[i];
      f << "    {\"name\": \"" << r.name
        << "\", \"dp_bytes_per_step\": " << r.dp_sent
        << ", \"local_bytes_per_step\": " << r.local_sent << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
    }
    f << "  ],\n  \"reduction\": " << reduction
      << ",\n  \"min_reduction\": " << kMinReduction
      << ",\n  \"ok\": " << (ok ? "true" : "false") << "\n}\n";
    f.close();
    std::printf("wrote %s\n", argv[1]);
  }

  return zero::bench::GateExit(ok);
}
