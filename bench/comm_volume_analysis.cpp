// Section 7: communication-volume analysis of ZeRO-DP, *measured* on the
// real runtime — per-rank bytes moved per training step under each
// stage, against the paper's 2Psi / 2Psi / 2Psi / 3Psi accounting.
#include <cstdio>
#include <iostream>
#include <mutex>

#include "comm/world.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "core/dp_engine.hpp"
#include "model/quad_model.hpp"

using namespace zero;

namespace {

model::Batch MakeBatch(int rank, int step) {
  model::Batch b;
  b.rows = 1;
  b.cols = 4;
  for (int i = 0; i < 4; ++i) {
    b.inputs.push_back(rank * 13 + step + i);
    b.targets.push_back(0);
  }
  return b;
}

}  // namespace

int main() {
  const std::int64_t psi = 1 << 16;
  const double psi_bytes = static_cast<double>(psi) * 2;  // fp16

  std::printf(
      "== Sec 7: measured per-rank DP communication volume per step "
      "(Psi = %lld fp16 elements) ==\n\n",
      static_cast<long long>(psi));
  Table table({"stage", "Nd", "sent/rank", "x Psi", "paper"});

  const struct {
    model::ZeroStage stage;
    const char* name;
    const char* paper;
  } stages[] = {
      {model::ZeroStage::kNone, "baseline DP (all-reduce)", "2 Psi"},
      {model::ZeroStage::kOs, "Pos (stage 1)", "2 Psi"},
      {model::ZeroStage::kOsG, "Pos+g (stage 2)", "2 Psi"},
      {model::ZeroStage::kOsGP, "Pos+g+p (stage 3)", "3 Psi"},
  };

  for (const auto& s : stages) {
    for (int nd : {2, 4, 8}) {
      std::uint64_t sent = 0;
      std::mutex mu;
      comm::World world(nd);
      world.Run([&](comm::RankContext& ctx) {
        comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
        model::QuadModel m(psi, 16);
        core::EngineConfig cfg;
        cfg.stage = s.stage;
        cfg.fp16 = true;
        core::ZeroDpEngine engine(cfg, m, dp, nullptr, 1);
        (void)engine.TrainStep(MakeBatch(ctx.rank, 0));  // warm-up
        comm::CommDelta step(dp);
        (void)engine.TrainStep(MakeBatch(ctx.rank, 1));
        if (ctx.rank == 0) {
          std::lock_guard<std::mutex> lock(mu);
          sent = step.Delta().bytes_sent;
        }
      });
      char factor[16];
      std::snprintf(factor, sizeof(factor), "%.2f",
                    static_cast<double>(sent) / psi_bytes);
      table.AddRow({s.name, std::to_string(nd),
                    FormatBytes(static_cast<double>(sent)), factor,
                    s.paper});
    }
  }
  table.Print(std::cout);
  std::printf(
      "\nRing collectives move (Nd-1)/Nd of the nominal volume, so the "
      "measured factor\napproaches the paper's bound from below as Nd "
      "grows. Stage 3's extra ~1 Psi is\nthe per-unit parameter "
      "broadcast of Sec 7.2.2.\n");
  return 0;
}
