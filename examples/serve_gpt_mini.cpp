// Serving run: a GPT-mini checkpoint behind the continuous-batching
// inference engine, under seeded open-loop traffic.
//
//   serve_gpt_mini [checkpoint] [qps] [duration_s] [mp]
//
// The model config matches train_gpt_mini (vocab 48, seq 16, hidden 32,
// 3 layers, 4 heads), so a checkpoint written by
//   ZERO_CKPT=/tmp/gpt_mini.bin ./train_gpt_mini 2 4 1 20
// serves directly. Without a checkpoint argument (or with "-") the
// example seeds fresh weights — useful for trying the scheduler alone.
//
// ZERO_SERVE_SEED reseeds the traffic (arrivals, tenants, prompts);
// the same seed replays the identical run. ZERO_SERVE_WEIGHTS selects
// the serving weight precision (fp32 default, fp16, int8) behind the
// dispatched GEMM backend; ZERO_SERVE_PREFIX_CACHE=1 turns on the
// copy-on-write prefix KV cache and gives each tenant a shared
// system-prompt prefix so the index actually gets hits. With
// ZERO_TRACE set the run records serve/step, serve/plan, serve/commit
// and serve/decode spans into a Chrome trace. With mp > 1 the engine
// shards every projection across `mp` ranks Megatron-style and each
// rank runs the same serve loop in lockstep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>

#include "comm/communicator.hpp"
#include "comm/world.hpp"
#include "obs/chrome_trace.hpp"
#include "obs/telemetry.hpp"
#include "obs/trace.hpp"
#include "serve/engine.hpp"
#include "serve/server.hpp"
#include "serve/traffic_gen.hpp"

int main(int argc, char** argv) {
  using namespace zero;

  const char* ckpt = argc > 1 ? argv[1] : "-";
  const double qps = argc > 2 ? std::atof(argv[2]) : 2000.0;
  const double duration_s = argc > 3 ? std::atof(argv[3]) : 0.1;
  const int mp = argc > 4 ? std::atoi(argv[4]) : 1;

  serve::InferenceOptions io;
  io.model.vocab = 48;
  io.model.seq = 16;
  io.model.hidden = 32;
  io.model.layers = 3;
  io.model.heads = 4;
  io.kv_block_tokens = 8;
  io.kv_max_blocks = 64;
  if (const char* w = std::getenv("ZERO_SERVE_WEIGHTS");
      w != nullptr && *w != '\0') {
    io.weights = w;
  }
  const char* pc = std::getenv("ZERO_SERVE_PREFIX_CACHE");
  const bool prefix_cache = pc != nullptr && *pc != '\0' && *pc != '0';
  io.prefix_cache = prefix_cache;

  serve::TrafficConfig tc;
  tc.qps = qps;
  tc.duration_s = duration_s;
  tc.tenants = 2;
  tc.prompt_min = 2;
  tc.prompt_max = 8;
  tc.out_min = 1;
  tc.out_max = 6;
  tc.vocab = io.model.vocab;
  tc.seed = serve::ServeSeedFromEnv(42);
  // Shared per-tenant system prompts make the prefix index earn hits.
  if (prefix_cache) tc.prefix_len = 4;
  const auto traffic = serve::GenerateOpenLoopTraffic(tc);

  serve::ServeOptions so;
  so.scheduler.max_running = 8;
  so.scheduler.max_step_tokens = 32;
  so.scheduler.max_seq = io.model.seq;

  obs::TelemetryOptions telemetry = obs::TelemetryOptions::FromEnv();
  telemetry.ResolvePaths();
  if (telemetry.enabled) {
    obs::SetTraceBufferCapacity(telemetry.trace_buffer_events);
    obs::ResetTrace();
    obs::EnableTracing();
  }

  const bool from_ckpt = std::strcmp(ckpt, "-") != 0;
  std::printf("serving GPT-mini: %s, %zu requests @ %.0f QPS, mp=%d, "
              "seed %llu, weights %s, prefix cache %s\n",
              from_ckpt ? ckpt : "(fresh weights)", traffic.size(), qps,
              mp, static_cast<unsigned long long>(tc.seed),
              io.weights.c_str(), prefix_cache ? "on" : "off");

  auto load = [&](serve::InferenceEngine& engine) {
    if (from_ckpt) {
      engine.LoadCheckpointFile(ckpt);
    } else {
      model::GptModel m(io.model, {});
      std::vector<float> full(
          static_cast<std::size_t>(m.layout().total_numel()));
      m.InitParameters(full, 42);
      engine.LoadFullWeights(full);
    }
  };

  serve::ServeSummary summary;
  if (mp <= 1) {
    serve::InferenceEngine engine(io, {});
    load(engine);
    summary = serve::ServeLoop(engine, traffic, so);
  } else {
    // Every rank runs the same deterministic loop on the same traffic;
    // greedy sampling reads MP-all-reduced logits so the ranks stay in
    // lockstep. Rank 0's summary is reported (all are identical).
    std::mutex mu;
    comm::World world(mp);
    world.Run([&](comm::RankContext& ctx) {
      obs::SetThreadTraceName("serve-rank" + std::to_string(ctx.rank));
      comm::Communicator mpc = comm::Communicator::WholeWorld(ctx);
      model::GptSession session;
      session.mp = &mpc;
      serve::InferenceEngine engine(io, session);
      load(engine);
      serve::ServeSummary s = serve::ServeLoop(engine, traffic, so);
      if (ctx.rank == 0) {
        std::lock_guard<std::mutex> lock(mu);
        summary = std::move(s);
      }
    });
  }

  std::printf(
      "  offered %lld, admitted %lld, completed %lld "
      "(rejected: %lld throttled, %lld queue-full, %lld latency)\n",
      static_cast<long long>(summary.offered),
      static_cast<long long>(summary.admitted),
      static_cast<long long>(summary.completed),
      static_cast<long long>(summary.rejected_throttled),
      static_cast<long long>(summary.rejected_queue),
      static_cast<long long>(summary.rejected_latency));
  std::printf("  %lld steps packed %lld tokens (%lld prefill, %lld "
              "decode), %lld evictions\n",
              static_cast<long long>(summary.steps),
              static_cast<long long>(summary.packed_tokens),
              static_cast<long long>(summary.prefill_tokens),
              static_cast<long long>(summary.decode_tokens),
              static_cast<long long>(summary.evictions));
  if (prefix_cache) {
    std::printf("  prefix cache: %lld hits / %lld misses, %lld KV "
                "positions adopted\n",
                static_cast<long long>(summary.prefix_hits),
                static_cast<long long>(summary.prefix_misses),
                static_cast<long long>(summary.prefix_hit_tokens));
  }
  std::printf("  throughput %.1f tok/s, ttft p50/p99 %.1f/%.1f ms, "
              "e2e p50/p99 %.1f/%.1f ms, kv peak %.0f/%.0f blocks\n",
              summary.decode_tokens_per_s(), summary.ttft_p50_ms,
              summary.ttft_p99_ms, summary.e2e_p50_ms, summary.e2e_p99_ms,
              summary.kv_blocks_peak, summary.kv_blocks_total);

  if (telemetry.enabled) {
    obs::DisableTracing();
    if (!telemetry.trace_path.empty()) {
      obs::WriteChromeTraceFile(telemetry.trace_path);
      std::printf("\ntrace: %s (load in ui.perfetto.dev)\n",
                  telemetry.trace_path.c_str());
    }
    if (!telemetry.report_path.empty()) {
      std::ofstream f(telemetry.report_path, std::ios::trunc);
      f << summary.ToJson();
      std::printf("report: %s\n", telemetry.report_path.c_str());
    }
  } else {
    std::printf("\n(set ZERO_TRACE=/tmp/serve.json to record a Chrome "
                "trace; ZERO_SERVE_SEED replays a different traffic "
                "sample)\n");
  }
  return summary.completed > 0 ? 0 : 1;
}
