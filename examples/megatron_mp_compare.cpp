// ZeRO composed with Megatron-style model parallelism (Sec 1's "ZeRO and
// MP" discussion): the same global model trained three ways —
//   1. MP only (the Megatron baseline),
//   2. ZeRO-DP only,
//   3. MP x ZeRO-DP with Pa partitioned activation checkpoints,
// on the same total number of simulated devices, comparing losses,
// per-rank memory and communication volume.
#include <cstdio>

#include "core/trainer.hpp"

int main() {
  using namespace zero;

  core::TrainOptions base;
  base.model.vocab = 48;
  base.model.seq = 16;
  base.model.hidden = 32;
  base.model.layers = 2;
  base.model.heads = 4;
  base.batch_per_rank = 4;
  base.steps = 8;
  base.zero_r.activation_checkpointing = true;

  struct Scenario {
    const char* name;
    int dp, mp;
    model::ZeroStage stage;
    bool pa;
  };
  const Scenario scenarios[] = {
      {"Megatron MP only (mp=4)", 1, 4, model::ZeroStage::kNone, false},
      {"ZeRO-DP only (dp=4, Pos+g)", 4, 1, model::ZeroStage::kOsG, false},
      {"MP x ZeRO (mp=2, dp=2, +Pa)", 2, 2, model::ZeroStage::kOsG, true},
  };

  std::printf("4 simulated devices, same model, three parallel layouts:\n\n");
  for (const Scenario& s : scenarios) {
    core::TrainOptions opt = base;
    opt.cluster.dp_degree = s.dp;
    opt.cluster.mp_degree = s.mp;
    opt.engine.stage = s.stage;
    opt.zero_r.partition_activations = s.pa;
    // The batch is per DP column; keep the global batch at 16 sequences
    // regardless of layout.
    opt.batch_per_rank = 16 / s.dp;

    const core::TrainResult result = core::TrainGpt(opt);
    if (result.oom) {
      std::printf("%-30s OOM: %s\n", s.name, result.oom_message.c_str());
      continue;
    }
    if (result.failed) {
      std::printf("%-30s killed by fault: %s\n", s.name,
                  result.failure_message.c_str());
      continue;
    }
    const core::RankMetrics& r0 = result.ranks[0];
    std::printf("%-30s loss %.4f -> %.4f\n", s.name, result.losses.front(),
                result.losses.back());
    std::printf(
        "%-30s states/rank %.1f KB, peak cached %.1f KB, DP sent %.1f KB, "
        "MP sent %.1f KB\n\n",
        "", r0.model_states.total() / 1e3,
        static_cast<double>(r0.cache.peak_cached) / 1e3,
        static_cast<double>(r0.dp_comm.bytes_sent) / 1e3,
        static_cast<double>(r0.mp_comm.bytes_sent) / 1e3);
  }
  std::printf(
      "Note the trade: MP spends bandwidth every layer; ZeRO-DP spends "
      "it once per step.\nCombining them (paper Sec 1) divides memory "
      "multiplicatively: Nd x Nm.\n");
  return 0;
}
