// Quickstart: train a GPT model with ZeRO in ~20 lines.
//
// The paper's usability pitch (Sec 10.4) is that ZeRO needs no model
// refactoring — pick a stage, wrap the model, train. This example trains
// the same model under baseline data parallelism and under ZeRO stage 2,
// and prints the loss curves plus the measured per-rank model-state
// memory, demonstrating identical training at a fraction of the memory.
#include <cstdio>

#include "core/trainer.hpp"

int main() {
  using namespace zero;

  core::TrainOptions options;
  options.model.vocab = 64;       // synthetic character-level vocabulary
  options.model.seq = 32;
  options.model.hidden = 32;
  options.model.layers = 2;
  options.model.heads = 4;
  options.cluster.dp_degree = 4;  // four simulated devices
  options.batch_per_rank = 2;
  options.steps = 10;

  for (model::ZeroStage stage :
       {model::ZeroStage::kNone, model::ZeroStage::kOsG}) {
    options.engine.stage = stage;
    const core::TrainResult result = core::TrainGpt(options);
    if (result.oom) {
      std::printf("OOM: %s\n", result.oom_message.c_str());
      return 1;
    }
    if (result.failed) {
      std::printf("run killed by fault: %s\n", result.failure_message.c_str());
      return 1;
    }
    std::printf("%s:\n",
                stage == model::ZeroStage::kNone ? "baseline DP"
                                                 : "ZeRO stage 2 (Pos+g)");
    std::printf("  loss: %.4f -> %.4f over %d steps\n", result.losses.front(),
                result.losses.back(), options.steps);
    std::printf("  model states per rank: %.1f KB\n",
                result.ranks[0].model_states.total() / 1e3);
  }
  std::printf(
      "\nSame trajectory, ~4x less state per rank at DP=4 — that is "
      "ZeRO.\n");
  return 0;
}
