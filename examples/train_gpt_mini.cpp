// Full training run: a GPT-mini language model on a synthetic corpus
// with every ZeRO knob exposed on the command line.
//
//   train_gpt_mini [stage 0-3] [dp] [mp] [steps]
//
// Prints a loss curve, final perplexity, and the per-rank memory and
// communication report that a real ZeRO user would read after a run.
// With ZERO_TRACE=/path/trace.json set (or engine.telemetry filled in),
// the run also emits a Chrome trace, a per-step metrics dump, and a
// step report validating the paper's memory/communication equations
// against the measured run.
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "core/trainer.hpp"
#include "obs/telemetry.hpp"

int main(int argc, char** argv) {
  using namespace zero;

  const int stage_arg = argc > 1 ? std::atoi(argv[1]) : 2;
  const int dp = argc > 2 ? std::atoi(argv[2]) : 4;
  const int mp = argc > 3 ? std::atoi(argv[3]) : 1;
  const int steps = argc > 4 ? std::atoi(argv[4]) : 60;

  core::TrainOptions options;
  options.model.vocab = 48;
  options.model.seq = 16;
  options.model.hidden = 32;
  options.model.layers = 3;
  options.model.heads = 4;
  options.engine.stage = static_cast<model::ZeroStage>(stage_arg);
  options.engine.adam.lr = 3e-3f;
  options.cluster.dp_degree = dp;
  options.cluster.mp_degree = mp;
  options.batch_per_rank = 4;
  options.steps = steps;
  options.corpus_branching = 2;
  options.zero_r.activation_checkpointing = true;
  options.zero_r.partition_activations = mp > 1;
  // ZERO_CKPT=/path/ckpt.bin writes a full-state checkpoint at the end
  // of the run (and every 10 steps) that serve_gpt_mini loads directly.
  if (const char* ckpt = std::getenv("ZERO_CKPT");
      ckpt != nullptr && ckpt[0] != '\0') {
    options.engine.checkpoint_path = ckpt;
    options.engine.checkpoint_every_n_steps = steps < 10 ? steps : 10;
  }

  std::printf("training GPT-mini: stage %d, dp=%d, mp=%d, %d steps\n",
              stage_arg, dp, mp, steps);
  const core::TrainResult result = core::TrainGpt(options);
  if (result.oom) {
    std::printf("OOM: %s\n", result.oom_message.c_str());
    return 1;
  }
  if (result.failed) {
    std::printf("run killed by fault: %s\n", result.failure_message.c_str());
    if (!result.postmortem_dir.empty()) {
      std::printf("post-mortem bundle: %s (see manifest.json)\n",
                  result.postmortem_dir.c_str());
    }
    return 1;
  }

  for (std::size_t s = 0; s < result.losses.size(); s += 10) {
    std::printf("  step %3zu  loss %.4f  ppl %.2f\n", s, result.losses[s],
                std::exp(result.losses[s]));
  }
  std::printf("  final    loss %.4f  ppl %.2f\n", result.losses.back(),
              std::exp(result.losses.back()));

  const core::RankMetrics& r0 = result.ranks[0];
  std::printf("\nper-rank report (rank 0 of %zu):\n", result.ranks.size());
  std::printf("  model states: params %.1f KB, grads %.1f KB, optimizer %.1f KB\n",
              r0.model_states.param_bytes / 1e3,
              r0.model_states.grad_bytes / 1e3,
              r0.model_states.optimizer_bytes / 1e3);
  std::printf("  peak cached device memory: %.1f KB\n",
              static_cast<double>(r0.cache.peak_cached) / 1e3);
  std::printf("  DP traffic: %.1f KB sent, MP traffic: %.1f KB sent\n",
              static_cast<double>(r0.dp_comm.bytes_sent) / 1e3,
              static_cast<double>(r0.mp_comm.bytes_sent) / 1e3);

  obs::TelemetryOptions telemetry = options.engine.telemetry.enabled
                                        ? options.engine.telemetry
                                        : obs::TelemetryOptions::FromEnv();
  if (telemetry.enabled) {
    telemetry.ResolvePaths();
    std::printf("\ntelemetry artifacts:\n");
    std::printf("  trace   %s  (load in ui.perfetto.dev)\n",
                telemetry.trace_path.c_str());
    std::printf("  metrics %s\n", telemetry.metrics_path.c_str());
    std::printf("  report  %s\n", telemetry.report_path.c_str());
    std::printf("  merged  %s  (cross-rank timeline, multi-pid)\n",
                telemetry.timeline_path.c_str());
    if (result.report.has_value()) {
      std::printf("  %s\n", result.report->Summary().c_str());
      const obs::StepReportInputs& in = result.report->inputs;
      if (in.anatomy_steps > 0 && in.straggler_rank >= 0) {
        std::printf("  anatomy: straggler rank %d on %d/%d measured steps\n",
                    in.straggler_rank, in.straggler_steps, in.anatomy_steps);
      }
    }
  } else {
    std::printf("\n(set ZERO_TRACE=/tmp/trace.json to record a Chrome trace "
                "and paper-equation report)\n");
  }
  return 0;
}
