// Trillion-parameter planner: given a model size and a cluster, report
// which ZeRO stage / MP combination fits and what throughput to expect —
// the Sec 9 "can I run this?" calculation as a CLI.
//
//   trillion_planner [params-in-billions] [gpus] [gpu-memory-GB]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "sim/auto_stage.hpp"
#include "sim/paper_configs.hpp"
#include "sim/search.hpp"

int main(int argc, char** argv) {
  using namespace zero;
  const double psi_b = argc > 1 ? std::atof(argv[1]) : 1000.0;  // 1T default
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 1024;
  const double mem_gb = argc > 3 ? std::atof(argv[3]) : 32.0;

  sim::ClusterSpec cluster;
  cluster.device_memory = mem_gb * 1e9;

  // Pick a model shape in the paper's family for this parameter count.
  sim::JobConfig job;
  job.model.hidden = psi_b >= 300 ? 16384 : (psi_b >= 20 ? 8192 : 4096);
  job.model.heads = job.model.hidden / 128;
  job.model.layers = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(
             psi_b * 1e9 /
             (12.0 * static_cast<double>(job.model.hidden * job.model.hidden))));
  job.gpus = gpus;

  std::printf(
      "== planning %s parameters on %d GPUs with %.0f GB each ==\n"
      "model shape: %lld layers x %lld hidden (%s params)\n\n",
      FormatCount(psi_b * 1e9).c_str(), gpus, mem_gb,
      static_cast<long long>(job.model.layers),
      static_cast<long long>(job.model.hidden),
      FormatCount(static_cast<double>(job.psi())).c_str());

  Table table({"stage", "MP", "DP", "states/GPU", "total/GPU", "max batch",
               "TF/GPU", "verdict"});
  for (model::ZeroStage stage :
       {model::ZeroStage::kNone, model::ZeroStage::kOs,
        model::ZeroStage::kOsG, model::ZeroStage::kOsGP}) {
    for (int mp : {1, 16}) {
      if (gpus % mp != 0) continue;
      sim::JobConfig candidate = job;
      candidate.stage = stage;
      candidate.mp = mp;
      candidate.pa = mp > 1;
      candidate.pa_cpu = false;
      candidate.batch_per_gpu = 1;
      const sim::MemoryBreakdown mem =
          sim::EstimateMemory(cluster, candidate);
      const std::int64_t batch = sim::MaxBatchPerGpu(cluster, candidate);
      std::string tf = "-";
      std::string verdict = "does not fit";
      if (batch > 0) {
        candidate.batch_per_gpu = batch;
        const sim::ThroughputEstimate t =
            sim::EstimateThroughput(cluster, candidate);
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.1f", t.tflops_per_gpu);
        tf = buf;
        verdict = "FITS";
      }
      const char* stage_name[] = {"baseline", "Pos", "Pos+g", "Pos+g+p"};
      table.AddRow({stage_name[static_cast<int>(stage)], std::to_string(mp),
                    std::to_string(gpus / mp),
                    FormatBytes(mem.model_states()),
                    FormatBytes(mem.total()),
                    batch > 0 ? std::to_string(batch) : "-", tf, verdict});
    }
  }
  table.Print(std::cout);

  // Automatic recommendation: lowest stage that fits at MP 1.
  sim::JobConfig probe = job;
  probe.mp = 1;
  probe.batch_per_gpu = 1;
  const sim::StageRecommendation rec = sim::RecommendStage(cluster, probe);
  const char* stage_name[] = {"baseline DP", "Pos", "Pos+g", "Pos+g+p"};
  if (rec.fits) {
    std::printf("\nrecommendation: %s (lowest stage that fits at MP=1; "
                "%s/GPU)\n",
                stage_name[static_cast<int>(rec.stage)],
                FormatBytes(rec.memory.total()).c_str());
  } else {
    std::printf(
        "\nrecommendation: does not fit even at Pos+g+p (needs %s/GPU) — "
        "add MP, GPUs, or Pa+cpu\n",
        FormatBytes(rec.memory.total()).c_str());
  }
  std::printf(
      "(Sec 9: 1T fits on 1024 GPUs only with Pos+g+p, or Pos+g+p "
      "combined with MP.)\n");
  return 0;
}
