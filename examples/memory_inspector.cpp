// Memory inspector: watch ZeRO-R work at the allocator level.
//
// Runs the same training twice on deliberately tight simulated devices —
// once with checkpoints interleaved in the general allocator, once with
// MD's contiguous arena — and prints the allocator statistics that show
// why Sec 6.3 exists: fragmentation, largest free block, and whether the
// run survives. The counters come from the process-wide metrics
// registry (src/obs/metrics.hpp) — the same series a dashboard would
// scrape — cross-checked against the per-rank RankMetrics structs; the
// full registry snapshot is dumped as JSON at the end.
#include <cstdio>

#include "core/trainer.hpp"
#include "obs/metrics.hpp"

int main() {
  using namespace zero;

  core::TrainOptions base;
  base.model.vocab = 48;
  base.model.seq = 32;
  base.model.hidden = 64;
  base.model.heads = 4;
  base.model.layers = 4;
  base.engine.stage = model::ZeroStage::kOsG;
  base.cluster.dp_degree = 2;
  base.batch_per_rank = 4;
  base.steps = 3;
  base.zero_r.activation_checkpointing = true;

  obs::MetricsRegistry& metrics = obs::Metrics();
  obs::Counter& cache_hits = metrics.counter("alloc.cache.hits");
  obs::Counter& cache_misses = metrics.counter("alloc.cache.misses");
  obs::Counter& device_oom = metrics.counter("alloc.device.oom");
  obs::Counter& steps_done = metrics.counter("engine.steps");

  struct Variant {
    const char* name;
    bool md;
  };
  for (const Variant v : {Variant{"checkpoints in general allocator", false},
                          Variant{"checkpoints in MD arena", true}}) {
    core::TrainOptions opt = base;
    opt.zero_r.defrag_arena = v.md;
    opt.zero_r.arena_bytes = 2ull << 20;
    opt.cluster.device_capacity_bytes = 24ull << 20;

    metrics.ResetValues();  // per-variant deltas; handles stay valid
    const core::TrainResult result = core::TrainGpt(opt);
    std::printf("%s:\n", v.name);
    if (result.oom) {
      std::printf("  OOM: %s\n", result.oom_message.c_str());
      std::printf("  registry saw %llu failed device allocations\n\n",
                  static_cast<unsigned long long>(device_oom.value()));
      continue;
    }
    const core::RankMetrics& r = result.ranks[0];
    std::printf("  completed %zu steps (%llu engine steps across ranks), "
                "final loss %.4f\n",
                result.losses.size(),
                static_cast<unsigned long long>(steps_done.value()),
                result.final_loss());
    std::printf("  device: peak in use %.2f MB of %.0f MB, %llu allocs\n",
                static_cast<double>(r.device.peak_in_use) / 1e6,
                static_cast<double>(r.device.capacity) / 1e6,
                static_cast<unsigned long long>(r.device.total_allocs));
    std::printf("  cache (all ranks): %llu hits, %llu misses; rank 0 peak "
                "cached %.2f MB\n",
                static_cast<unsigned long long>(cache_hits.value()),
                static_cast<unsigned long long>(cache_misses.value()),
                static_cast<double>(r.cache.peak_cached) / 1e6);
    std::printf("  end-of-run fragmentation: %.1f%% (largest free block "
                "%.2f MB of %.2f MB free)\n\n",
                r.device.ExternalFragmentation() * 100.0,
                static_cast<double>(r.device.largest_free_block) / 1e6,
                static_cast<double>(r.device.free_total) / 1e6);
  }

  std::printf("metrics registry snapshot (last variant):\n%s\n",
              metrics.SnapshotJson().c_str());
  return 0;
}
