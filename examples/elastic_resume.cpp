// Elastic checkpoint/resume: save ZeRO training state at one DP degree,
// resume at another — possible because ExportState() re-assembles the
// partitioned fp32 master/momentum/variance into an Nd-independent blob
// and ImportState() re-shards it for whatever group loads it.
//
// Trains a GPT-mini for 6 steps on 4 ranks (stage 3), checkpoints to a
// file, then resumes on 2 ranks (stage 2) for 6 more steps.
#include <cmath>
#include <cstdio>
#include <mutex>

#include "comm/world.hpp"
#include "core/dp_engine.hpp"
#include "core/state_checkpoint.hpp"
#include "model/corpus.hpp"
#include "model/gpt.hpp"

using namespace zero;

namespace {

model::GptConfig ModelConfig() {
  model::GptConfig cfg;
  cfg.vocab = 32;
  cfg.seq = 16;
  cfg.hidden = 24;
  cfg.layers = 2;
  cfg.heads = 2;
  return cfg;
}

core::EngineConfig EngineFor(model::ZeroStage stage) {
  core::EngineConfig cfg;
  cfg.stage = stage;
  cfg.fp16 = true;
  cfg.loss_scale = 256.0f;
  cfg.adam.lr = 3e-3f;
  return cfg;
}

}  // namespace

int main() {
  const std::string path = "/tmp/zero_elastic_demo.ckpt";
  const model::GptConfig gcfg = ModelConfig();

  // ---- phase 1: 4 ranks, ZeRO stage 3 ----
  std::printf("phase 1: training on 4 ranks, stage 3 (Pos+g+p)\n");
  {
    comm::World world(4);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::GptModel gpt(gcfg, {});
      core::ZeroDpEngine engine(EngineFor(model::ZeroStage::kOsGP), gpt, dp,
                                nullptr, 42);
      model::MarkovCorpus corpus(gcfg.vocab, 2, 7,
                                 static_cast<std::uint64_t>(ctx.rank));
      for (int step = 0; step < 6; ++step) {
        const float loss = engine.TrainStep(corpus.NextBatch(4, gcfg.seq));
        if (ctx.rank == 0) {
          std::lock_guard<std::mutex> lock(mu);
          std::printf("  step %d  loss %.4f\n", step, loss);
        }
      }
      core::TrainingState state = engine.ExportState();
      if (ctx.rank == 0) {
        state.SaveToFile(path);
        std::lock_guard<std::mutex> lock(mu);
        std::printf("  saved %lld-param state at optimizer step %lld\n",
                    static_cast<long long>(state.total_numel),
                    static_cast<long long>(state.step_count));
      }
    });
  }

  // ---- phase 2: 2 ranks, ZeRO stage 2 ----
  std::printf("phase 2: resuming on 2 ranks, stage 2 (Pos+g)\n");
  {
    const core::TrainingState state = core::TrainingState::LoadFromFile(path);
    comm::World world(2);
    std::mutex mu;
    world.Run([&](comm::RankContext& ctx) {
      comm::Communicator dp = comm::Communicator::WholeWorld(ctx);
      model::GptModel gpt(gcfg, {});
      core::ZeroDpEngine engine(EngineFor(model::ZeroStage::kOsG), gpt, dp,
                                nullptr, /*seed=*/999);  // overwritten
      engine.ImportState(state);
      model::MarkovCorpus corpus(gcfg.vocab, 2, 7,
                                 100 + static_cast<std::uint64_t>(ctx.rank));
      for (int step = 0; step < 6; ++step) {
        const float loss = engine.TrainStep(corpus.NextBatch(4, gcfg.seq));
        if (ctx.rank == 0) {
          std::lock_guard<std::mutex> lock(mu);
          std::printf("  step %lld  loss %.4f\n",
                      static_cast<long long>(engine.steps_taken()), loss);
        }
      }
    });
  }
  std::printf(
      "\nThe Adam clock, master weights and moments all carried over — "
      "different DP\ndegree, different stage, same trajectory.\n");
  return 0;
}
