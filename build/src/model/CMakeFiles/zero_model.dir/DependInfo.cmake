
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/checkpoint_store.cpp" "src/model/CMakeFiles/zero_model.dir/checkpoint_store.cpp.o" "gcc" "src/model/CMakeFiles/zero_model.dir/checkpoint_store.cpp.o.d"
  "/root/repo/src/model/corpus.cpp" "src/model/CMakeFiles/zero_model.dir/corpus.cpp.o" "gcc" "src/model/CMakeFiles/zero_model.dir/corpus.cpp.o.d"
  "/root/repo/src/model/flat_model.cpp" "src/model/CMakeFiles/zero_model.dir/flat_model.cpp.o" "gcc" "src/model/CMakeFiles/zero_model.dir/flat_model.cpp.o.d"
  "/root/repo/src/model/gpt.cpp" "src/model/CMakeFiles/zero_model.dir/gpt.cpp.o" "gcc" "src/model/CMakeFiles/zero_model.dir/gpt.cpp.o.d"
  "/root/repo/src/model/mlp.cpp" "src/model/CMakeFiles/zero_model.dir/mlp.cpp.o" "gcc" "src/model/CMakeFiles/zero_model.dir/mlp.cpp.o.d"
  "/root/repo/src/model/quad_model.cpp" "src/model/CMakeFiles/zero_model.dir/quad_model.cpp.o" "gcc" "src/model/CMakeFiles/zero_model.dir/quad_model.cpp.o.d"
  "/root/repo/src/model/transformer_spec.cpp" "src/model/CMakeFiles/zero_model.dir/transformer_spec.cpp.o" "gcc" "src/model/CMakeFiles/zero_model.dir/transformer_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zero_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/zero_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/zero_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
