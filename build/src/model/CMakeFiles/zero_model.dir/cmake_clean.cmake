file(REMOVE_RECURSE
  "CMakeFiles/zero_model.dir/checkpoint_store.cpp.o"
  "CMakeFiles/zero_model.dir/checkpoint_store.cpp.o.d"
  "CMakeFiles/zero_model.dir/corpus.cpp.o"
  "CMakeFiles/zero_model.dir/corpus.cpp.o.d"
  "CMakeFiles/zero_model.dir/flat_model.cpp.o"
  "CMakeFiles/zero_model.dir/flat_model.cpp.o.d"
  "CMakeFiles/zero_model.dir/gpt.cpp.o"
  "CMakeFiles/zero_model.dir/gpt.cpp.o.d"
  "CMakeFiles/zero_model.dir/mlp.cpp.o"
  "CMakeFiles/zero_model.dir/mlp.cpp.o.d"
  "CMakeFiles/zero_model.dir/quad_model.cpp.o"
  "CMakeFiles/zero_model.dir/quad_model.cpp.o.d"
  "CMakeFiles/zero_model.dir/transformer_spec.cpp.o"
  "CMakeFiles/zero_model.dir/transformer_spec.cpp.o.d"
  "libzero_model.a"
  "libzero_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
