file(REMOVE_RECURSE
  "libzero_model.a"
)
