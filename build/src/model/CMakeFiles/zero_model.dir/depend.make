# Empty dependencies file for zero_model.
# This may be replaced when dependencies are built.
