file(REMOVE_RECURSE
  "libzero_core.a"
)
