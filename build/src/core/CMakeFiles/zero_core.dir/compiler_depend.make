# Empty compiler generated dependencies file for zero_core.
# This may be replaced when dependencies are built.
