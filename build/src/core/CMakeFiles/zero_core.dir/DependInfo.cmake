
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/dp_engine.cpp" "src/core/CMakeFiles/zero_core.dir/dp_engine.cpp.o" "gcc" "src/core/CMakeFiles/zero_core.dir/dp_engine.cpp.o.d"
  "/root/repo/src/core/partition.cpp" "src/core/CMakeFiles/zero_core.dir/partition.cpp.o" "gcc" "src/core/CMakeFiles/zero_core.dir/partition.cpp.o.d"
  "/root/repo/src/core/state_checkpoint.cpp" "src/core/CMakeFiles/zero_core.dir/state_checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/zero_core.dir/state_checkpoint.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/zero_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/zero_core.dir/trainer.cpp.o.d"
  "/root/repo/src/core/zero_r.cpp" "src/core/CMakeFiles/zero_core.dir/zero_r.cpp.o" "gcc" "src/core/CMakeFiles/zero_core.dir/zero_r.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zero_common.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/zero_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/zero_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/zero_model.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/zero_optim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
