file(REMOVE_RECURSE
  "CMakeFiles/zero_core.dir/dp_engine.cpp.o"
  "CMakeFiles/zero_core.dir/dp_engine.cpp.o.d"
  "CMakeFiles/zero_core.dir/partition.cpp.o"
  "CMakeFiles/zero_core.dir/partition.cpp.o.d"
  "CMakeFiles/zero_core.dir/state_checkpoint.cpp.o"
  "CMakeFiles/zero_core.dir/state_checkpoint.cpp.o.d"
  "CMakeFiles/zero_core.dir/trainer.cpp.o"
  "CMakeFiles/zero_core.dir/trainer.cpp.o.d"
  "CMakeFiles/zero_core.dir/zero_r.cpp.o"
  "CMakeFiles/zero_core.dir/zero_r.cpp.o.d"
  "libzero_core.a"
  "libzero_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
