file(REMOVE_RECURSE
  "libzero_alloc.a"
)
