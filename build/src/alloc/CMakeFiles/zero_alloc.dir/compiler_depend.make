# Empty compiler generated dependencies file for zero_alloc.
# This may be replaced when dependencies are built.
