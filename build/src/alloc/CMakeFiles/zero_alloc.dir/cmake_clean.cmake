file(REMOVE_RECURSE
  "CMakeFiles/zero_alloc.dir/arena.cpp.o"
  "CMakeFiles/zero_alloc.dir/arena.cpp.o.d"
  "CMakeFiles/zero_alloc.dir/caching_allocator.cpp.o"
  "CMakeFiles/zero_alloc.dir/caching_allocator.cpp.o.d"
  "CMakeFiles/zero_alloc.dir/device_memory.cpp.o"
  "CMakeFiles/zero_alloc.dir/device_memory.cpp.o.d"
  "CMakeFiles/zero_alloc.dir/host_memory.cpp.o"
  "CMakeFiles/zero_alloc.dir/host_memory.cpp.o.d"
  "libzero_alloc.a"
  "libzero_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
