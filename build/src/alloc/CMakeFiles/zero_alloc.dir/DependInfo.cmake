
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/alloc/arena.cpp" "src/alloc/CMakeFiles/zero_alloc.dir/arena.cpp.o" "gcc" "src/alloc/CMakeFiles/zero_alloc.dir/arena.cpp.o.d"
  "/root/repo/src/alloc/caching_allocator.cpp" "src/alloc/CMakeFiles/zero_alloc.dir/caching_allocator.cpp.o" "gcc" "src/alloc/CMakeFiles/zero_alloc.dir/caching_allocator.cpp.o.d"
  "/root/repo/src/alloc/device_memory.cpp" "src/alloc/CMakeFiles/zero_alloc.dir/device_memory.cpp.o" "gcc" "src/alloc/CMakeFiles/zero_alloc.dir/device_memory.cpp.o.d"
  "/root/repo/src/alloc/host_memory.cpp" "src/alloc/CMakeFiles/zero_alloc.dir/host_memory.cpp.o" "gcc" "src/alloc/CMakeFiles/zero_alloc.dir/host_memory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zero_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
