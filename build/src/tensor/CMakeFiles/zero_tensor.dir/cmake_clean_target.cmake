file(REMOVE_RECURSE
  "libzero_tensor.a"
)
