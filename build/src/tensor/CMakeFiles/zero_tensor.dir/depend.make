# Empty dependencies file for zero_tensor.
# This may be replaced when dependencies are built.
