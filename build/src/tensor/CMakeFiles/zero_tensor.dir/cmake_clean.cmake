file(REMOVE_RECURSE
  "CMakeFiles/zero_tensor.dir/kernels.cpp.o"
  "CMakeFiles/zero_tensor.dir/kernels.cpp.o.d"
  "CMakeFiles/zero_tensor.dir/tensor.cpp.o"
  "CMakeFiles/zero_tensor.dir/tensor.cpp.o.d"
  "libzero_tensor.a"
  "libzero_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
