# Empty dependencies file for zero_sim.
# This may be replaced when dependencies are built.
