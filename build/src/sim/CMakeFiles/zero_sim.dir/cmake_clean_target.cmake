file(REMOVE_RECURSE
  "libzero_sim.a"
)
