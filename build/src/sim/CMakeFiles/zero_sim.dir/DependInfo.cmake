
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/auto_stage.cpp" "src/sim/CMakeFiles/zero_sim.dir/auto_stage.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/auto_stage.cpp.o.d"
  "/root/repo/src/sim/cluster.cpp" "src/sim/CMakeFiles/zero_sim.dir/cluster.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/cluster.cpp.o.d"
  "/root/repo/src/sim/cost_model.cpp" "src/sim/CMakeFiles/zero_sim.dir/cost_model.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/cost_model.cpp.o.d"
  "/root/repo/src/sim/memory_model.cpp" "src/sim/CMakeFiles/zero_sim.dir/memory_model.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/memory_model.cpp.o.d"
  "/root/repo/src/sim/netsim.cpp" "src/sim/CMakeFiles/zero_sim.dir/netsim.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/netsim.cpp.o.d"
  "/root/repo/src/sim/netsim_bridge.cpp" "src/sim/CMakeFiles/zero_sim.dir/netsim_bridge.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/netsim_bridge.cpp.o.d"
  "/root/repo/src/sim/paper_configs.cpp" "src/sim/CMakeFiles/zero_sim.dir/paper_configs.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/paper_configs.cpp.o.d"
  "/root/repo/src/sim/pipeline_model.cpp" "src/sim/CMakeFiles/zero_sim.dir/pipeline_model.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/pipeline_model.cpp.o.d"
  "/root/repo/src/sim/search.cpp" "src/sim/CMakeFiles/zero_sim.dir/search.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/search.cpp.o.d"
  "/root/repo/src/sim/step_scheduler.cpp" "src/sim/CMakeFiles/zero_sim.dir/step_scheduler.cpp.o" "gcc" "src/sim/CMakeFiles/zero_sim.dir/step_scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/zero_common.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/zero_model.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/zero_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/zero_comm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
