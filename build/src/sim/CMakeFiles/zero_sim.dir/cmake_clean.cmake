file(REMOVE_RECURSE
  "CMakeFiles/zero_sim.dir/auto_stage.cpp.o"
  "CMakeFiles/zero_sim.dir/auto_stage.cpp.o.d"
  "CMakeFiles/zero_sim.dir/cluster.cpp.o"
  "CMakeFiles/zero_sim.dir/cluster.cpp.o.d"
  "CMakeFiles/zero_sim.dir/cost_model.cpp.o"
  "CMakeFiles/zero_sim.dir/cost_model.cpp.o.d"
  "CMakeFiles/zero_sim.dir/memory_model.cpp.o"
  "CMakeFiles/zero_sim.dir/memory_model.cpp.o.d"
  "CMakeFiles/zero_sim.dir/netsim.cpp.o"
  "CMakeFiles/zero_sim.dir/netsim.cpp.o.d"
  "CMakeFiles/zero_sim.dir/netsim_bridge.cpp.o"
  "CMakeFiles/zero_sim.dir/netsim_bridge.cpp.o.d"
  "CMakeFiles/zero_sim.dir/paper_configs.cpp.o"
  "CMakeFiles/zero_sim.dir/paper_configs.cpp.o.d"
  "CMakeFiles/zero_sim.dir/pipeline_model.cpp.o"
  "CMakeFiles/zero_sim.dir/pipeline_model.cpp.o.d"
  "CMakeFiles/zero_sim.dir/search.cpp.o"
  "CMakeFiles/zero_sim.dir/search.cpp.o.d"
  "CMakeFiles/zero_sim.dir/step_scheduler.cpp.o"
  "CMakeFiles/zero_sim.dir/step_scheduler.cpp.o.d"
  "libzero_sim.a"
  "libzero_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
