# Empty compiler generated dependencies file for zero_comm.
# This may be replaced when dependencies are built.
