file(REMOVE_RECURSE
  "libzero_comm.a"
)
