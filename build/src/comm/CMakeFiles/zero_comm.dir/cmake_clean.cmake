file(REMOVE_RECURSE
  "CMakeFiles/zero_comm.dir/communicator.cpp.o"
  "CMakeFiles/zero_comm.dir/communicator.cpp.o.d"
  "CMakeFiles/zero_comm.dir/mailbox.cpp.o"
  "CMakeFiles/zero_comm.dir/mailbox.cpp.o.d"
  "CMakeFiles/zero_comm.dir/topology.cpp.o"
  "CMakeFiles/zero_comm.dir/topology.cpp.o.d"
  "CMakeFiles/zero_comm.dir/world.cpp.o"
  "CMakeFiles/zero_comm.dir/world.cpp.o.d"
  "libzero_comm.a"
  "libzero_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
