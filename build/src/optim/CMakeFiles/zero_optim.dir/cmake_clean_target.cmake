file(REMOVE_RECURSE
  "libzero_optim.a"
)
