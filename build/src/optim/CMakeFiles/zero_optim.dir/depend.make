# Empty dependencies file for zero_optim.
# This may be replaced when dependencies are built.
