file(REMOVE_RECURSE
  "CMakeFiles/zero_optim.dir/adam.cpp.o"
  "CMakeFiles/zero_optim.dir/adam.cpp.o.d"
  "CMakeFiles/zero_optim.dir/loss_scaler.cpp.o"
  "CMakeFiles/zero_optim.dir/loss_scaler.cpp.o.d"
  "libzero_optim.a"
  "libzero_optim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_optim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
