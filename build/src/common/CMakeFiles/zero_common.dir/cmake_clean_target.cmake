file(REMOVE_RECURSE
  "libzero_common.a"
)
