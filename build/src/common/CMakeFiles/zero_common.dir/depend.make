# Empty dependencies file for zero_common.
# This may be replaced when dependencies are built.
