file(REMOVE_RECURSE
  "CMakeFiles/zero_common.dir/half.cpp.o"
  "CMakeFiles/zero_common.dir/half.cpp.o.d"
  "CMakeFiles/zero_common.dir/logging.cpp.o"
  "CMakeFiles/zero_common.dir/logging.cpp.o.d"
  "CMakeFiles/zero_common.dir/table.cpp.o"
  "CMakeFiles/zero_common.dir/table.cpp.o.d"
  "libzero_common.a"
  "libzero_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
