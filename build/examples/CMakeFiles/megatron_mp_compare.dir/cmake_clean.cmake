file(REMOVE_RECURSE
  "CMakeFiles/megatron_mp_compare.dir/megatron_mp_compare.cpp.o"
  "CMakeFiles/megatron_mp_compare.dir/megatron_mp_compare.cpp.o.d"
  "megatron_mp_compare"
  "megatron_mp_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megatron_mp_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
