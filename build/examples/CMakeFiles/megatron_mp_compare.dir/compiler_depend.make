# Empty compiler generated dependencies file for megatron_mp_compare.
# This may be replaced when dependencies are built.
