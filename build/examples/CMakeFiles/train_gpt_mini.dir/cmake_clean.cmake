file(REMOVE_RECURSE
  "CMakeFiles/train_gpt_mini.dir/train_gpt_mini.cpp.o"
  "CMakeFiles/train_gpt_mini.dir/train_gpt_mini.cpp.o.d"
  "train_gpt_mini"
  "train_gpt_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_gpt_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
