# Empty compiler generated dependencies file for train_gpt_mini.
# This may be replaced when dependencies are built.
