file(REMOVE_RECURSE
  "CMakeFiles/elastic_resume.dir/elastic_resume.cpp.o"
  "CMakeFiles/elastic_resume.dir/elastic_resume.cpp.o.d"
  "elastic_resume"
  "elastic_resume.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_resume.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
