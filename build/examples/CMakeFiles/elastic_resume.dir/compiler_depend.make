# Empty compiler generated dependencies file for elastic_resume.
# This may be replaced when dependencies are built.
