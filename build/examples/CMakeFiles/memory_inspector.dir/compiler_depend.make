# Empty compiler generated dependencies file for memory_inspector.
# This may be replaced when dependencies are built.
