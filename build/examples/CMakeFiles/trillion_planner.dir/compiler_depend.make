# Empty compiler generated dependencies file for trillion_planner.
# This may be replaced when dependencies are built.
