file(REMOVE_RECURSE
  "CMakeFiles/trillion_planner.dir/trillion_planner.cpp.o"
  "CMakeFiles/trillion_planner.dir/trillion_planner.cpp.o.d"
  "trillion_planner"
  "trillion_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trillion_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
