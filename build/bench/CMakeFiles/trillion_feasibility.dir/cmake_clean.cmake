file(REMOVE_RECURSE
  "CMakeFiles/trillion_feasibility.dir/trillion_feasibility.cpp.o"
  "CMakeFiles/trillion_feasibility.dir/trillion_feasibility.cpp.o.d"
  "trillion_feasibility"
  "trillion_feasibility.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trillion_feasibility.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
