# Empty compiler generated dependencies file for trillion_feasibility.
# This may be replaced when dependencies are built.
