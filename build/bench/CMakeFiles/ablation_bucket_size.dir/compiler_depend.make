# Empty compiler generated dependencies file for ablation_bucket_size.
# This may be replaced when dependencies are built.
