# Empty compiler generated dependencies file for fig7_max_cached.
# This may be replaced when dependencies are built.
