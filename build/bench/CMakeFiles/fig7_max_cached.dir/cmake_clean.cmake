file(REMOVE_RECURSE
  "CMakeFiles/fig7_max_cached.dir/fig7_max_cached.cpp.o"
  "CMakeFiles/fig7_max_cached.dir/fig7_max_cached.cpp.o.d"
  "fig7_max_cached"
  "fig7_max_cached.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_max_cached.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
