# Empty compiler generated dependencies file for fig3_superlinear.
# This may be replaced when dependencies are built.
