file(REMOVE_RECURSE
  "CMakeFiles/fig3_superlinear.dir/fig3_superlinear.cpp.o"
  "CMakeFiles/fig3_superlinear.dir/fig3_superlinear.cpp.o.d"
  "fig3_superlinear"
  "fig3_superlinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_superlinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
