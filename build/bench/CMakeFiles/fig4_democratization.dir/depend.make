# Empty dependencies file for fig4_democratization.
# This may be replaced when dependencies are built.
