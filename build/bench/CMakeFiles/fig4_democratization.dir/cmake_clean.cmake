file(REMOVE_RECURSE
  "CMakeFiles/fig4_democratization.dir/fig4_democratization.cpp.o"
  "CMakeFiles/fig4_democratization.dir/fig4_democratization.cpp.o.d"
  "fig4_democratization"
  "fig4_democratization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_democratization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
