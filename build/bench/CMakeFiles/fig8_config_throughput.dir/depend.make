# Empty dependencies file for fig8_config_throughput.
# This may be replaced when dependencies are built.
