# Empty compiler generated dependencies file for comm_volume_analysis.
# This may be replaced when dependencies are built.
