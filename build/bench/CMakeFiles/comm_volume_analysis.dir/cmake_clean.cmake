file(REMOVE_RECURSE
  "CMakeFiles/comm_volume_analysis.dir/comm_volume_analysis.cpp.o"
  "CMakeFiles/comm_volume_analysis.dir/comm_volume_analysis.cpp.o.d"
  "comm_volume_analysis"
  "comm_volume_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comm_volume_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
