# Empty compiler generated dependencies file for fig6_config_max_size.
# This may be replaced when dependencies are built.
