file(REMOVE_RECURSE
  "CMakeFiles/fig6_config_max_size.dir/fig6_config_max_size.cpp.o"
  "CMakeFiles/fig6_config_max_size.dir/fig6_config_max_size.cpp.o.d"
  "fig6_config_max_size"
  "fig6_config_max_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_config_max_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
