file(REMOVE_RECURSE
  "CMakeFiles/fig1_memory_stages.dir/fig1_memory_stages.cpp.o"
  "CMakeFiles/fig1_memory_stages.dir/fig1_memory_stages.cpp.o.d"
  "fig1_memory_stages"
  "fig1_memory_stages.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_memory_stages.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
