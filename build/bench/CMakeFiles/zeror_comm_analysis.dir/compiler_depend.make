# Empty compiler generated dependencies file for zeror_comm_analysis.
# This may be replaced when dependencies are built.
