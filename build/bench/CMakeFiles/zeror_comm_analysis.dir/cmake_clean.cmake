file(REMOVE_RECURSE
  "CMakeFiles/zeror_comm_analysis.dir/zeror_comm_analysis.cpp.o"
  "CMakeFiles/zeror_comm_analysis.dir/zeror_comm_analysis.cpp.o.d"
  "zeror_comm_analysis"
  "zeror_comm_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zeror_comm_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
