# Empty compiler generated dependencies file for table1_memory_vs_dp.
# This may be replaced when dependencies are built.
