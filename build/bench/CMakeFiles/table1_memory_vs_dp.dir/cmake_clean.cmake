file(REMOVE_RECURSE
  "CMakeFiles/table1_memory_vs_dp.dir/table1_memory_vs_dp.cpp.o"
  "CMakeFiles/table1_memory_vs_dp.dir/table1_memory_vs_dp.cpp.o.d"
  "table1_memory_vs_dp"
  "table1_memory_vs_dp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_memory_vs_dp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
