# Empty compiler generated dependencies file for ablation_pp_vs_zero.
# This may be replaced when dependencies are built.
