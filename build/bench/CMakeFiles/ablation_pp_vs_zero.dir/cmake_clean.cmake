file(REMOVE_RECURSE
  "CMakeFiles/ablation_pp_vs_zero.dir/ablation_pp_vs_zero.cpp.o"
  "CMakeFiles/ablation_pp_vs_zero.dir/ablation_pp_vs_zero.cpp.o.d"
  "ablation_pp_vs_zero"
  "ablation_pp_vs_zero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_pp_vs_zero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
