# Empty dependencies file for netsim_validation.
# This may be replaced when dependencies are built.
