file(REMOVE_RECURSE
  "CMakeFiles/netsim_validation.dir/netsim_validation.cpp.o"
  "CMakeFiles/netsim_validation.dir/netsim_validation.cpp.o.d"
  "netsim_validation"
  "netsim_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/netsim_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
