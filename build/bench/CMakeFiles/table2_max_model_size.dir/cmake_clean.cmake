file(REMOVE_RECURSE
  "CMakeFiles/table2_max_model_size.dir/table2_max_model_size.cpp.o"
  "CMakeFiles/table2_max_model_size.dir/table2_max_model_size.cpp.o.d"
  "table2_max_model_size"
  "table2_max_model_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_max_model_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
