
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/table2_max_model_size.cpp" "bench/CMakeFiles/table2_max_model_size.dir/table2_max_model_size.cpp.o" "gcc" "bench/CMakeFiles/table2_max_model_size.dir/table2_max_model_size.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/zero_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/zero_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/zero_model.dir/DependInfo.cmake"
  "/root/repo/build/src/optim/CMakeFiles/zero_optim.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/zero_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/comm/CMakeFiles/zero_comm.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/zero_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/zero_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
