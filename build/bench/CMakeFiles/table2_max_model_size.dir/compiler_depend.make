# Empty compiler generated dependencies file for table2_max_model_size.
# This may be replaced when dependencies are built.
