# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_alloc "/root/repo/build/tests/test_alloc")
set_tests_properties(test_alloc PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;16;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_comm "/root/repo/build/tests/test_comm")
set_tests_properties(test_comm PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;23;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build/tests/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;30;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_model "/root/repo/build/tests/test_model")
set_tests_properties(test_model PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;34;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_optim "/root/repo/build/tests/test_optim")
set_tests_properties(test_optim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;43;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;47;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;58;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;61;zero_add_test;/root/repo/tests/CMakeLists.txt;0;")
