file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/auto_stage_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/auto_stage_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/cost_model_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/cost_model_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/memory_model_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/memory_model_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/netsim_bridge_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/netsim_bridge_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/netsim_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/netsim_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/paper_configs_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/paper_configs_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/pipeline_model_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/pipeline_model_test.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/step_scheduler_test.cpp.o"
  "CMakeFiles/test_sim.dir/sim/step_scheduler_test.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
