file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/corpus_test.cpp.o"
  "CMakeFiles/test_model.dir/model/corpus_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/gpt_mp_grad_test.cpp.o"
  "CMakeFiles/test_model.dir/model/gpt_mp_grad_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/gpt_reference_test.cpp.o"
  "CMakeFiles/test_model.dir/model/gpt_reference_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/gpt_test.cpp.o"
  "CMakeFiles/test_model.dir/model/gpt_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/layout_test.cpp.o"
  "CMakeFiles/test_model.dir/model/layout_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/mlp_test.cpp.o"
  "CMakeFiles/test_model.dir/model/mlp_test.cpp.o.d"
  "CMakeFiles/test_model.dir/model/spec_test.cpp.o"
  "CMakeFiles/test_model.dir/model/spec_test.cpp.o.d"
  "test_model"
  "test_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
