file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/engine_edge_test.cpp.o"
  "CMakeFiles/test_core.dir/core/engine_edge_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/engine_features_test.cpp.o"
  "CMakeFiles/test_core.dir/core/engine_features_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/engine_fuzz_test.cpp.o"
  "CMakeFiles/test_core.dir/core/engine_fuzz_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/engine_test.cpp.o"
  "CMakeFiles/test_core.dir/core/engine_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/offload_optimizer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/offload_optimizer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/partition_test.cpp.o"
  "CMakeFiles/test_core.dir/core/partition_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/state_checkpoint_test.cpp.o"
  "CMakeFiles/test_core.dir/core/state_checkpoint_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/trainer_test.cpp.o"
  "CMakeFiles/test_core.dir/core/trainer_test.cpp.o.d"
  "CMakeFiles/test_core.dir/core/zero_r_test.cpp.o"
  "CMakeFiles/test_core.dir/core/zero_r_test.cpp.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
