file(REMOVE_RECURSE
  "CMakeFiles/test_comm.dir/comm/collectives_property_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/collectives_property_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/collectives_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/collectives_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/hierarchical_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/hierarchical_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/mailbox_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/mailbox_test.cpp.o.d"
  "CMakeFiles/test_comm.dir/comm/topology_test.cpp.o"
  "CMakeFiles/test_comm.dir/comm/topology_test.cpp.o.d"
  "test_comm"
  "test_comm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
