file(REMOVE_RECURSE
  "CMakeFiles/test_alloc.dir/alloc/allocator_stress_test.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/allocator_stress_test.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/arena_test.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/arena_test.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/caching_allocator_test.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/caching_allocator_test.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/device_memory_test.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/device_memory_test.cpp.o.d"
  "CMakeFiles/test_alloc.dir/alloc/host_memory_test.cpp.o"
  "CMakeFiles/test_alloc.dir/alloc/host_memory_test.cpp.o.d"
  "test_alloc"
  "test_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
