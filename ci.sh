#!/usr/bin/env bash
# CI entry point: release build + tests, then the whole suite again under
# ThreadSanitizer. The runtime is thread-per-rank SPMD over mailboxes, so
# TSan is the check that actually matters for the comm layer — in
# particular the nonblocking request path that overlaps stage-2 gradient
# reduction with backward.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "==> release: configure + build + ctest"
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}"
ctest --preset release -j "${JOBS}"

echo "==> bench: kernel perf gate (release build)"
# Writes BENCH_kernels.json and fails on >25% regression against the
# checked-in baseline, or if the packed-GEMM (3x) / fp16-decode (5x)
# speedup floors over the seed kernels are missed. ZERO_BENCH_RELAX=1
# downgrades failures to warnings on throttled machines.
./build/bench/kernel_perf BENCH_kernels.json bench/kernels_baseline.json

echo "==> bench: telemetry overhead gate (release build)"
# Proves the always-compiled-in trace spans cost <2% of a training step
# while disabled; writes BENCH_telemetry.json. Same ZERO_BENCH_RELAX=1
# escape hatch as the kernel gate.
./build/bench/telemetry_overhead BENCH_telemetry.json

echo "==> bench: fault detection + recovery characterization (release build)"
# Measures hang-detection latency against the heartbeat deadline and
# recovery wall time vs checkpoint interval; writes BENCH_fault.json and
# fails if any recovery trial does not complete.
./build/bench/fault_recovery BENCH_fault.json

echo "==> bench: stage-3 prefetch overlap gate (release build)"
# Blocking vs prefetched parameter gathers at lookahead {0,1,2,4}:
# losses must stay bit-identical and the pipeline must hide a measured
# fraction of gather latency (comm.overlap_frac); writes
# BENCH_overlap.json. Same ZERO_BENCH_RELAX=1 escape hatch.
./build/bench/overlap_step BENCH_overlap.json

echo "==> bench: optimizer-offload streaming gate (release build)"
# In-device vs host/NVMe-tiered fp32 optimizer state: losses must stay
# bit-identical across every tier, the eager host pipeline must hide
# >= 50% of its link time behind compute, and the sim model must show
# offload shrinking the 1T-parameter GPU floor; writes
# BENCH_offload.json. Same ZERO_BENCH_RELAX=1 escape hatch.
./build/bench/offload_step BENCH_offload.json

echo "==> bench: ZeRO++ communication-compression gate (release build)"
# Measures per-rank stage-3 DP-fabric bytes under qwZ/hpZ/qgZ against
# exact stage 3 (Nd = 4, 2 ranks/node): the full stack must cut the
# fabric volume >= 3x; writes BENCH_zeropp.json. Same ZERO_BENCH_RELAX=1
# escape hatch.
./build/bench/comm_volume_analysis BENCH_zeropp.json

echo "==> bench: step anatomy + flight recorder gate (release build)"
# A seeded slow@rank:collective fault must be blamed on exactly that
# rank by the cross-rank critical-path analyzer on every measured step,
# and a crashed run must leave a post-mortem bundle that passes the
# strict validator; writes BENCH_anatomy.json. Same ZERO_BENCH_RELAX=1
# escape hatch.
rm -rf build/anatomy_postmortem
./build/bench/step_anatomy BENCH_anatomy.json build/anatomy_postmortem

echo "==> bench: serving load gate (release build)"
# Three gates in one binary, all on seeded deterministic traffic:
#   1. Continuous batching vs batch-of-1 on the same trainer
#      checkpoint: every request completes and the continuous config's
#      saturation throughput (tokens per virtual second) is strictly
#      higher.
#   2. Weight-precision sweep (fp32/fp16/int8 GEMM backends, serving-
#      scale model): fp16 decode throughput strictly above fp32 — the
#      pre-packed fp16 panel path must actually pay on real wall clock
#      (int8 is informational); greedy tokens per precision are
#      reported.
#   3. Prefix-cache sweep (shared tenant prompt prefixes, cache off vs
#      on): prefix-hit prefill compute strictly below cold prefill,
#      with exact token conservation (cold prefill == shared prefill +
#      adopted prefix positions, identical decode counts).
# Writes BENCH_serve.json with latency percentiles, per-precision
# decode throughput, and prefix savings. Same ZERO_BENCH_RELAX=1
# escape hatch.
./build/bench/serve_load BENCH_serve.json

echo "==> smoke: 2-rank stage-3 run with telemetry artifacts"
# End-to-end telemetry check: the run must produce a valid Chrome trace,
# a valid merged cross-rank timeline, per-step metrics, and a step
# report whose measured memory/comm match the paper equations (the
# trainer logs divergences; the report JSON's "ok" field is asserted
# below).
rm -f build/smoke_trace.json build/smoke_trace.json.metrics.json \
  build/smoke_trace.json.report.json build/smoke_trace.json.timeline.json
# ZERO_PREFETCH=2 exercises the stage-3 prefetch pipeline end to end;
# the report's paper-equation checks must still pass with it on.
ZERO_TRACE=build/smoke_trace.json ZERO_PREFETCH=2 \
  ./build/examples/train_gpt_mini 3 2 1 3
./build/bench/trace_validate build/smoke_trace.json \
  build/smoke_trace.json.timeline.json
test -s build/smoke_trace.json.metrics.json
# Top-level "ok" (indent 2) — the per-check ok fields are indented deeper.
grep -q '^  "ok": true' build/smoke_trace.json.report.json

echo "==> smoke: 2-rank stage-3 run with every ZeRO++ path on"
# Same smoke with qwZ + hpZ + qgZ engaged (2 ranks = 1 node group of 2,
# so hpZ/qgZ run their intra-node schedules end to end). The report's
# paper-equation checks are compression-aware: "ok" asserts the measured
# bytes match the *rewritten* volume, and the rewritten volume must be
# measurably below the exact run's.
rm -f build/smoke_zpp.json build/smoke_zpp.json.metrics.json \
  build/smoke_zpp.json.report.json
ZERO_TRACE=build/smoke_zpp.json ZERO_PREFETCH=2 \
  ZERO_QWZ=1 ZERO_HPZ=1 ZERO_QGZ=1 ZERO_RANKS_PER_NODE=2 \
  ./build/examples/train_gpt_mini 3 2 1 3
./build/bench/trace_validate build/smoke_zpp.json
grep -q '^  "ok": true' build/smoke_zpp.json.report.json
# Compressed DP volume strictly below the exact smoke's (python-free
# integer compare on the two reports' measured_bytes_per_step fields).
exact_bytes=$(sed -n 's/.*"measured_bytes_per_step": \([0-9]*\).*/\1/p' \
  build/smoke_trace.json.report.json)
zpp_bytes=$(sed -n 's/.*"measured_bytes_per_step": \([0-9]*\).*/\1/p' \
  build/smoke_zpp.json.report.json)
test "${zpp_bytes}" -lt "${exact_bytes}"

echo "==> smoke: fault-killed run must leave a post-mortem bundle"
# A crash on rank 1 with the heartbeat detector armed must kill the run
# (train_gpt_mini exits 1) and the flight recorder must leave a bundle
# that passes the strict post-mortem validator.
rm -rf build/smoke_postmortem
if ZERO_POSTMORTEM=build/smoke_postmortem ZERO_FAULT='crash@1:step#2' \
  ZERO_COMM_DEADLINE_MS=200 ./build/examples/train_gpt_mini 3 2 1 4; then
  echo "FAIL: faulted smoke run exited 0 (expected failure)"
  exit 1
fi
./build/bench/trace_validate --postmortem build/smoke_postmortem

echo "==> smoke: train -> checkpoint -> serve -> trace"
# The full deployment chain: train_gpt_mini writes a checkpoint via
# ZERO_CKPT, serve_gpt_mini loads it into the continuous-batching
# engine under seeded traffic, and the recorded serve trace must pass
# the strict Chrome-trace validator.
rm -f build/smoke_ckpt.bin build/smoke_serve.json
ZERO_CKPT=build/smoke_ckpt.bin ./build/examples/train_gpt_mini 2 2 1 12
test -s build/smoke_ckpt.bin
ZERO_TRACE=build/smoke_serve.json ZERO_SERVE_SEED=7 \
  ./build/examples/serve_gpt_mini build/smoke_ckpt.bin 2000 0.1 1
./build/bench/trace_validate build/smoke_serve.json
# Every offered request must complete (python-free integer compare).
serve_offered=$(sed -n 's/.*"offered": \([0-9]*\).*/\1/p' \
  build/smoke_serve.json.report.json)
serve_completed=$(sed -n 's/.*"completed": \([0-9]*\).*/\1/p' \
  build/smoke_serve.json.report.json)
test "${serve_offered}" -gt 100
test "${serve_completed}" -eq "${serve_offered}"

echo "==> tsan: configure + build + ctest"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${JOBS}"
ctest --preset tsan -j "${JOBS}"

echo "==> tsan: extra chaos soak (fresh seeds)"
# The default chaos seeds already ran inside ctest above; this pass
# throws a second, disjoint seed set at the trainer under TSan. Any
# failure reproduces with ZERO_CHAOS_SEEDS=<seed> on test_fault.
ZERO_CHAOS_SEEDS=101,202,303 ./build-tsan/tests/test_fault \
  --gtest_filter='ChaosTest.*'

echo "CI OK"
