#!/usr/bin/env bash
# CI entry point: release build + tests, then the whole suite again under
# ThreadSanitizer. The runtime is thread-per-rank SPMD over mailboxes, so
# TSan is the check that actually matters for the comm layer — in
# particular the nonblocking request path that overlaps stage-2 gradient
# reduction with backward.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc)}"

echo "==> release: configure + build + ctest"
cmake --preset release >/dev/null
cmake --build --preset release -j "${JOBS}"
ctest --preset release -j "${JOBS}"

echo "==> bench: kernel perf gate (release build)"
# Writes BENCH_kernels.json and fails on >25% regression against the
# checked-in baseline, or if the packed-GEMM (3x) / fp16-decode (5x)
# speedup floors over the seed kernels are missed. ZERO_BENCH_RELAX=1
# downgrades failures to warnings on throttled machines.
./build/bench/kernel_perf BENCH_kernels.json bench/kernels_baseline.json

echo "==> tsan: configure + build + ctest"
cmake --preset tsan >/dev/null
cmake --build --preset tsan -j "${JOBS}"
ctest --preset tsan -j "${JOBS}"

echo "CI OK"
